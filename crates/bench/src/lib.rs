//! `bench` — the experiment harness.
//!
//! One binary per paper artifact (see DESIGN.md §4 for the full index):
//!
//! | target            | reproduces |
//! |-------------------|------------|
//! | `exp_figure1`     | Figure 1: the remote-execution protocol ladder |
//! | `exp_figure2`     | Figure 2: the GlideIn execution path |
//! | `exp_qap`         | Experience 1: the ten-site QAP campaign |
//! | `exp_cms`         | Experience 2: the CMS pipeline |
//! | `exp_gcat`        | Experience 3: G-Cat streaming to MSS |
//! | `exp_two_phase`   | §3.2: exactly-once vs the one-phase baseline |
//! | `exp_fault_tolerance` | §4.2: the four failure classes × recovery on/off |
//! | `exp_credentials` | §4.3: expiry/hold/refresh vs MyProxy |
//! | `exp_glidein`     | §5: late binding vs direct queue commitment |
//! | `exp_broker`      | §4.4: MDS matchmaking broker vs static list |
//! | `exp_flocking`    | §7: Condor flocking baseline vs Condor-G |
//!
//! Plus Criterion benches (`cargo bench`) for the engine itself:
//! `classads_bench`, `sim_kernel`, `grid_protocols`.
//!
//! Run everything with `scripts/run_experiments.sh`; outputs are recorded
//! in EXPERIMENTS.md.

use workloads::stats::Table;

/// Render an experiment banner + table in the standard format.
pub fn report(experiment: &str, claim: &str, table: &Table) {
    println!("== {experiment} ==");
    println!("paper claim: {claim}");
    println!();
    println!("{}", table.render());
}

/// Parallel replication helper: run `f(seed)` for each seed on its own
/// thread (simulations are single-threaded; replications are not).
pub fn replicate<T: Send>(seeds: &[u64], f: impl Fn(u64) -> T + Sync) -> Vec<T> {
    let mut out: Vec<Option<T>> = seeds.iter().map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        for (slot, &seed) in out.iter_mut().zip(seeds) {
            let f = &f;
            scope.spawn(move |_| {
                *slot = Some(f(seed));
            });
        }
    })
    .expect("replication threads");
    out.into_iter()
        .map(|v| v.expect("thread filled slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicate_runs_all_seeds_in_order() {
        let out = replicate(&[1, 2, 3, 4], |s| s * 10);
        assert_eq!(out, vec![10, 20, 30, 40]);
    }
}
