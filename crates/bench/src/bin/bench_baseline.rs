//! `bench_baseline` — the repo's recorded perf trajectory.
//!
//! Runs the same workloads as the criterion benches (`sim_kernel`,
//! `grid_protocols`, `classads_bench`) plus a 10k-job GRAM batch smoke,
//! self-timed so the numbers can be recorded in `BENCH_kernel.json` and
//! regression-checked in CI without criterion's analysis machinery.
//!
//! Modes:
//!   bench_baseline                   run every workload, print a table
//!   bench_baseline --record before   run + write "before" fields of BENCH_kernel.json
//!   bench_baseline --record after    run + update "after" fields
//!   bench_baseline --check           run + fail if any metric regressed >25%
//!                                    against the committed "after" numbers
//!   bench_baseline --full            include the 1M-job campaign (minutes);
//!                                    --record always measures it
//!
//! The campaign metrics spawn the sibling `condor-g-campaign` binary per
//! measurement so peak RSS is the campaign's own; build it first (the
//! `scripts/bench_baseline` wrapper does).
//!
//! `--file <path>` overrides the default `BENCH_kernel.json` location.

use condor_g_suite::classads::{rank, symmetric_match, ClassAd};
use condor_g_suite::gass::{FileData, GassServer, GassUrl};
use condor_g_suite::gram::proto::{GramReply, JmMsg};
use condor_g_suite::gram::{Gatekeeper, RslSpec, SubmitSession};
use condor_g_suite::gridsim::prelude::*;
use condor_g_suite::gridsim::{AnyMsg, Config, World};
use condor_g_suite::gsi::{CertificateAuthority, GridMap, ProxyCredential};
use condor_g_suite::site::policy::Fifo;
use condor_g_suite::site::Lrm;
use std::collections::BTreeMap;
use std::time::Instant;

/// Allowed slowdown before `--check` fails: current >= 0.75 * recorded.
const REGRESSION_FLOOR: f64 = 0.75;

/// `*_overhead_pct` metrics are lower-is-better and checked against this
/// absolute cap instead of the regression floor: the flight recorder must
/// stay within 10% of the uninstrumented campaign.
const OVERHEAD_CAP_PCT: f64 = 10.0;

/// `*_speedup_x` metrics are checked against this absolute floor instead
/// of the ratio-vs-baseline rule: a speedup is already a ratio, and on a
/// 1-core runner the honest value is ~1.0x regardless of what a beefier
/// recording host committed. 0.9 tolerates scheduler noise while still
/// catching a real parallel-path regression.
const SPEEDUP_FLOOR_X: f64 = 0.9;

// ---------------------------------------------------------------------------
// Workloads (mirrors of the criterion benches, self-timed)
// ---------------------------------------------------------------------------

struct TimerStorm {
    fanout: u32,
}

impl Component for TimerStorm {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for tag in 0..self.fanout {
            ctx.set_timer(Duration::from_millis(1 + tag as u64), tag as u64);
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, tag: u64) {
        ctx.set_timer(Duration::from_millis(1 + (tag % 16)), tag);
    }
}

struct Echo {
    peer: Option<Addr>,
}

#[derive(Debug)]
struct Token;

impl Component for Echo {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(peer) = self.peer {
            ctx.send(peer, Token);
        }
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Addr, _msg: AnyMsg) {
        ctx.send(from, Token);
    }
}

fn timer_storm_events(events: u64) -> u64 {
    let mut w = World::new(Config::default().seed(1).max_events(events));
    let n = w.add_node("n");
    w.add_component(n, "storm", TimerStorm { fanout: 64 });
    w.run_until_quiescent();
    w.events_processed()
}

fn network_ring_events(events: u64) -> u64 {
    let mut w = World::new(Config::default().seed(2).max_events(events));
    for i in 0..8 {
        let na = w.add_node(&format!("a{i}"));
        let nb = w.add_node(&format!("b{i}"));
        let pong = w.add_component(nb, "pong", Echo { peer: None });
        w.add_component(na, "ping", Echo { peer: Some(pong) });
    }
    w.run_until_quiescent();
    w.events_processed()
}

fn machine_ad(i: usize) -> ClassAd {
    ClassAd::new()
        .with("Name", format!("vm{i}.cs.wisc.edu").as_str())
        .with(
            "Arch",
            if i.is_multiple_of(3) {
                "INTEL"
            } else {
                "SUN4u"
            },
        )
        .with("OpSys", "LINUX")
        .with("Memory", (64 + (i % 8) * 32) as i64)
        .with("Mips", (200 + i % 500) as i64)
        .with("State", "Unclaimed")
        .with_parsed("Requirements", "TARGET.ImageSize <= MY.Memory * 1024")
        .with_parsed("Rank", "TARGET.Owner == \"jane\" ? 10 : 0")
}

fn job_ad() -> ClassAd {
    ClassAd::new()
        .with("Owner", "jane")
        .with("ImageSize", 48_000i64)
        .with_parsed(
            "Requirements",
            "TARGET.Arch == \"INTEL\" && TARGET.OpSys == \"LINUX\" && TARGET.Memory >= 64",
        )
        .with_parsed("Rank", "TARGET.Mips")
}

fn matchmake_sweep(iters: usize) -> u64 {
    let job = job_ad();
    let machines: Vec<ClassAd> = (0..1000).map(machine_ad).collect();
    let mut matched = 0u64;
    for _ in 0..iters {
        let mut best: Option<(f64, usize)> = None;
        for (i, m) in machines.iter().enumerate() {
            if symmetric_match(&job, m) {
                matched += 1;
                let r = rank(&job, m);
                if best.is_none_or(|(br, _)| r > br) {
                    best = Some((r, i));
                }
            }
        }
        std::hint::black_box(best);
    }
    matched
}

struct BatchClient {
    gatekeeper: Addr,
    credential: ProxyCredential,
    gass: GassUrl,
    /// RSL executable: a plain path skips staging, a `gass://` URL makes
    /// every job stage the image in (the flow-mode storm relies on this).
    exe: String,
    image_size: u64,
    jobs: u64,
    sessions: BTreeMap<u64, SubmitSession>,
}

impl Component for BatchClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for seq in 0..self.jobs {
            let mut rsl = RslSpec::job(&self.exe, Duration::from_secs(60));
            rsl.image_size = self.image_size;
            let mut s = SubmitSession::new(
                seq,
                rsl.to_string(),
                self.credential.clone(),
                ctx.self_addr(),
                self.gass.clone(),
            );
            ctx.send(self.gatekeeper, s.request());
            self.sessions.insert(seq, s);
        }
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: Addr, msg: AnyMsg) {
        if let Some(reply) = msg.downcast_ref::<GramReply>() {
            if let GramReply::Submitted { seq, .. } = reply {
                if let Some(s) = self.sessions.get_mut(seq) {
                    use condor_g_suite::gram::client::SubmitAction;
                    if let SubmitAction::SendCommit { jobmanager, .. } = s.on_reply(reply) {
                        ctx.send(jobmanager, JmMsg::Commit);
                    }
                }
            }
        }
    }
}

fn run_batch(jobs: u64) -> u64 {
    run_batch_profiled(jobs, false)
}

fn run_batch_profiled(jobs: u64, profile: bool) -> u64 {
    let mut ca = CertificateAuthority::new("/CN=CA", 1);
    let id = ca.issue_identity("/CN=jane", Duration::from_days(30));
    let cred = id.new_proxy(SimTime::ZERO, Duration::from_days(1));
    let mut gridmap = GridMap::new();
    gridmap.add("/CN=jane", "jane");
    let mut w = World::new(Config::default().seed(7));
    let submit = w.add_node("submit");
    let interface = w.add_node("gk");
    let cluster = w.add_node("cluster");
    let gass = w.add_component(
        submit,
        "gass",
        GassServer::new(ca.trust_root()).preload("/x", FileData::inline("x")),
    );
    let lrm = w.add_component(cluster, "lrm", Lrm::new("site", 100_000, Fifo));
    let gk = w.add_component(
        interface,
        "gatekeeper",
        Gatekeeper::new("site", ca.trust_root(), gridmap, lrm),
    );
    w.add_component(
        submit,
        "client",
        BatchClient {
            gatekeeper: gk,
            credential: cred,
            gass: GassUrl::gass(gass, ""),
            exe: "/site/bin/task".into(),
            image_size: 0,
            jobs,
            sessions: BTreeMap::new(),
        },
    );
    if profile {
        w.enable_profiler();
    }
    w.run_until_quiescent();
    assert_eq!(
        w.metrics().counter("site.completed"),
        jobs,
        "batch did not complete"
    );
    if profile {
        eprintln!("{}", w.profiler().expect("enabled above").summary());
    }
    w.events_processed()
}

/// Image size each storm job stages in over the shared link.
const STORM_IMAGE: u64 = 16_000_000;

/// Flow-mode stage-in storm: every job's executable is a `gass://` URL to
/// a 16 MB image, and the submit↔site paths share one fair-share WAN link,
/// so each completion rescales every surviving flow. This is the flow
/// model's worst case (O(active flows) deadline churn per event) and the
/// number regression-checked in BENCH_kernel.json.
fn run_stagein_storm(jobs: u64) -> u64 {
    let mut ca = CertificateAuthority::new("/CN=CA", 1);
    let id = ca.issue_identity("/CN=jane", Duration::from_days(30));
    let cred = id.new_proxy(SimTime::ZERO, Duration::from_days(1));
    let mut gridmap = GridMap::new();
    gridmap.add("/CN=jane", "jane");
    let mut w = World::new(Config::default().seed(11));
    let submit = w.add_node("submit");
    let interface = w.add_node("gk");
    let cluster = w.add_node("cluster");
    // A fat link: wide enough that no staging timer fires before the
    // transfer lands, so the measurement is pure flow-model churn.
    let wan = w.network_mut().add_flow_link("wan", 1e9, 0.030);
    w.network_mut().set_flow_route(submit, interface, &[wan]);
    w.network_mut().set_flow_route(submit, cluster, &[wan]);
    let gass = w.add_component(
        submit,
        "gass",
        GassServer::new(ca.trust_root()).preload("/app.exe", FileData::bulk(STORM_IMAGE, 9)),
    );
    let lrm = w.add_component(cluster, "lrm", Lrm::new("site", 100_000, Fifo));
    let gk = w.add_component(
        interface,
        "gatekeeper",
        Gatekeeper::new("site", ca.trust_root(), gridmap, lrm),
    );
    let exe = GassUrl::gass(gass, "/app.exe").to_string();
    w.add_component(
        submit,
        "client",
        BatchClient {
            gatekeeper: gk,
            credential: cred,
            gass: GassUrl::gass(gass, ""),
            exe,
            image_size: STORM_IMAGE,
            jobs,
            sessions: BTreeMap::new(),
        },
    );
    w.run_until_quiescent();
    assert_eq!(
        w.metrics().counter("site.completed"),
        jobs,
        "storm did not complete"
    );
    assert_eq!(
        w.metrics().counter("net.flows_done"),
        jobs,
        "every stage-in must ride the flow network"
    );
    w.events_processed()
}

// ---------------------------------------------------------------------------
// Campaign workloads (child process per measurement, so peak RSS is the
// campaign's own high-water mark, not this harness's)
// ---------------------------------------------------------------------------

/// The sibling `condor-g-campaign` binary (same target directory).
fn campaign_bin() -> std::path::PathBuf {
    std::env::current_exe()
        .expect("current_exe")
        .parent()
        .expect("bin dir")
        .join("condor-g-campaign")
}

/// Run the campaign binary and parse its final `RESULT k=v ...` line.
fn run_campaign_child(args: &[&str]) -> Option<BTreeMap<String, f64>> {
    let bin = campaign_bin();
    if !bin.exists() {
        eprintln!(
            "bench_baseline: {} not built, skipping campaign metrics \
             (scripts/bench_baseline builds it)",
            bin.display()
        );
        return None;
    }
    let out = std::process::Command::new(&bin)
        .arg("--quiet")
        .args(args)
        .output()
        .expect("spawn condor-g-campaign");
    assert!(out.status.success(), "campaign run failed: {args:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let result = stdout
        .lines()
        .rev()
        .find(|l| l.starts_with("RESULT "))
        .expect("no RESULT line");
    let mut fields = BTreeMap::new();
    for kv in result.trim_start_matches("RESULT ").split_whitespace() {
        if let Some((k, v)) = kv.split_once('=') {
            if let Ok(v) = v.parse::<f64>() {
                fields.insert(k.to_string(), v);
            }
        }
    }
    Some(fields)
}

/// Throughput + memory for one campaign size, as check-friendly metrics
/// (both higher-is-better, matching the regression floor's direction —
/// jobs per GB of peak RSS *falls* when memory bloats).
fn campaign_metrics(label: &str, jobs: u64, sites: u32, users: u32, out: &mut Vec<Metric>) {
    eprintln!("bench_baseline: campaign {label} ({jobs} jobs)...");
    let Some(f) = run_campaign_child(&[
        "--jobs",
        &jobs.to_string(),
        "--sites",
        &sites.to_string(),
        "--users",
        &users.to_string(),
    ]) else {
        return;
    };
    assert_eq!(
        f.get("done").copied().unwrap_or(0.0) + f.get("failed").copied().unwrap_or(0.0),
        jobs as f64,
        "campaign {label} did not settle every job"
    );
    let name: &'static str = match label {
        "100k" => "campaign_100k_jobs_per_sec",
        _ => "campaign_1m_jobs_per_sec",
    };
    out.push(Metric {
        name,
        unit: "jobs/s",
        value: f.get("jobs_per_sec").copied().unwrap_or(0.0),
    });
    let rss_kb = f.get("peak_rss_kb").copied().unwrap_or(f64::INFINITY);
    out.push(Metric {
        name: match label {
            "100k" => "campaign_100k_jobs_per_gb_rss",
            _ => "campaign_1m_jobs_per_gb_rss",
        },
        unit: "jobs/GB",
        value: jobs as f64 / (rss_kb / 1_000_000.0),
    });
}

/// Flight-recorder tax: the same 100k-job campaign twice, once plain and
/// once with the black box subscribed and telemetry heartbeats streaming.
/// Reported as percent wall-clock overhead (lower is better; `--check`
/// caps it at [`OVERHEAD_CAP_PCT`] instead of applying the ratio floor).
fn flight_overhead_metric(out: &mut Vec<Metric>) {
    eprintln!("bench_baseline: campaign 100k flight overhead...");
    let base = ["--jobs", "100000", "--sites", "50", "--users", "500"];
    let tel = std::env::temp_dir().join("bench_flight.tel.jsonl");
    let dump = std::env::temp_dir().join("bench_flight.flight");
    let (tel_s, dump_s) = (tel.display().to_string(), dump.display().to_string());
    let mut flight_args: Vec<&str> = base.to_vec();
    flight_args.extend_from_slice(&[
        "--flight",
        "--flight-out",
        &dump_s,
        "--telemetry-out",
        &tel_s,
    ]);
    // Best-of-2 per variant: a single noisy run on a shared CI host can
    // swing the single-run delta by more than the whole budget.
    let best = |args: &[&str]| -> Option<f64> {
        let mut best = f64::INFINITY;
        for _ in 0..2 {
            let wall = run_campaign_child(args)?
                .get("wall_secs")
                .copied()
                .unwrap_or(f64::INFINITY);
            best = best.min(wall);
        }
        Some(best)
    };
    let plain_wall = best(&base);
    let flown_wall = best(&flight_args);
    let _ = std::fs::remove_file(&tel);
    let _ = std::fs::remove_file(&dump);
    let (Some(plain_wall), Some(flown_wall)) = (plain_wall, flown_wall) else {
        return;
    };
    if plain_wall <= 0.0 {
        return;
    }
    out.push(Metric {
        name: "campaign_100k_flight_overhead_pct",
        unit: "% wall vs plain",
        value: (flown_wall - plain_wall) / plain_wall * 100.0,
    });
}

/// The 8-cell sweep farm: honest speedup on whatever cores this host has
/// (a 1-core container reports ~1x; the per-cell digests still must match
/// a serial run, which tests/campaign.rs asserts).
fn sweep_metric(out: &mut Vec<Metric>) {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    if threads == 1 {
        // A 1-core host cannot overlap cells; running the sweep anyway
        // would record an honest-but-misleading ~1.0x that drifts with
        // scheduler noise. Record exactly 1.0 and say why.
        eprintln!("bench_baseline: sweep farm skipped (1 core), recording 1.0x");
        out.push(Metric {
            name: "sweep_8cell_speedup_x",
            unit: "x (skipped: 1 core)",
            value: 1.0,
        });
        return;
    }
    eprintln!("bench_baseline: sweep farm (8 cells, {threads} threads)...");
    let Some(f) = run_campaign_child(&[
        "--sweep",
        "8",
        "--threads",
        &threads.to_string(),
        "--jobs",
        "2000",
        "--sites",
        "10",
        "--users",
        "50",
    ]) else {
        return;
    };
    out.push(Metric {
        name: "sweep_8cell_speedup_x",
        unit: "x (serial-equivalent / wall)",
        value: f.get("speedup").copied().unwrap_or(0.0),
    });
}

/// Sharded-kernel cost: the same 100k-job campaign with `--shards 1` vs
/// `--shards 4`, reported as wall-clock ratio (1-shard / 4-shard). The
/// current executor commits events in one global `(time, seq)` order, so
/// ~1.0x is the expected value — this metric exists to catch the
/// coordination overhead regressing, and will show real speedup once
/// shards execute concurrently. Same 1-core guard as the sweep.
fn shard_speedup_metric(out: &mut Vec<Metric>) {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    if threads == 1 {
        eprintln!("bench_baseline: shard speedup skipped (1 core), recording 1.0x");
        out.push(Metric {
            name: "campaign_100k_shard_speedup_x",
            unit: "x (skipped: 1 core)",
            value: 1.0,
        });
        return;
    }
    eprintln!("bench_baseline: campaign 100k shard speedup (1 vs 4 shards)...");
    let base = ["--jobs", "100000", "--sites", "50", "--users", "500"];
    let wall = |shards: &str| -> Option<f64> {
        let mut best = f64::INFINITY;
        for _ in 0..2 {
            let mut args = base.to_vec();
            args.extend_from_slice(&["--shards", shards]);
            let w = run_campaign_child(&args)?
                .get("wall_secs")
                .copied()
                .unwrap_or(f64::INFINITY);
            best = best.min(w);
        }
        Some(best)
    };
    let (Some(one), Some(four)) = (wall("1"), wall("4")) else {
        return;
    };
    if four <= 0.0 {
        return;
    }
    out.push(Metric {
        name: "campaign_100k_shard_speedup_x",
        unit: "x (1-shard wall / 4-shard wall)",
        value: one / four,
    });
}

// ---------------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------------

struct Metric {
    name: &'static str,
    unit: &'static str,
    value: f64,
}

/// Run `work` `runs` times; return units/sec for the fastest run.
fn measure(runs: u32, units: u64, work: impl Fn() -> u64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let t0 = Instant::now();
        std::hint::black_box(work());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    units as f64 / best
}

fn run_all(full: bool) -> Vec<Metric> {
    let mut out = Vec::new();
    eprintln!("bench_baseline: sim_kernel timers...");
    out.push(Metric {
        name: "sim_kernel_timers_events_per_sec",
        unit: "events/s",
        value: measure(3, 1_000_000, || timer_storm_events(1_000_000)),
    });
    eprintln!("bench_baseline: sim_kernel network...");
    out.push(Metric {
        name: "sim_kernel_network_events_per_sec",
        unit: "events/s",
        value: measure(3, 500_000, || network_ring_events(500_000)),
    });
    eprintln!("bench_baseline: classads matchmaking...");
    out.push(Metric {
        name: "classads_match_ads_per_sec",
        unit: "ads/s",
        value: measure(3, 200 * 1000, || matchmake_sweep(200)),
    });
    eprintln!("bench_baseline: gram batch 200...");
    out.push(Metric {
        name: "gram_batch_200_jobs_per_sec",
        unit: "jobs/s",
        value: measure(3, 200, || run_batch(200)),
    });
    eprintln!("bench_baseline: gram batch 10k...");
    out.push(Metric {
        name: "gram_batch_10k_jobs_per_sec",
        unit: "jobs/s",
        value: measure(1, 10_000, || run_batch(10_000)),
    });
    eprintln!("bench_baseline: stage-in storm (flow mode)...");
    out.push(Metric {
        name: "stagein_storm_jobs_per_sec",
        unit: "jobs/s",
        value: measure(1, 2_000, || run_stagein_storm(2_000)),
    });
    campaign_metrics("100k", 100_000, 50, 500, &mut out);
    flight_overhead_metric(&mut out);
    sweep_metric(&mut out);
    shard_speedup_metric(&mut out);
    if full {
        // The million-job campaign takes a couple of minutes; measured for
        // --record (and --full) so BENCH_kernel.json carries the number,
        // skipped on routine --check runs.
        campaign_metrics("1m", 1_000_000, 200, 2_000, &mut out);
    }
    out
}

// ---------------------------------------------------------------------------
// BENCH_kernel.json read/write (hand-rolled; no JSON dependency)
// ---------------------------------------------------------------------------

#[derive(Default, Clone, Copy)]
struct Recorded {
    before: Option<f64>,
    after: Option<f64>,
}

fn parse_recorded(text: &str, name: &str) -> Recorded {
    let mut rec = Recorded::default();
    let Some(pos) = text.find(&format!("\"{name}\"")) else {
        return rec;
    };
    let tail = &text[pos..];
    let end = tail.find('}').map_or(tail.len(), |i| i + 1);
    let obj = &tail[..end];
    rec.before = find_number(obj, "before");
    rec.after = find_number(obj, "after");
    rec
}

fn find_number(obj: &str, key: &str) -> Option<f64> {
    let pos = obj.find(&format!("\"{key}\""))?;
    let tail = obj[pos..].split_once(':')?.1;
    let num: String = tail
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
        .collect();
    num.parse().ok()
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.0}"),
        None => "null".into(),
    }
}

fn write_json(path: &str, metrics: &[(String, &'static str, Recorded)]) {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"bench_baseline/v1\",\n");
    out.push_str(
        "  \"note\": \"units/sec, best of N runs; see crates/bench/src/bin/bench_baseline.rs\",\n",
    );
    out.push_str("  \"metrics\": {\n");
    for (i, (name, unit, rec)) in metrics.iter().enumerate() {
        let speedup = match (rec.before, rec.after) {
            (Some(b), Some(a)) if b > 0.0 => format!("{:.2}", a / b),
            _ => "null".into(),
        };
        out.push_str(&format!(
            "    \"{name}\": {{ \"unit\": \"{unit}\", \"before\": {}, \"after\": {}, \"speedup\": {speedup} }}{}\n",
            fmt_opt(rec.before),
            fmt_opt(rec.after),
            if i + 1 < metrics.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    std::fs::write(path, out).expect("write baseline json");
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode = "run".to_string();
    let mut record_label = String::new();
    let mut path = "BENCH_kernel.json".to_string();
    let mut full = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--record" => {
                mode = "record".into();
                record_label = args.get(i + 1).cloned().unwrap_or_default();
                i += 1;
            }
            "--check" => mode = "check".into(),
            "--profile" => mode = "profile".into(),
            "--full" => full = true,
            "--file" => {
                path = args.get(i + 1).cloned().unwrap_or(path);
                i += 1;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if mode == "profile" {
        // Not a recorded metric: a kernel-profiler breakdown of the 10k-job
        // batch, for hunting where the wall-clock goes.
        let t0 = Instant::now();
        let events = run_batch_profiled(10_000, true);
        eprintln!(
            "10k batch: {events} events in {:.2}s",
            t0.elapsed().as_secs_f64()
        );
        return;
    }

    // --record runs everything so BENCH_kernel.json carries the 1M-job
    // campaign numbers; routine runs and --check stay under CI budgets.
    let results = run_all(full || mode == "record");
    println!("{:<36} {:>16}  unit", "metric", "value");
    for m in &results {
        println!("{:<36} {:>16.0}  {}", m.name, m.value, m.unit);
    }

    match mode.as_str() {
        "run" => {}
        "record" => {
            if record_label != "before" && record_label != "after" {
                eprintln!("--record expects 'before' or 'after'");
                std::process::exit(2);
            }
            let existing = std::fs::read_to_string(&path).unwrap_or_default();
            let merged: Vec<(String, &'static str, Recorded)> = results
                .iter()
                .map(|m| {
                    let mut rec = parse_recorded(&existing, m.name);
                    if record_label == "before" {
                        rec.before = Some(m.value);
                    } else {
                        rec.after = Some(m.value);
                    }
                    (m.name.to_string(), m.unit, rec)
                })
                .collect();
            write_json(&path, &merged);
            println!("\nrecorded '{record_label}' numbers in {path}");
        }
        "check" => {
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            });
            let mut failed = false;
            println!();
            for m in &results {
                // Overhead metrics are lower-is-better with an absolute
                // budget; the measured value is checked directly, no
                // committed baseline needed.
                if m.name.ends_with("_overhead_pct") {
                    let ok = m.value <= OVERHEAD_CAP_PCT;
                    println!(
                        "{:<36} {:>7.2}% (cap {OVERHEAD_CAP_PCT}%) {}",
                        m.name,
                        m.value,
                        if ok { "ok" } else { "OVER BUDGET" }
                    );
                    failed |= !ok;
                    continue;
                }
                // Speedups are already ratios: check the absolute floor,
                // not the drift against whatever host recorded the
                // baseline (a 1-core runner honestly reports ~1.0x).
                if m.name.ends_with("_speedup_x") {
                    let ok = m.value >= SPEEDUP_FLOOR_X;
                    println!(
                        "{:<36} {:>7.2}x (floor {SPEEDUP_FLOOR_X}x) {}",
                        m.name,
                        m.value,
                        if ok { "ok" } else { "REGRESSED" }
                    );
                    failed |= !ok;
                    continue;
                }
                let rec = parse_recorded(&text, m.name);
                let Some(baseline) = rec.after.or(rec.before) else {
                    println!("{:<36} no committed baseline, skipping", m.name);
                    continue;
                };
                let ratio = m.value / baseline;
                let ok = ratio >= REGRESSION_FLOOR;
                println!(
                    "{:<36} {:>7.2}x of baseline {}",
                    m.name,
                    ratio,
                    if ok { "ok" } else { "REGRESSED" }
                );
                failed |= !ok;
            }
            if failed {
                eprintln!("\nbench_baseline --check: regression beyond 25% detected");
                std::process::exit(1);
            }
            println!("\nbench_baseline --check: all metrics within 25% of baseline");
        }
        _ => unreachable!(),
    }
}
