//! F2 — Figure 2: "Remote job execution via GlideIn".
//!
//! The glidein path end-to-end: GRAM launches Condor daemons at the site;
//! they advertise to the *personal* Collector on the submit machine; the
//! Negotiator matches the user's queued jobs to them; a Shadow per job
//! serves redirected system calls and receives checkpoints.

use condor_g_suite::condor_g::api::GridJobSpec;
use condor_g_suite::gridsim::prelude::*;
use condor_g_suite::harness::{build, SiteSpec, TestbedConfig, UserConsole};

fn main() {
    let mut tb = build(TestbedConfig {
        seed: 2,
        trace: true,
        sites: vec![SiteSpec::pbs("siteA", 8), SiteSpec::pbs("siteB", 8)],
        with_personal_pool: true,
        ..TestbedConfig::default()
    });
    tb.add_glidein_factory(3, Duration::from_hours(6));
    let spec = GridJobSpec::pool(
        "figure2-job",
        "/home/jane/worker.exe",
        Duration::from_hours(1),
    )
    .with_remote_io(120.0, 32 * 1024);
    let console = UserConsole::new(tb.scheduler).submit_many(4, spec);
    let node = tb.submit;
    tb.world.add_component(node, "console", console);
    tb.world.run_until(SimTime::ZERO + Duration::from_hours(4));

    println!("== F2: the Figure-2 GlideIn path, as traced ==\n");
    for e in tb.world.trace().events().iter().take(400) {
        if matches!(
            e.kind,
            "glidein.submit"
                | "gram.submit"
                | "jm.state"
                | "lrm.start"
                | "startd.done"
                | "startd.vacate"
                | "startd.exit"
                | "negotiator.match"
                | "condor_g.log"
        ) {
            println!("  {e}");
        }
    }

    let m = tb.world.metrics();
    println!("\nFigure-2 checklist:");
    let checks = [
        (
            "GlideIns submitted through GRAM",
            m.counter("glidein.submitted") >= 6,
        ),
        (
            "glidein daemons came up at both sites",
            m.counter("glidein.started") >= 6,
        ),
        (
            "daemons advertised to the personal Collector",
            m.counter("collector.advertisements") > 0,
        ),
        (
            "matchmaking bound jobs to glideins",
            m.counter("negotiator.matches") >= 4,
        ),
        ("claims activated", m.counter("condor.claims") >= 4),
        (
            "redirected system calls served by shadows",
            m.counter("condor.syscall_batches") > 0 && m.counter("shadow.io_bytes") > 0,
        ),
        ("checkpoints shipped", m.counter("condor.checkpoints") > 0),
        ("all user jobs Done", m.counter("condor_g.jobs_done") == 4),
        (
            "idle daemons shut down gracefully afterwards",
            m.counter("condor.startd_exits") > 0,
        ),
    ];
    let mut ok = true;
    for (what, passed) in checks {
        println!("  [{}] {what}", if passed { "x" } else { " " });
        ok &= passed;
    }
    assert!(ok, "Figure-2 path incomplete");
    println!("\nFigure 2 reproduced: grid protocols built a personal Condor pool.");
}
