//! X3 — §4.3's credential management.
//!
//! "If a user's credentials have expired or are about to expire, the agent
//! places the job in a hold state in its queue and sends the user an
//! e-mail... MyProxy lets a user store a long-lived proxy credential on a
//! secure server [so Condor-G] could use these short-lived proxies... and
//! refresh them automatically."
//!
//! A 3-day workload against 12-hour proxies under three policies:
//! no management (the ablation), hold + manual refresh, MyProxy
//! auto-refresh. Reported: completions, held time, e-mails, refreshes.

use bench::report;
use condor_g_suite::condor_g::api::GridJobSpec;
use condor_g_suite::condor_g::gridmanager::{GmConfig, MyProxySettings};
use condor_g_suite::condor_g::Mailer;
use condor_g_suite::gridsim::prelude::*;
use condor_g_suite::gsi::MyProxyRequest;
use condor_g_suite::harness::{build, SiteSpec, TestbedConfig, UserConsole};
use workloads::stats::Table;

const JOBS: usize = 12;

#[derive(Clone, Copy, PartialEq)]
enum Policy {
    /// Thresholds zeroed: the agent never looks at the proxy.
    NoManagement,
    /// Paper default: hold + email; the user refreshes 2h after expiry.
    HoldAndEmail,
    /// The MyProxy enhancement.
    MyProxy,
}

impl Policy {
    fn name(self) -> &'static str {
        match self {
            Policy::NoManagement => "no management (ablation)",
            Policy::HoldAndEmail => "hold + email + manual refresh",
            Policy::MyProxy => "MyProxy auto-refresh",
        }
    }
}

struct Outcome {
    done: u64,
    failed: u64,
    holds: u64,
    emails: u64,
    refreshes: u64,
    makespan_h: f64,
}

fn run(policy: Policy) -> Outcome {
    let mut gm = GmConfig::default();
    if policy == Policy::NoManagement {
        gm.warn_before = Duration::ZERO;
        gm.hold_before = Duration::ZERO;
    }
    let mut tb = build(TestbedConfig {
        seed: 333,
        sites: vec![SiteSpec::pbs("solo", 16)],
        proxy_lifetime: Duration::from_hours(12),
        with_myproxy: policy == Policy::MyProxy,
        gm,
        ..TestbedConfig::default()
    });
    if policy == Policy::MyProxy {
        // This testbed was built without the MyProxy GmConfig (we needed
        // the server address first); rebuild with it wired in.
        let server = tb.myproxy.expect("myproxy node");
        let gm = GmConfig {
            myproxy: Some(MyProxySettings {
                server,
                account: "jane".into(),
                passphrase: 99,
                lifetime: Duration::from_hours(12),
                refresh_before: Duration::from_hours(2),
            }),
            ..GmConfig::default()
        };
        tb = build(TestbedConfig {
            seed: 333,
            sites: vec![SiteSpec::pbs("solo", 16)],
            proxy_lifetime: Duration::from_hours(12),
            with_myproxy: true,
            gm,
            ..TestbedConfig::default()
        });
        let server = tb.myproxy.expect("myproxy node");
        let long = tb.identity.new_proxy(SimTime::ZERO, Duration::from_days(7));
        tb.world.post(
            server,
            MyProxyRequest::Store {
                user: "jane".into(),
                passphrase: 99,
                credential: long,
            },
        );
    }
    // Jobs are 20h: they outlive the 12h proxy, so mid-run staging and the
    // second wave both depend on credential management.
    let spec = GridJobSpec::grid("long", "/home/jane/app.exe", Duration::from_hours(20))
        .with_stdout(100_000);
    let mut console = UserConsole::new(tb.scheduler).submit_many(JOBS, spec);
    if policy == Policy::HoldAndEmail {
        // The user reads the email and refreshes ~2h after the hold.
        let fresh = tb.identity.new_proxy(
            SimTime::ZERO + Duration::from_hours(14),
            Duration::from_hours(48),
        );
        console.refresh_at = Some((Duration::from_hours(14), fresh));
    }
    let node = tb.submit;
    tb.world.add_component(node, "console", console);
    tb.world.run_until(SimTime::ZERO + Duration::from_days(3));

    let m = tb.world.metrics();
    let inbox: Vec<(String, String)> = tb
        .world
        .store()
        .get(tb.mail_node, &Mailer::inbox_key("jane"))
        .unwrap_or_default();
    let makespan = m
        .series("condor_g.done_over_time")
        .and_then(|ts| ts.points().last().map(|&(t, _)| t.as_hours_f64()))
        .unwrap_or(f64::NAN);
    Outcome {
        done: m.counter("condor_g.jobs_done"),
        failed: m.counter("condor_g.jobs_failed"),
        holds: m.counter("gm.credential_holds"),
        emails: inbox.len() as u64,
        refreshes: m.counter("gm.myproxy_refreshes") + m.counter("condor_g.proxy_refreshes"),
        makespan_h: makespan,
    }
}

fn main() {
    let mut t = Table::new(&[
        "policy",
        "done",
        "failed",
        "holds",
        "emails",
        "refreshes",
        "last done (h)",
    ]);
    for policy in [Policy::NoManagement, Policy::HoldAndEmail, Policy::MyProxy] {
        let o = run(policy);
        t.row(&[
            policy.name().into(),
            format!("{}/{JOBS}", o.done),
            format!("{}", o.failed),
            format!("{}", o.holds),
            format!("{}", o.emails),
            format!("{}", o.refreshes),
            format!("{:.1}", o.makespan_h),
        ]);
    }
    report(
        "X3: credential lifetime management (12h proxies, 20h jobs, 3-day window)",
        "expiry triggers hold+email; refresh resumes and re-forwards; MyProxy removes the hold window entirely",
        &t,
    );
}
