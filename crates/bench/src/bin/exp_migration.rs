//! A2 — ablation: migrating queued jobs (§4.4).
//!
//! "Monitoring of actual queuing and execution times allows for the tuning
//! of where to submit subsequent jobs and to migrate queued jobs."
//!
//! Jobs early-bound to a site that turns out to be congested either sit
//! out the backlog (migration off) or move to an idle site once their
//! queue time exceeds the patience threshold (migration on). The sweep
//! varies patience.

use bench::report;
use condor_g_suite::condor_g::api::GridJobSpec;
use condor_g_suite::condor_g::gridmanager::GmConfig;
use condor_g_suite::gridsim::prelude::*;
use condor_g_suite::harness::{build, SiteSpec, TestbedConfig, UserConsole};
use condor_g_suite::site::{JobSpec, LrmRequest};
use workloads::stats::{summarize, Table};

const JOBS: usize = 16;

struct BackgroundLoad {
    lrm: Addr,
}

impl Component for BackgroundLoad {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for i in 0..16 {
            ctx.send(
                self.lrm,
                LrmRequest::Submit {
                    client_job: i,
                    spec: JobSpec::simple(Duration::from_hours(8), "locals"),
                },
            );
        }
    }
}

fn run(patience: Option<Duration>) -> (u64, u64, f64, f64) {
    let mut tb = build(TestbedConfig {
        seed: 999,
        sites: vec![SiteSpec::pbs("jammed", 8), SiteSpec::pbs("idle", 8)],
        gm: GmConfig {
            user: "jane".into(),
            migrate_pending_after: patience,
            ..GmConfig::default()
        },
        ..TestbedConfig::default()
    });
    let lrm = tb.sites[0].lrm;
    let cluster = tb.sites[0].cluster;
    tb.world
        .add_component(cluster, "background", BackgroundLoad { lrm });
    let spec = GridJobSpec::grid("task", "/home/jane/app.exe", Duration::from_mins(30));
    let console = UserConsole::new(tb.scheduler).submit_many(JOBS, spec);
    let node = tb.submit;
    tb.world.add_component(node, "console", console);
    tb.world.run_until(SimTime::ZERO + Duration::from_hours(24));
    let m = tb.world.metrics();
    let waits = m
        .histogram("condor_g.active_wait")
        .map(|h| h.samples().to_vec())
        .unwrap_or_default();
    let s = summarize(&waits);
    (
        m.counter("condor_g.jobs_done"),
        m.counter("gm.migrations"),
        s.mean / 60.0,
        s.max / 60.0,
    )
}

fn main() {
    let mut t = Table::new(&[
        "queued-job migration",
        "done",
        "migrations",
        "mean wait (min)",
        "max wait (min)",
    ]);
    for (name, patience) in [
        ("off", None),
        ("after 60 min", Some(Duration::from_mins(60))),
        ("after 20 min", Some(Duration::from_mins(20))),
        ("after 5 min", Some(Duration::from_mins(5))),
    ] {
        let (done, migrations, mean, max) = run(patience);
        t.row(&[
            name.into(),
            format!("{done}/{JOBS}"),
            format!("{migrations}"),
            format!("{mean:.1}"),
            format!("{max:.1}"),
        ]);
    }
    report(
        "A2 (ablation): migrating queued jobs (paper 4.4) \
         (round-robin parks half the jobs behind a 16-hour backlog)",
        "monitoring queue times and migrating queued jobs bounds the damage of an early binding decision",
        &t,
    );
}
