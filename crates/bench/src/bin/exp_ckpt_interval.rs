//! A1 — ablation: the checkpoint interval (design decision behind §5's
//! mobile sandboxing).
//!
//! "It periodically checkpoints the job to another location... and
//! migrates the job to another location if requested to do so."
//!
//! On a heavily churning desktop pool, sweeping the checkpoint interval
//! trades repeated work (everything since the last checkpoint is lost on
//! revocation) against checkpoint traffic. No checkpointing at all makes
//! long jobs nearly unfinishable — the reason the mechanism exists.

use bench::report;
use condor_g_suite::condor_g::api::GridJobSpec;
use condor_g_suite::gridsim::prelude::*;
use condor_g_suite::harness::{build, SiteSpec, TestbedConfig, UserConsole};
use workloads::stats::Table;

const JOBS: usize = 8;
const JOB_HOURS: u64 = 6;

struct Outcome {
    done: u64,
    vacates: u64,
    ckpts: u64,
    ckpt_gb: f64,
    busy_cpu_h: f64,
    makespan_h: f64,
}

fn run(interval: Option<Duration>) -> Outcome {
    // A genuinely stormy pool: on average half the machines are owner-
    // occupied, re-rolled every ~20 minutes.
    let stormy = SiteSpec {
        kind: condor_g_suite::harness::SiteKind::CondorPool {
            churn_mean_secs: 1200.0,
            reclaimed_mean: 8.0,
        },
        ..SiteSpec::pbs("stormy-pool", 16)
    };
    let mut tb = build(TestbedConfig {
        seed: 1313,
        sites: vec![stormy],
        with_personal_pool: true,
        proxy_lifetime: Duration::from_days(10),
        ..TestbedConfig::default()
    });
    // One glidein wave with the swept checkpoint interval.
    let collector = tb.collector.expect("pool");
    let sites = vec![condor_g_suite::condor_g::glidein::GlideinSite {
        site: "stormy-pool".into(),
        gatekeeper: tb.sites[0].gatekeeper,
        cluster_node: tb.sites[0].cluster,
        target: 12,
        lease: Duration::from_hours(24),
        machine_ad: condor_g_suite::classads::ClassAd::new()
            .with("Arch", "INTEL")
            .with("OpSys", "LINUX"),
    }];
    let factory =
        condor_g_suite::condor_g::GlideinFactory::new(sites, collector, tb.proxy.clone(), tb.gass)
            .with_ckpt_interval(interval);
    tb.world
        .add_component(tb.submit, "glidein-factory", factory);

    let spec = GridJobSpec::pool(
        "long-task",
        "/home/jane/worker.exe",
        Duration::from_hours(JOB_HOURS),
    );
    let console = UserConsole::new(tb.scheduler).submit_many(JOBS, spec);
    let node = tb.submit;
    tb.world.add_component(node, "console", console);
    tb.world.run_until(SimTime::ZERO + Duration::from_days(6));
    let end = tb.world.now();
    let m = tb.world.metrics();
    Outcome {
        done: m.counter("condor_g.jobs_done"),
        vacates: m.counter("condor.vacated") + m.counter("shadow.watchdog_vacates"),
        ckpts: m.counter("condor.checkpoints"),
        ckpt_gb: m.counter("condor.checkpoints") as f64 * 8e6 / 1e9,
        busy_cpu_h: m
            .series("condor.busy_startds")
            .map(|s| s.integral(SimTime::ZERO, end) / 3600.0)
            .unwrap_or(0.0),
        makespan_h: m
            .series("condor_g.done_over_time")
            .and_then(|ts| ts.points().last().map(|&(t, _)| t.as_hours_f64()))
            .unwrap_or(f64::NAN),
    }
}

fn main() {
    let mut t = Table::new(&[
        "ckpt interval",
        "done",
        "vacates",
        "checkpoints",
        "ckpt GB",
        "CPU-h burned",
        "ideal CPU-h",
        "last done (h)",
    ]);
    let ideal = (JOBS as u64 * JOB_HOURS) as f64;
    for (name, interval) in [
        ("none", None),
        ("5 min", Some(Duration::from_mins(5))),
        ("10 min", Some(Duration::from_mins(10))),
        ("30 min", Some(Duration::from_mins(30))),
        ("120 min", Some(Duration::from_mins(120))),
    ] {
        let o = run(interval);
        t.row(&[
            name.into(),
            format!("{}/{JOBS}", o.done),
            format!("{}", o.vacates),
            format!("{}", o.ckpts),
            format!("{:.1}", o.ckpt_gb),
            format!("{:.0}", o.busy_cpu_h),
            format!("{ideal:.0}"),
            format!("{:.1}", o.makespan_h),
        ]);
    }
    report(
        "A1 (ablation): checkpoint interval on a churning desktop pool \
         (8 six-hour jobs, 16 CPUs with aggressive owner reclamation)",
        "periodic checkpointing bounds the work lost to revocation; \
         without it, long jobs restart from zero on every preemption",
        &t,
    );
}
