//! E1 — Experience 1: the record-setting QAP campaign.
//!
//! "A Condor-G agent managed a mix of desktop workstations, commodity
//! clusters, and supercomputer processors at ten sites... over 95,000 CPU
//! hours were delivered over a period of less than seven days, with an
//! average of 653 processors being active at any one time \[and\] a maximum
//! of 1007."
//!
//! Ten heterogeneous sites (eight Condor pools, one PBS cluster, one LSF
//! supercomputer — the paper's mix), glideins everywhere, a Master–Worker
//! campaign with an effectively unbounded task pool for seven simulated
//! days. Absolute CPU-hours depend on the fleet we give the simulation;
//! the *shape* to reproduce is: multi-hundred sustained concurrency across
//! all ten sites for a week, a peak well above the average, zero lost or
//! duplicated tasks despite churn at the desktop pools.

use condor_g_suite::condor_g::api::Universe;
use condor_g_suite::condor_g::gridmanager::GmConfig;
use condor_g_suite::gridsim::prelude::*;
use condor_g_suite::gridsim::rng::Dist;
use condor_g_suite::harness::paper_sites;
use condor_g_suite::harness::{build, TestbedConfig};
use condor_g_suite::workloads::stats::Table;
use condor_g_suite::workloads::{MwConfig, MwMaster};

fn main() {
    let sites = paper_sites();
    let site_names: Vec<String> = sites.iter().map(|s| s.name.clone()).collect();
    let total_cpus: u32 = sites.iter().map(|s| s.cpus).sum();
    println!(
        "E1 testbed: {} sites, {total_cpus} CPUs total (paper: 10 sites, >2,500 CPUs)",
        sites.len()
    );

    // The campaign runs on a proxy outliving the week; the §4.3 refresh
    // machinery (12-hour proxies + MyProxy) is demonstrated separately in
    // exp_credentials — mixing both here would entangle the measurements.
    let mut tb = build(TestbedConfig {
        seed: 1001,
        sites,
        with_personal_pool: true,
        proxy_lifetime: Duration::from_days(14),
        gm: GmConfig::default(),
        ..TestbedConfig::default()
    });
    tb.add_glidein_factory(105, Duration::from_hours(12));
    let master = MwMaster::new(
        tb.scheduler,
        MwConfig {
            target_outstanding: 1050,
            total_tasks: None, // unbounded: branch-and-bound never starves
            // LAP-batch service times: heavy-tailed, ~1.3h mean.
            task_runtime: Dist::LogNormal {
                median: 3600.0,
                sigma: 0.7,
            },
            universe: Universe::Pool,
            io_interval_secs: Some(1800.0),
            io_bytes: 64 * 1024,
            stdout_size: 0,
        },
    );
    let node = tb.submit;
    tb.world.add_component(node, "mw-master", master);

    println!("running the 7-day campaign...");
    let week = Duration::from_days(7);
    tb.world.run_until(SimTime::ZERO + week);
    let end = tb.world.now();

    let m = tb.world.metrics();
    let busy = m.series("condor.busy_startds").expect("busy gauge");
    let cpu_hours = busy.integral(SimTime::ZERO, end) / 3600.0;
    let avg = busy.time_weighted_mean(SimTime::ZERO, end);
    let peak = busy.max();
    let tasks = MwMaster::completed(&tb.world, node);

    println!();
    let mut t = Table::new(&["metric", "measured", "paper"]);
    t.row(&[
        "duration (days)".into(),
        format!("{:.1}", end.as_secs_f64() / 86400.0),
        "<7".into(),
    ]);
    t.row(&[
        "CPU-hours delivered".into(),
        format!("{cpu_hours:.0}"),
        "95,000".into(),
    ]);
    t.row(&[
        "avg processors active".into(),
        format!("{avg:.0}"),
        "653".into(),
    ]);
    t.row(&[
        "peak processors active".into(),
        format!("{peak:.0}"),
        "1007".into(),
    ]);
    t.row(&[
        "worker tasks completed".into(),
        format!("{tasks}"),
        "(540e9 LAPs total)".into(),
    ]);
    t.row(&[
        "glideins started".into(),
        format!("{}", m.counter("glidein.started")),
        "-".into(),
    ]);
    t.row(&[
        "preemptions survived".into(),
        format!(
            "{}",
            m.counter("condor.vacated") + m.counter("site.vacated")
        ),
        "-".into(),
    ]);
    t.row(&[
        "checkpoints".into(),
        format!("{}", m.counter("condor.checkpoints")),
        "-".into(),
    ]);
    t.row(&[
        "tasks lost or duplicated".into(),
        format!(
            "{}",
            m.counter("mw.task_failures") // re-dispatched, not lost
        ),
        "0 lost".into(),
    ]);
    bench::report(
        "E1: the QAP campaign, ten sites, seven days",
        "95,000 CPU-hours in <7 days; avg 653 / max 1007 processors active",
        &t,
    );

    println!("per-site delivered CPU (glidein allocations occupying site slots):");
    let mut t = Table::new(&["site", "cpus", "avg busy", "utilization %"]);
    for (name, spec_cpus) in site_names.iter().zip(paper_sites().iter().map(|s| s.cpus)) {
        let s = tb.world.metrics().series(&format!("site.{name}.busy"));
        let avg = s
            .map(|s| s.time_weighted_mean(SimTime::ZERO, end))
            .unwrap_or(0.0);
        t.row(&[
            name.clone(),
            format!("{spec_cpus}"),
            format!("{avg:.0}"),
            format!("{:.0}", 100.0 * avg / spec_cpus as f64),
        ]);
    }
    println!("{}", t.render());
}
