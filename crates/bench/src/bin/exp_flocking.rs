//! X6 — the §7 related-work comparison with Condor flocking.
//!
//! "The major difference between Condor flocking and Condor-G is that
//! Condor-G allows inter-domain operation on remote resources that require
//! authentication, and uses standard protocols that provide access to
//! resources controlled by other resource management systems, rather than
//! the special-purpose sharing mechanisms of Condor."
//!
//! The grid: the user's home Condor pool (16 CPUs), a friendly remote
//! Condor pool (32 CPUs) that flocks with home, a PBS cluster (64 CPUs)
//! and an LSF machine (32 CPUs) behind GSI gatekeepers. Flocking can use
//! the two Condor pools only; Condor-G (glideins over GRAM) reaches all
//! 144 CPUs.

use bench::report;
use condor_g_suite::classads::ClassAd;
use condor_g_suite::condor::{Collector, Negotiator, Schedd, Startd};
use condor_g_suite::condor_g::api::GridJobSpec;
use condor_g_suite::gridsim::prelude::*;
use condor_g_suite::harness::{build, SiteSpec, TestbedConfig, UserConsole};
use workloads::stats::Table;

const JOBS: usize = 144;
const JOB_HOURS: u64 = 2;

struct Outcome {
    done: u64,
    makespan_h: f64,
    cpus_reached: u32,
}

/// Condor-G: glideins across every site (including the Condor pools,
/// which Condor-G reaches through their gatekeepers like anything else).
fn run_condor_g() -> Outcome {
    let mut tb = build(TestbedConfig {
        seed: 666,
        sites: vec![
            SiteSpec::condor_pool("home-pool", 16),
            SiteSpec::condor_pool("remote-pool", 32),
            SiteSpec::pbs("pbs-cluster", 64),
            SiteSpec::lsf("lsf-super", 32),
        ],
        with_personal_pool: true,
        ..TestbedConfig::default()
    });
    tb.add_glidein_factory(36, Duration::from_hours(12));
    let spec = GridJobSpec::pool(
        "task",
        "/home/jane/worker.exe",
        Duration::from_hours(JOB_HOURS),
    );
    let console = UserConsole::new(tb.scheduler).submit_many(JOBS, spec);
    let node = tb.submit;
    tb.world.add_component(node, "console", console);
    tb.world.run_until(SimTime::ZERO + Duration::from_days(3));
    let m = tb.world.metrics();
    Outcome {
        done: m.counter("condor_g.jobs_done"),
        makespan_h: m
            .series("condor_g.done_over_time")
            .and_then(|ts| ts.points().last().map(|&(t, _)| t.as_hours_f64()))
            .unwrap_or(f64::NAN),
        cpus_reached: 144,
    }
}

/// Flocking baseline: a raw condor world — home pool + remote pool with
/// the schedd flocked to both collectors. The PBS/LSF resources exist but
/// are unreachable (different administrative domains, no shared Condor).
fn run_flocking() -> Outcome {
    let mut w = gridsim::World::new(gridsim::Config::default().seed(666));
    let home = w.add_node("home-central");
    let remote = w.add_node("remote-central");
    let submit = w.add_node("submit");
    let home_collector = w.add_component(home, "collector", Collector::new());
    w.add_component(
        home,
        "negotiator",
        Negotiator::new(home_collector, Duration::from_mins(1)),
    );
    let remote_collector = w.add_component(remote, "collector", Collector::new());
    w.add_component(
        remote,
        "negotiator",
        Negotiator::new(remote_collector, Duration::from_mins(1)),
    );
    let machine_ad = || ClassAd::new().with("Arch", "INTEL").with("OpSys", "LINUX");
    for i in 0..16 {
        let n = w.add_node(&format!("home-exec{i}"));
        w.add_component(
            n,
            "startd",
            Startd::new(&format!("home{i}"), machine_ad(), home_collector),
        );
    }
    for i in 0..32 {
        let n = w.add_node(&format!("remote-exec{i}"));
        w.add_component(
            n,
            "startd",
            Startd::new(&format!("remote{i}"), machine_ad(), remote_collector),
        );
    }
    let schedd = w.add_component(
        submit,
        "schedd",
        Schedd::new("jane@submit", vec![home_collector, remote_collector]),
    );
    struct User {
        schedd: Addr,
    }
    impl Component for User {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for i in 0..JOBS {
                ctx.send(
                    self.schedd,
                    condor_g_suite::condor::PoolSubmit {
                        client_id: i as u64,
                        ad: ClassAd::new()
                            .with("Owner", "jane")
                            .with("TotalWork", (JOB_HOURS * 3600) as i64),
                    },
                );
            }
        }
    }
    w.add_component(submit, "user", User { schedd });
    w.run_until(SimTime::ZERO + Duration::from_days(3));
    let m = w.metrics();
    let done = m.counter("schedd.completed");
    // Makespan from the busy gauge.
    let makespan = m
        .series("condor.busy_startds")
        .and_then(|s| {
            s.points()
                .iter()
                .rev()
                .find(|&&(_, v)| v > 0.0)
                .map(|&(t, _)| t.as_hours_f64())
        })
        .unwrap_or(f64::NAN);
    Outcome {
        done,
        makespan_h: makespan,
        cpus_reached: 48,
    }
}

fn main() {
    let flocking = run_flocking();
    let condor_g = run_condor_g();
    let mut t = Table::new(&[
        "system",
        "CPUs reachable",
        "jobs done",
        "makespan (h)",
        "why",
    ]);
    t.row(&[
        "Condor flocking".into(),
        format!("{}/144", flocking.cpus_reached),
        format!("{}/{JOBS}", flocking.done),
        format!("{:.1}", flocking.makespan_h),
        "only Condor pools flock; PBS/LSF domains unreachable".into(),
    ]);
    t.row(&[
        "Condor-G (GRAM + glideins)".into(),
        format!("{}/144", condor_g.cpus_reached),
        format!("{}/{JOBS}", condor_g.done),
        format!("{:.1}", condor_g.makespan_h),
        "standard protocols + GSI reach every domain".into(),
    ]);
    report(
        &format!(
            "X6: Condor flocking vs Condor-G ({JOBS} two-hour jobs; 144 CPUs exist across 4 domains)"
        ),
        "flocking is limited to Condor's own sharing mechanisms; Condor-G reaches resources managed by other systems through standard, authenticated protocols",
        &t,
    );
}
