//! X4 — §5's late-binding claim.
//!
//! "By submitting GlideIns to all remote resources capable of serving a
//! job, Condor-G can guarantee optimal queuing times to its users...
//! the agent minimizes queuing delays by preventing a job from waiting at
//! one remote resource while another resource capable of serving the job
//! is available."
//!
//! Two sites, one artificially congested with background load. The direct
//! strategy commits each job to a queue at submit time (round-robin, like
//! the user-supplied-list broker); the GlideIn strategy floods both sites
//! with glideins and binds jobs when an allocation actually arrives. We
//! sweep the load imbalance and compare wait-until-execution.

use bench::report;
use condor_g_suite::condor_g::api::GridJobSpec;
use condor_g_suite::gass::GassUrl;
use condor_g_suite::gram::proto::{GramReply, JmMsg};
use condor_g_suite::gram::{RslSpec, SubmitSession};
use condor_g_suite::gridsim::prelude::*;
use condor_g_suite::gridsim::{Addr as GAddr, AnyMsg};
use condor_g_suite::gsi::ProxyCredential;
use condor_g_suite::harness::{build, SiteSpec, TestbedConfig, UserConsole};
use condor_g_suite::site::{JobSpec, LrmRequest};
use std::collections::BTreeMap;
use workloads::stats::{summarize, Table};

const JOBS: usize = 24;

/// Fill a site with background jobs so grid jobs queue behind them.
struct BackgroundLoad {
    lrm: Addr,
    jobs: u32,
    each: Duration,
}

impl Component for BackgroundLoad {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for i in 0..self.jobs {
            ctx.send(
                self.lrm,
                LrmRequest::Submit {
                    client_job: i as u64,
                    spec: JobSpec::simple(self.each, "locals"),
                },
            );
        }
    }
}

struct Outcome {
    mean_wait_mins: f64,
    p90_wait_mins: f64,
    makespan_hours: f64,
    done: u64,
}

/// `congestion_hours`: how much backlog (per CPU) the busy site carries.
fn run(glidein: bool, congestion_hours: u64, seed: u64) -> Outcome {
    let mut tb = build(TestbedConfig {
        seed,
        sites: vec![SiteSpec::pbs("busy", 16), SiteSpec::pbs("idle", 16)],
        with_personal_pool: glidein,
        ..TestbedConfig::default()
    });
    // Backlog at the busy site: 2 waves of 16 jobs, each congestion_hours/2.
    let lrm = tb.sites[0].lrm;
    let bg = BackgroundLoad {
        lrm,
        jobs: 32,
        each: Duration::from_hours(congestion_hours) / 2,
    };
    let bg_node = tb.sites[0].cluster;
    tb.world.add_component(bg_node, "background", bg);

    let spec = if glidein {
        GridJobSpec::pool("task", "/home/jane/worker.exe", Duration::from_mins(30))
    } else {
        GridJobSpec::grid("task", "/home/jane/app.exe", Duration::from_mins(30))
    };
    if glidein {
        tb.add_glidein_factory(JOBS as u32, Duration::from_hours(8));
    }
    let console = UserConsole::new(tb.scheduler).submit_many(JOBS, spec);
    let node = tb.submit;
    tb.world.add_component(node, "console", console);
    tb.world.run_until(SimTime::ZERO + Duration::from_days(2));

    // Wait = submission to first Active, as the agent records it per job
    // (condor_g.active_wait covers both universes identically).
    let m = tb.world.metrics();
    let done = m.counter("condor_g.jobs_done");
    let _ = node;
    let waits = m
        .histogram("condor_g.active_wait")
        .map(|h| h.samples().to_vec())
        .unwrap_or_default();
    let s = summarize(&waits);
    // Makespan: last Done.
    let makespan = m
        .series("condor_g.done_over_time")
        .map(|ts| {
            ts.points()
                .last()
                .map(|&(t, _)| t.as_hours_f64())
                .unwrap_or(0.0)
        })
        .unwrap_or(tb.world.now().as_hours_f64());
    Outcome {
        mean_wait_mins: s.mean / 60.0,
        p90_wait_mins: s.p90 / 60.0,
        makespan_hours: makespan,
        done,
    }
}

/// §4.4's other technique: "a simple but effective technique is to flood
/// candidate resources with requests to execute jobs. These can be the
/// actual jobs submitted by the user or Condor GlideIns". This client
/// submits each job to *every* site, commits all copies, and cancels the
/// losers the moment one starts executing.
struct FloodClient {
    gatekeepers: Vec<GAddr>,
    credential: ProxyCredential,
    gass: GassUrl,
    jobs: usize,
    runtime: Duration,
    /// seq -> (job index, session).
    sessions: BTreeMap<u64, (usize, SubmitSession)>,
    /// contact -> (job index, jobmanager).
    contacts: BTreeMap<u64, (usize, GAddr)>,
    /// job index -> winning contact.
    winner: BTreeMap<usize, u64>,
    submitted_at: SimTime,
}

impl Component for FloodClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.submitted_at = ctx.now();
        let mut seq = 0u64;
        for job in 0..self.jobs {
            for &gk in &self.gatekeepers {
                let mut s = SubmitSession::new(
                    seq,
                    RslSpec::job("/site/bin/task", self.runtime).to_string(),
                    self.credential.clone(),
                    ctx.self_addr(),
                    self.gass.clone(),
                );
                ctx.send(gk, s.request());
                self.sessions.insert(seq, (job, s));
                seq += 1;
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: GAddr, msg: AnyMsg) {
        if let Some(reply) = msg.downcast_ref::<GramReply>() {
            if let GramReply::Submitted {
                seq,
                contact,
                jobmanager,
            } = reply
            {
                if let Some((job, s)) = self.sessions.get_mut(seq) {
                    use condor_g_suite::gram::client::SubmitAction;
                    if let SubmitAction::SendCommit { jobmanager, .. } = s.on_reply(reply) {
                        ctx.send(jobmanager, JmMsg::Commit);
                        self.contacts.insert(contact.0, (*job, jobmanager));
                    }
                }
                let _ = jobmanager;
            }
            return;
        }
        if let Some(JmMsg::Callback { contact, state, .. }) = msg.downcast_ref::<JmMsg>() {
            let Some(&(job, _)) = self.contacts.get(&contact.0) else {
                return;
            };
            match state {
                condor_g_suite::gram::proto::GramJobState::Active => {
                    if self.winner.contains_key(&job) {
                        // A second copy started before our cancel landed:
                        // kill it too (late binding by brute force).
                        if let Some(&(_, jm)) = self.contacts.get(&contact.0) {
                            ctx.send(jm, JmMsg::Cancel);
                        }
                        return;
                    }
                    self.winner.insert(job, contact.0);
                    let wait = ctx.now() - self.submitted_at;
                    ctx.metrics().observe_duration("flood.active_wait", wait);
                    // Cancel every other copy of this job.
                    for (&c, &(j, jm)) in &self.contacts {
                        if j == job && c != contact.0 {
                            ctx.send(jm, JmMsg::Cancel);
                        }
                    }
                }
                s if s.is_terminal() => {
                    if let Some(&(_, jm)) = self.contacts.get(&contact.0) {
                        ctx.send(jm, JmMsg::DoneAck);
                    }
                    if *state == condor_g_suite::gram::proto::GramJobState::Done {
                        ctx.metrics().incr("flood.jobs_done", 1);
                    }
                }
                _ => {}
            }
        }
    }
}

fn run_flood(congestion_hours: u64, seed: u64) -> Outcome {
    let mut tb = build(TestbedConfig {
        seed,
        sites: vec![SiteSpec::pbs("busy", 16), SiteSpec::pbs("idle", 16)],
        ..TestbedConfig::default()
    });
    let lrm = tb.sites[0].lrm;
    let bg_node = tb.sites[0].cluster;
    tb.world.add_component(
        bg_node,
        "background",
        BackgroundLoad {
            lrm,
            jobs: 32,
            each: Duration::from_hours(congestion_hours) / 2,
        },
    );
    let gatekeepers = tb.sites.iter().map(|s| s.gatekeeper).collect();
    let node = tb.submit;
    let client = FloodClient {
        gatekeepers,
        credential: tb.proxy.clone(),
        gass: GassUrl::gass(tb.gass, ""),
        jobs: JOBS,
        runtime: Duration::from_mins(30),
        sessions: BTreeMap::new(),
        contacts: BTreeMap::new(),
        winner: BTreeMap::new(),
        submitted_at: SimTime::ZERO,
    };
    tb.world.add_component(node, "flood", client);
    tb.world.run_until(SimTime::ZERO + Duration::from_days(2));
    let m = tb.world.metrics();
    let waits = m
        .histogram("flood.active_wait")
        .map(|h| h.samples().to_vec())
        .unwrap_or_default();
    let s = summarize(&waits);
    Outcome {
        done: m.counter("flood.jobs_done"),
        mean_wait_mins: s.mean / 60.0,
        p90_wait_mins: s.p90 / 60.0,
        makespan_hours: f64::NAN,
    }
}

fn main() {
    let mut table = Table::new(&[
        "backlog (h/cpu)",
        "strategy",
        "jobs done",
        "mean wait (min)",
        "p90 wait (min)",
        "last job done (h)",
    ]);
    for congestion in [0u64, 4, 8, 16] {
        for strategy in 0..3 {
            let (name, o): (&str, Outcome) = match strategy {
                0 => ("direct GRAM", run(false, congestion, 777)),
                1 => ("flood jobs + cancel", run_flood(congestion, 777)),
                _ => ("GlideIn (late binding)", run(true, congestion, 777)),
            };
            table.row(&[
                format!("{congestion}"),
                name.into(),
                format!("{}/{JOBS}", o.done),
                format!("{:.1}", o.mean_wait_mins),
                format!("{:.1}", o.p90_wait_mins),
                if o.makespan_hours.is_nan() {
                    "-".into()
                } else {
                    format!("{:.1}", o.makespan_hours)
                },
            ]);
        }
    }
    report(
        "X4: late binding vs direct queue commitment (one congested site, one idle)",
        "flooding resources with requests — actual jobs or GlideIns — prevents a job \
         from waiting at one resource while another capable resource is available",
        &table,
    );
}
