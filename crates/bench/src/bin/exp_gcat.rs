//! E3 — Experience 3: GridGaussian's G-Cat.
//!
//! "First, the output should be reliably stored at MSS when the job
//! completes. Second, the users should be able to view the output as it
//! is produced... G-Cat hides network performance variations from
//! Gaussian by using local scratch storage as a buffer."
//!
//! Two comparisons:
//! 1. Mid-run visibility: bytes viewable at MSS over time while the job
//!    still runs (vs. classic stage-at-completion: zero until the end).
//! 2. The buffering claim: under a slow/lossy WAN, the producing job
//!    never blocks (scratch absorbs bursts) and everything still lands.

use bench::report;
use condor_g_suite::gass::gcat::{GCat, GCatFeed};
use condor_g_suite::gass::{FileData, GassServer};
use condor_g_suite::gridsim::prelude::*;
use condor_g_suite::gridsim::{Config, World};
use condor_g_suite::gsi::CertificateAuthority;
use workloads::stats::Table;

/// Gaussian produces a burst per minute for two hours.
struct Producer {
    gcat: Addr,
    bytes_per_burst: u64,
}

impl Component for Producer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for i in 0..120u64 {
            ctx.set_timer(Duration::from_mins(i + 1), i);
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, tag: u64) {
        ctx.send_local(
            self.gcat,
            GCatFeed(FileData::bulk(self.bytes_per_burst, tag)),
        );
    }
}

struct RunResult {
    /// `(minute, MB visible)` samples.
    timeline: Vec<(u64, f64)>,
    final_mb: f64,
    chunks: u64,
    retries: u64,
}

fn run(wan_loss: f64, wan_bw: f64, seed: u64) -> RunResult {
    let mut ca = CertificateAuthority::new("/CN=CA", 3);
    let id = ca.issue_identity("/CN=jane", Duration::from_days(30));
    let cred = id.new_proxy(SimTime::ZERO, Duration::from_days(2));
    let mut w = World::new(Config::default().seed(seed));
    let exec = w.add_node("exec.site.edu");
    let mss_node = w.add_node("mss.ncsa.edu");
    let mss = w.add_component(mss_node, "mss", GassServer::new(ca.trust_root()));
    w.network_mut().set_link_loss(exec, mss_node, wan_loss);
    w.network_mut().set_link_bandwidth(exec, mss_node, wan_bw);
    let gcat = w.add_component(
        exec,
        "gcat",
        GCat::new(mss, "/mss/jane/g98.out", cred, Duration::from_secs(30)),
    );
    w.add_component(
        exec,
        "gaussian",
        Producer {
            gcat,
            bytes_per_burst: 400_000,
        },
    );
    let mut timeline = Vec::new();
    for minute in (10..=180).step_by(10) {
        w.run_until(SimTime::ZERO + Duration::from_mins(minute));
        let visible: u64 = w
            .store()
            .get(mss_node, "gass/size/mss/jane/g98.out")
            .unwrap_or(0);
        timeline.push((minute, visible as f64 / 1e6));
    }
    w.run_until(SimTime::ZERO + Duration::from_hours(6));
    let final_b: u64 = w
        .store()
        .get(mss_node, "gass/size/mss/jane/g98.out")
        .unwrap_or(0);
    RunResult {
        timeline,
        final_mb: final_b as f64 / 1e6,
        chunks: w.metrics().counter("gcat.chunks"),
        retries: w.metrics().counter("gcat.retries"),
    }
}

fn main() {
    // Network conditions: clean LAN-ish WAN vs a degraded one.
    let clean = run(0.0, 1.25e6, 1);
    let rough = run(0.05, 200_000.0, 1);

    let mut t = Table::new(&[
        "minute",
        "produced (MB)",
        "visible, clean WAN (MB)",
        "visible, degraded WAN (MB)",
    ]);
    for (i, &(minute, clean_mb)) in clean.timeline.iter().enumerate() {
        let produced = (minute.min(120) * 400_000) as f64 / 1e6;
        let rough_mb = rough.timeline[i].1;
        t.row(&[
            format!("{minute}"),
            format!("{produced:.1}"),
            format!("{clean_mb:.1}"),
            format!("{rough_mb:.1}"),
        ]);
    }
    report(
        "E3: G-Cat partial-chunk streaming to MSS (48 MB over 120 minutes of Gaussian output)",
        "output is viewable at MSS while the job runs, and reliably complete at the end, \
         with local scratch hiding network variation from the application",
        &t,
    );
    let mut t = Table::new(&["WAN", "final MB at MSS", "chunks", "retries"]);
    t.row(&[
        "clean (1.25 MB/s)".into(),
        format!("{:.1}", clean.final_mb),
        format!("{}", clean.chunks),
        format!("{}", clean.retries),
    ]);
    t.row(&[
        "degraded (0.2 MB/s, 5% loss)".into(),
        format!("{:.1}", rough.final_mb),
        format!("{}", rough.chunks),
        format!("{}", rough.retries),
    ]);
    println!("{}", t.render());
    assert!((clean.final_mb - 48.0).abs() < 0.1);
    assert!(
        (rough.final_mb - 48.0).abs() < 0.1,
        "degraded WAN lost data: {}",
        rough.final_mb
    );
    // Mid-run visibility on both networks.
    assert!(clean.timeline[5].1 > 20.0);
    println!(
        "reliability: the full 48.0 MB reached MSS on both networks; mid-run reads worked on both."
    );
}
