//! X5 — §4.4's resource brokering.
//!
//! "A simple approach... is to employ a user-supplied list of GRAM
//! servers... A more sophisticated approach is to construct a personal
//! resource broker... combin\[ing\] information about user authorization,
//! application requirements and resource status (obtained from MDS)."
//!
//! Heterogeneous sites — different architectures, sizes, and pre-existing
//! load — and a mixed job stream with per-job requirements. The static
//! list round-robins blindly (failing on wrong-arch sites and queueing at
//! busy ones); the MDS matchmaking broker reads ads and steers.

use bench::report;
use condor_g_suite::condor_g::api::GridJobSpec;
use condor_g_suite::gridsim::prelude::*;
use condor_g_suite::harness::{build, SiteSpec, TestbedConfig, UserConsole};
use condor_g_suite::site::{JobSpec, LrmRequest};
use workloads::stats::{summarize, Table};

const JOBS: usize = 30;

struct BackgroundLoad {
    lrm: Addr,
    jobs: u32,
    each: Duration,
}

impl Component for BackgroundLoad {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for i in 0..self.jobs {
            ctx.send(
                self.lrm,
                LrmRequest::Submit {
                    client_job: i as u64,
                    spec: JobSpec::simple(self.each, "locals"),
                },
            );
        }
    }
}

struct Outcome {
    done: u64,
    failed_attempts: u64,
    mean_wait_min: f64,
    p90_wait_min: f64,
    makespan_h: f64,
}

fn run(mds: bool) -> Outcome {
    let mut tb = build(TestbedConfig {
        seed: 555,
        sites: vec![
            SiteSpec::pbs("intel-big", 32).with_arch("INTEL"),
            SiteSpec::pbs("intel-busy", 16).with_arch("INTEL"),
            SiteSpec::pbs("sparc", 48).with_arch("SUN4u"),
        ],
        with_mds: true, // GRIS/GIIS always exist; only the broker differs
        mds_broker: mds,
        ..TestbedConfig::default()
    });
    // Pre-load the busy INTEL site with 8 hours of backlog per CPU.
    let lrm = tb.sites[1].lrm;
    let cluster = tb.sites[1].cluster;
    tb.world.add_component(
        cluster,
        "background",
        BackgroundLoad {
            lrm,
            jobs: 32,
            each: Duration::from_hours(4),
        },
    );
    // The jobs demand INTEL (the paper's "application requirements").
    let spec = GridJobSpec::grid("intel-task", "/home/jane/app.exe", Duration::from_mins(45))
        .with_arch("INTEL") // the binary truly only runs on INTEL
        .with_requirements("TARGET.Arch == \"INTEL\" && TARGET.FreeCpus > 0")
        .with_rank("TARGET.FreeCpus");
    let console = UserConsole::new(tb.scheduler).submit_many(JOBS, spec);
    let node = tb.submit;
    tb.world.add_component(node, "console", console);
    tb.world.run_until(SimTime::ZERO + Duration::from_days(2));

    let m = tb.world.metrics();
    let waits = m
        .histogram("condor_g.active_wait")
        .map(|h| h.samples().to_vec())
        .unwrap_or_default();
    let s = summarize(&waits);
    Outcome {
        done: m.counter("condor_g.jobs_done"),
        failed_attempts: m.counter("gm.attempt_failures"),
        mean_wait_min: s.mean / 60.0,
        p90_wait_min: s.p90 / 60.0,
        makespan_h: m
            .series("condor_g.done_over_time")
            .and_then(|ts| ts.points().last().map(|&(t, _)| t.as_hours_f64()))
            .unwrap_or(f64::NAN),
    }
}

fn main() {
    let mut t = Table::new(&[
        "broker",
        "done",
        "failed attempts",
        "mean wait (min)",
        "p90 wait (min)",
        "last done (h)",
    ]);
    for mds in [false, true] {
        let o = run(mds);
        t.row(&[
            if mds {
                "MDS matchmaking".into()
            } else {
                "static list (round-robin)".into()
            },
            format!("{}/{JOBS}", o.done),
            format!("{}", o.failed_attempts),
            format!("{:.1}", o.mean_wait_min),
            format!("{:.1}", o.p90_wait_min),
            format!("{:.1}", o.makespan_h),
        ]);
    }
    report(
        "X5: resource brokering — user-supplied list vs MDS matchmaking \
         (two INTEL sites, one busy; one SPARC site the jobs cannot use)",
        "the personal broker combines application requirements and MDS resource status to pick sites",
        &t,
    );
}
