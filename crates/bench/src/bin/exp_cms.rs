//! E2 — Experience 2: the CMS simulation/reconstruction pipeline.
//!
//! "100 simulation jobs... Each of these jobs generates 500 events... all
//! events produced are transferred via GridFTP to a data repository...
//! Once all simulation jobs terminate and all data is shipped... a
//! subsequent reconstruction job... resources at three sites were used to
//! simulate and reconstruct 50,000 high-energy physics events, consuming
//! 1200 CPU hours in less than a day and a half."

use bench::report;
use condor_g_suite::condor_g::DagMan;
use condor_g_suite::gridsim::prelude::*;
use condor_g_suite::harness::{build, SiteSpec, TestbedConfig};
use condor_g_suite::workloads::cms::{cms_pipeline, CmsParams};
use workloads::stats::Table;

fn main() {
    let mut tb = build(TestbedConfig {
        seed: 500,
        sites: vec![
            SiteSpec::pbs("caltech", 8).with_arch("INTEL"), // the agent's home side jobs
            SiteSpec::pbs("wisc", 120).with_arch("INTEL"),
            SiteSpec::pbs("ncsa", 32).with_arch("IA64"),
        ],
        with_mds: true,
        mds_broker: true,
        proxy_lifetime: Duration::from_days(7),
        ..TestbedConfig::default()
    });
    let params = CmsParams::default();
    let dag = cms_pipeline(
        &params,
        Some("TARGET.Name == \"wisc\""),
        Some("TARGET.Name == \"ncsa\""),
    );
    let node = tb.submit;
    let scheduler = tb.scheduler;
    tb.world
        .add_component(node, "dagman", DagMan::new(dag, scheduler));
    tb.world.run_until(SimTime::ZERO + Duration::from_days(3));

    let m = tb.world.metrics();
    let done: u64 = tb.world.store().get(node, "dag/done_nodes").unwrap_or(0);
    let success: bool = tb.world.store().get(node, "dag/success").unwrap_or(false);
    let makespan = m
        .series("condor_g.done_over_time")
        .and_then(|ts| ts.points().last().map(|&(t, _)| t.as_hours_f64()))
        .unwrap_or(f64::NAN);
    let cpu_hours: f64 = ["wisc", "ncsa"]
        .iter()
        .filter_map(|s| m.histogram(&format!("site.{s}.cpu_seconds")))
        .map(|h| h.sum() / 3600.0)
        .sum();
    let wisc_jobs = m
        .histogram("site.wisc.cpu_seconds")
        .map(|h| h.count())
        .unwrap_or(0);
    let ncsa_jobs = m
        .histogram("site.ncsa.cpu_seconds")
        .map(|h| h.count())
        .unwrap_or(0);

    let mut t = Table::new(&["metric", "measured", "paper"]);
    t.row(&["DAG completed".into(), format!("{success}"), "yes".into()]);
    t.row(&["nodes done".into(), format!("{done}/101"), "101".into()]);
    t.row(&[
        "events produced".into(),
        format!("{}", params.total_events()),
        "50,000".into(),
    ]);
    t.row(&[
        "event data shipped (GB)".into(),
        format!("{:.1}", m.counter("net.bulk_bytes") as f64 / 1e9),
        format!("~{:.0}", params.total_bytes() as f64 / 1e9),
    ]);
    t.row(&[
        "CPU-hours".into(),
        format!("{cpu_hours:.0}"),
        "~1200".into(),
    ]);
    t.row(&[
        "makespan (hours)".into(),
        format!("{makespan:.1}"),
        "<36".into(),
    ]);
    t.row(&[
        "simulations at wisc".into(),
        format!("{wisc_jobs}"),
        "100".into(),
    ]);
    t.row(&[
        "reconstructions at ncsa".into(),
        format!("{ncsa_jobs}"),
        "1".into(),
    ]);
    report(
        "E2: the CMS pipeline (100 sims x 500 events -> GridFTP -> reconstruction)",
        "50,000 events, ~1200 CPU-hours, done in under a day and a half, with strict ordering",
        &t,
    );
    assert!(success, "pipeline failed");
    assert_eq!(wisc_jobs, 100);
    assert_eq!(ncsa_jobs, 1);
}
