//! X2 — §4.2's fault-tolerance matrix.
//!
//! "Condor-G is built to tolerate four types of failure: crash of the
//! Globus JobManager, crash of the machine that manages the remote
//! resource, crash of the machine on which the GridManager is executing,
//! and failures in the network connecting the two machines."
//!
//! Each failure class is injected mid-campaign, with the agent's recovery
//! machinery on and off. With recovery on, every job must finish exactly
//! once; with it off, jobs strand.

use bench::report;
use condor_g_suite::condor_g::api::GridJobSpec;
use condor_g_suite::condor_g::gridmanager::GmConfig;
use condor_g_suite::gram::proto::JobContact;
use condor_g_suite::gridsim::prelude::*;
use condor_g_suite::harness::{build, SiteSpec, Testbed, TestbedConfig, UserConsole};
use workloads::stats::Table;

const JOBS: usize = 8;

#[derive(Clone, Copy, Debug)]
enum Failure {
    None,
    JobManagerCrash,
    ResourceMachineCrash,
    SubmitMachineCrash,
    NetworkPartition,
}

impl Failure {
    fn name(self) -> &'static str {
        match self {
            Failure::None => "no failure (control)",
            Failure::JobManagerCrash => "JobManager crash",
            Failure::ResourceMachineCrash => "resource machine crash",
            Failure::SubmitMachineCrash => "submit machine crash",
            Failure::NetworkPartition => "network partition",
        }
    }
}

struct Outcome {
    done: u64,
    executions: u64,
    restarts: u64,
    recoveries: u64,
}

/// Kill individual JobManager components (failure class 1) without taking
/// the whole machine down.
fn kill_jobmanagers(tb: &mut Testbed) {
    // JobManagers register under "jm-<contact>" names on the interface
    // node; contacts embed the site hash, so scan a window of ids.
    let node = tb.sites[0].interface;
    let base = (condor_g_suite::gsi::keys::digest("solo".as_bytes()) & 0xFFFF_FFFF) << 32;
    for off in 0..64 {
        let name = format!("jm-{}", JobContact(base + off));
        if let Some(addr) = tb.world.lookup(node, &name) {
            tb.world.kill_component_now(addr);
        }
    }
}

fn run(failure: Failure, recovery: bool, seed: u64) -> Outcome {
    let mut tb = build(TestbedConfig {
        seed,
        sites: vec![SiteSpec::pbs("solo", JOBS as u32)],
        gm: GmConfig {
            user: "jane".into(),
            recovery,
            ..GmConfig::default()
        },
        ..TestbedConfig::default()
    });
    // 30-minute jobs: they *complete at the site during the outage*, so
    // every failure class actually threatens the result. No stdout — the
    // termination callback itself is the thing at risk (output staging has
    // its own retransmission and would mask the loss).
    let spec = GridJobSpec::grid("work", "/home/jane/app.exe", Duration::from_mins(30));
    let console = UserConsole::new(tb.scheduler).submit_many(JOBS, spec);
    let node = tb.submit;
    tb.world.add_component(node, "console", console);

    // Submit-machine boot hook (class 3 needs it).
    {
        let sites: Vec<_> = tb
            .sites
            .iter()
            .map(|s| (s.name.clone(), s.gatekeeper))
            .collect();
        let proxy = tb.proxy.clone();
        let gass = tb.gass;
        let mailer = tb.mailer;
        let trust = tb.trust.clone();
        tb.world.set_boot(node, move |b| {
            b.add_component(
                "gass",
                condor_g_suite::gass::GassServer::recover(trust.clone(), b.store(), b.node()),
            );
            b.add_component("mailer", condor_g_suite::condor_g::Mailer::new());
            let broker = Box::new(condor_g_suite::condor_g::StaticListBroker::new(
                sites
                    .iter()
                    .map(|(name, addr)| condor_g_suite::condor_g::GatekeeperInfo {
                        site: name.clone(),
                        addr: *addr,
                        ad: condor_g_suite::classads::ClassAd::new(),
                    })
                    .collect(),
            ));
            let config = condor_g_suite::condor_g::scheduler::SchedulerConfig {
                user: "jane".into(),
                credential: proxy.clone(),
                gass,
                pool_schedd: None,
                mailer: Some(mailer),
                user_addr: None,
                gm: GmConfig {
                    user: "jane".into(),
                    recovery,
                    ..GmConfig::default()
                },
                email_on_termination: false,
                lean: false,
            };
            if recovery {
                b.add_component(
                    "scheduler",
                    condor_g_suite::condor_g::Scheduler::recover(
                        config,
                        broker,
                        b.store(),
                        b.node(),
                    ),
                );
            } else {
                // The ablated agent has no persistent queue: a reboot
                // comes back empty-handed (the pre-Condor-G world).
                b.add_component(
                    "scheduler",
                    condor_g_suite::condor_g::Scheduler::new(config, broker),
                );
            }
        });
    }

    // Let the jobs start, then break something for 40 minutes.
    tb.world.run_until(SimTime::ZERO + Duration::from_mins(20));
    let gk_node = tb.sites[0].interface;
    let cluster = tb.sites[0].cluster;
    match failure {
        Failure::None => {}
        Failure::JobManagerCrash => kill_jobmanagers(&mut tb),
        Failure::ResourceMachineCrash => {
            tb.world.crash_node_now(gk_node);
        }
        Failure::SubmitMachineCrash => {
            tb.world.crash_node_now(node);
        }
        Failure::NetworkPartition => {
            tb.world
                .network_mut()
                .partition(&[node], &[gk_node, cluster]);
        }
    }
    tb.world.run_until(SimTime::ZERO + Duration::from_mins(60));
    match failure {
        Failure::ResourceMachineCrash => tb.world.restart_node_now(gk_node),
        Failure::SubmitMachineCrash => tb.world.restart_node_now(node),
        Failure::NetworkPartition => {
            tb.world.network_mut().heal(&[node], &[gk_node, cluster]);
        }
        _ => {}
    }
    tb.world.run_until(SimTime::ZERO + Duration::from_hours(12));
    let m = tb.world.metrics();
    Outcome {
        done: m.counter("condor_g.jobs_done"),
        executions: m.counter("site.completed"),
        restarts: m.counter("gram.jm_restarts"),
        recoveries: m.counter("gm.job_recoveries") + m.counter("condor_g.recoveries"),
    }
}

fn main() {
    let mut table = Table::new(&[
        "failure class",
        "recovery",
        "jobs done",
        "site executions",
        "JM restarts",
        "recoveries",
        "verdict",
    ]);
    for failure in [
        Failure::None,
        Failure::JobManagerCrash,
        Failure::ResourceMachineCrash,
        Failure::SubmitMachineCrash,
        Failure::NetworkPartition,
    ] {
        for recovery in [true, false] {
            if matches!(failure, Failure::None) && !recovery {
                continue;
            }
            let o = run(failure, recovery, 4242);
            let verdict = if o.done == JOBS as u64 && o.executions == JOBS as u64 {
                "all jobs exactly once"
            } else if o.done < JOBS as u64 {
                "JOBS STRANDED"
            } else {
                "DUPLICATION"
            };
            table.row(&[
                failure.name().into(),
                if recovery { "on".into() } else { "OFF".into() },
                format!("{}/{JOBS}", o.done),
                format!("{}", o.executions),
                format!("{}", o.restarts),
                format!("{}", o.recoveries),
                verdict.into(),
            ]);
        }
    }
    report(
        "X2: the four failure classes of paper 4.2 (8 thirty-minute jobs; 40-minute outage from t=20min overlaps their completion)",
        "Condor-G tolerates JobManager crashes, resource-machine crashes, submit-machine crashes, and network failure",
        &table,
    );
}
