//! X1 — §3.2's exactly-once claim.
//!
//! "Two-phase commit is important as a means of achieving exactly once
//! execution semantics. Each request from a client is accompanied by a
//! unique sequence number... The repeated sequence number allows the
//! resource to distinguish between a lost request and a lost response."
//!
//! Sweep the message-loss rate and compare three client/server protocols:
//!
//! * `one-phase, no retry`  — lost requests become lost jobs.
//! * `one-phase + retry`    — retransmissions become duplicate jobs.
//! * `two-phase + retry`    — exactly one execution per submission, always.

use bench::{replicate, report};
use condor_g_suite::gass::{FileData, GassServer, GassUrl};
use condor_g_suite::gram::proto::{GramReply, JmMsg};
use condor_g_suite::gram::{Gatekeeper, RslSpec, SubmitSession};
use condor_g_suite::gridsim::prelude::*;
use condor_g_suite::gridsim::{AnyMsg, Config, World};
use condor_g_suite::gsi::{CertificateAuthority, GridMap, ProxyCredential};
use condor_g_suite::site::policy::Fifo;
use condor_g_suite::site::Lrm;
use std::collections::BTreeMap;
use workloads::stats::Table;

const JOBS: u64 = 200;

#[derive(Clone, Copy)]
struct Outcome {
    submitted: u64,
    executed: u64,
    lost: u64,
    duplicated: u64,
}

struct Client {
    gatekeeper: Addr,
    credential: ProxyCredential,
    gass: GassUrl,
    retry: bool,
    sessions: BTreeMap<u64, SubmitSession>,
}

impl Component for Client {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for seq in 0..JOBS {
            let mut s = SubmitSession::new(
                seq,
                RslSpec::job("/site/bin/task", Duration::from_secs(300)).to_string(),
                self.credential.clone(),
                ctx.self_addr(),
                self.gass.clone(),
            );
            ctx.send(self.gatekeeper, s.request());
            if self.retry {
                ctx.set_timer(Duration::from_secs(20), seq);
            }
            self.sessions.insert(seq, s);
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, seq: u64) {
        if let Some(s) = self.sessions.get_mut(&seq) {
            if s.awaiting_reply() && s.attempts < 25 {
                ctx.send(self.gatekeeper, s.request());
                ctx.set_timer(Duration::from_secs(20), seq);
            } else if let Some((jm, msg)) = s.commit_retry() {
                // Phase two is retried too: a lost commit must not park
                // the job forever.
                ctx.send(jm, msg);
                ctx.set_timer(Duration::from_secs(20), seq);
            }
        }
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: Addr, msg: AnyMsg) {
        if let Some(reply) = msg.downcast_ref::<GramReply>() {
            if let GramReply::Submitted { seq, .. } = reply {
                if let Some(s) = self.sessions.get_mut(seq) {
                    use condor_g_suite::gram::client::SubmitAction;
                    if let SubmitAction::SendCommit { jobmanager, .. } = s.on_reply(reply) {
                        ctx.send(jobmanager, JmMsg::Commit);
                    }
                }
            }
            return;
        }
        if let Some(JmMsg::CommitAck { .. }) = msg.downcast_ref::<JmMsg>() {
            // One JobManager per session: the sender identifies which
            // committed-but-unacked session to quiet.
            for s in self.sessions.values_mut() {
                if let Some((jm, _)) = s.commit_retry() {
                    if jm == _from {
                        s.on_commit_ack();
                    }
                }
            }
        }
    }
}

fn run(loss: f64, two_phase: bool, retry: bool, seed: u64) -> Outcome {
    let mut ca = CertificateAuthority::new("/CN=CA", 1);
    let id = ca.issue_identity("/CN=jane", Duration::from_days(30));
    let cred = id.new_proxy(SimTime::ZERO, Duration::from_days(2));
    let mut gridmap = GridMap::new();
    gridmap.add("/CN=jane", "jane");

    let mut w = World::new(Config::default().seed(seed));
    let submit = w.add_node("submit");
    let interface = w.add_node("gk");
    let cluster = w.add_node("cluster");
    let gass = w.add_component(
        submit,
        "gass",
        GassServer::new(ca.trust_root()).preload("/x", FileData::inline("x")),
    );
    let lrm = w.add_component(cluster, "lrm", Lrm::new("site", 10_000, Fifo));
    let mut gk = Gatekeeper::new("site", ca.trust_root(), gridmap, lrm);
    if !two_phase {
        gk = gk.one_phase();
    }
    let gk = w.add_component(interface, "gatekeeper", gk);
    // Loss applies only on the client<->gatekeeper WAN (both directions);
    // intra-site links stay clean so the comparison isolates the protocol.
    w.network_mut().set_link_loss(submit, interface, loss);
    w.network_mut().set_link_loss(interface, submit, loss);
    w.add_component(
        submit,
        "client",
        Client {
            gatekeeper: gk,
            credential: cred,
            gass: GassUrl::gass(gass, ""),
            retry,
            sessions: BTreeMap::new(),
        },
    );
    w.run_until(SimTime::ZERO + Duration::from_hours(8));
    let executed = w.metrics().counter("site.completed");
    Outcome {
        submitted: JOBS,
        executed,
        lost: JOBS.saturating_sub(executed),
        duplicated: executed.saturating_sub(JOBS),
    }
}

fn main() {
    let mut table = Table::new(&[
        "loss %",
        "protocol",
        "submitted",
        "executed",
        "lost",
        "duplicates",
        "exactly-once",
    ]);
    for loss in [0.0, 0.05, 0.10, 0.20, 0.30] {
        let rows: Vec<(&str, bool, bool)> = vec![
            ("one-phase, no retry", false, false),
            ("one-phase + retry", false, true),
            ("two-phase + retry", true, true),
        ];
        let outcomes = replicate(&[11, 12, 13], |seed| {
            rows.iter()
                .map(|&(_, tp, retry)| run(loss, tp, retry, seed))
                .collect::<Vec<_>>()
        });
        for (i, &(name, _, _)) in rows.iter().enumerate() {
            // Average over replications.
            let n = outcomes.len() as u64;
            let executed: u64 = outcomes.iter().map(|o| o[i].executed).sum::<u64>() / n;
            let lost: u64 = outcomes.iter().map(|o| o[i].lost).sum::<u64>() / n;
            let dup: u64 = outcomes.iter().map(|o| o[i].duplicated).sum::<u64>() / n;
            let exact = outcomes.iter().all(|o| o[i].executed == o[i].submitted);
            table.row(&[
                format!("{:.0}", loss * 100.0),
                name.into(),
                format!("{JOBS}"),
                format!("{executed}"),
                format!("{lost}"),
                format!("{dup}"),
                if exact { "YES".into() } else { "no".into() },
            ]);
        }
    }
    report(
        "X1: two-phase commit exactly-once semantics (mean of 3 seeds)",
        "the revised GRAM's sequence numbers + commit give exactly-once execution under message loss",
        &table,
    );
}
