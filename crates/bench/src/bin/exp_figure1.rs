//! F1 — Figure 1: "Remote execution by Condor-G on Globus-managed
//! resources".
//!
//! Reproduces the figure as a protocol ladder: every arrow in the diagram
//! (user request → Scheduler → GridManager → GateKeeper → JobManager →
//! site scheduler, GASS staging back and forth, persistent-queue writes)
//! appears as a traced event, in order, for one job.

use condor_g_suite::condor_g::api::GridJobSpec;
use condor_g_suite::gridsim::prelude::*;
use condor_g_suite::harness::{build, SiteSpec, TestbedConfig, UserConsole};

fn main() {
    let mut tb = build(TestbedConfig {
        seed: 1,
        trace: true,
        sites: vec![SiteSpec::pbs("site.edu", 4)],
        ..TestbedConfig::default()
    });
    let spec = GridJobSpec::grid("figure1-job", "/home/jane/app.exe", Duration::from_mins(30))
        .with_stdout(250_000);
    let console = UserConsole::new(tb.scheduler).submit_many(1, spec);
    let node = tb.submit;
    tb.world.add_component(node, "console", console);
    tb.world.run_until(SimTime::ZERO + Duration::from_hours(2));

    println!("== F1: the Figure-1 execution path, as traced ==");
    println!("(Job Submission Machine = n0, Job Execution Site = n1 gatekeeper / n2 cluster)\n");
    for e in tb.world.trace().events() {
        // The ladder: agent-side log lines, GRAM protocol, JobManager state
        // machine, site scheduler, GASS movement.
        if matches!(
            e.kind,
            "condor_g.log"
                | "gm.submit"
                | "gram.submit"
                | "jm.state"
                | "lrm.submit"
                | "lrm.start"
                | "lrm.done"
                | "gass.get"
                | "gass.write_at"
        ) {
            println!("  {e}");
        }
    }
    let h = UserConsole::history_of(&tb.world, node, 0);
    println!("\nuser-visible history: {}", h.join(" -> "));
    let m = tb.world.metrics();
    println!("\nFigure-1 checklist:");
    let checks = [
        (
            "user submit accepted by Scheduler",
            m.counter("condor_g.submitted") == 1,
        ),
        (
            "GridManager created, job submitted via 2-phase GRAM",
            m.counter("gram.submits") == 1,
        ),
        (
            "commit sent and acknowledged",
            m.counter("gram.commits") == 1,
        ),
        (
            "JobManager staged executable via GASS",
            m.counter("gass.gets") >= 1,
        ),
        (
            "job queued + run by site scheduler",
            m.counter("site.completed") == 1,
        ),
        (
            "stdout streamed back to submit-side GASS",
            m.counter("gass.write_ats") >= 1,
        ),
        (
            "persistent queue written",
            !tb.world
                .store()
                .keys_with_prefix(node, "condor_g/")
                .is_empty()
                && !tb.world.store().keys_with_prefix(node, "gm/").is_empty(),
        ),
        ("job Done at the user", m.counter("condor_g.jobs_done") == 1),
    ];
    let mut ok = true;
    for (what, passed) in checks {
        println!("  [{}] {what}", if passed { "x" } else { " " });
        ok &= passed;
    }
    assert!(ok, "Figure-1 path incomplete");
    println!("\nFigure 1 reproduced: every box and arrow exercised.");
}
