//! P3 — engine bench: full-stack protocol costs.
//!
//! Wall-clock cost of simulating complete GRAM submit→done cycles and
//! GASS bulk transfers, i.e. what one "job" costs the experiment harness.

use condor_g_suite::gass::{FileData, GassServer, GassUrl};
use condor_g_suite::gram::proto::{GramReply, JmMsg};
use condor_g_suite::gram::{Gatekeeper, RslSpec, SubmitSession};
use condor_g_suite::gridsim::prelude::*;
use condor_g_suite::gridsim::{AnyMsg, Config, World};
use condor_g_suite::gsi::{CertificateAuthority, GridMap, ProxyCredential};
use condor_g_suite::site::policy::Fifo;
use condor_g_suite::site::Lrm;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::collections::BTreeMap;

struct BatchClient {
    gatekeeper: Addr,
    credential: ProxyCredential,
    gass: GassUrl,
    jobs: u64,
    sessions: BTreeMap<u64, SubmitSession>,
}

impl Component for BatchClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for seq in 0..self.jobs {
            let mut s = SubmitSession::new(
                seq,
                RslSpec::job("/site/bin/task", Duration::from_secs(60)).to_string(),
                self.credential.clone(),
                ctx.self_addr(),
                self.gass.clone(),
            );
            ctx.send(self.gatekeeper, s.request());
            self.sessions.insert(seq, s);
        }
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: Addr, msg: AnyMsg) {
        if let Some(reply) = msg.downcast_ref::<GramReply>() {
            if let GramReply::Submitted { seq, .. } = reply {
                if let Some(s) = self.sessions.get_mut(seq) {
                    use condor_g_suite::gram::client::SubmitAction;
                    if let SubmitAction::SendCommit { jobmanager, .. } = s.on_reply(reply) {
                        ctx.send(jobmanager, JmMsg::Commit);
                    }
                }
            }
        } else if let Some(JmMsg::Callback { state, .. }) = msg.downcast_ref::<JmMsg>() {
            if state.is_terminal() {
                // Keep the world quiet after completion.
            }
        }
    }
}

fn run_batch(jobs: u64) -> u64 {
    let mut ca = CertificateAuthority::new("/CN=CA", 1);
    let id = ca.issue_identity("/CN=jane", Duration::from_days(30));
    let cred = id.new_proxy(SimTime::ZERO, Duration::from_days(1));
    let mut gridmap = GridMap::new();
    gridmap.add("/CN=jane", "jane");
    let mut w = World::new(Config::default().seed(7));
    let submit = w.add_node("submit");
    let interface = w.add_node("gk");
    let cluster = w.add_node("cluster");
    let gass = w.add_component(
        submit,
        "gass",
        GassServer::new(ca.trust_root()).preload("/x", FileData::inline("x")),
    );
    let lrm = w.add_component(cluster, "lrm", Lrm::new("site", 10_000, Fifo));
    let gk = w.add_component(
        interface,
        "gatekeeper",
        Gatekeeper::new("site", ca.trust_root(), gridmap, lrm),
    );
    w.add_component(
        submit,
        "client",
        BatchClient {
            gatekeeper: gk,
            credential: cred,
            gass: GassUrl::gass(gass, ""),
            jobs,
            sessions: BTreeMap::new(),
        },
    );
    w.run_until_quiescent();
    assert_eq!(w.metrics().counter("site.completed"), jobs);
    w.events_processed()
}

fn bench_gram_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("grid_protocols/gram");
    const JOBS: u64 = 200;
    g.throughput(Throughput::Elements(JOBS));
    g.sample_size(10);
    g.bench_function("submit_to_done_200_jobs", |b| {
        b.iter(|| std::hint::black_box(run_batch(JOBS)))
    });
    g.finish();
}

fn bench_gass_transfer(c: &mut Criterion) {
    use condor_g_suite::gass::GassRequest;
    struct Fetcher {
        server: Addr,
        credential: ProxyCredential,
        n: u64,
    }
    impl Component for Fetcher {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for i in 0..self.n {
                ctx.send(
                    self.server,
                    GassRequest::Get {
                        request_id: i,
                        credential: self.credential.clone(),
                        path: "/data".into(),
                        offset: 0,
                        limit: u64::MAX,
                    },
                );
            }
        }
    }
    let mut g = c.benchmark_group("grid_protocols/gass");
    const FETCHES: u64 = 500;
    g.throughput(Throughput::Elements(FETCHES));
    g.sample_size(10);
    g.bench_function("500_bulk_gets_100MB", |b| {
        b.iter(|| {
            let mut ca = CertificateAuthority::new("/CN=CA", 1);
            let id = ca.issue_identity("/CN=jane", Duration::from_days(30));
            let cred = id.new_proxy(SimTime::ZERO, Duration::from_days(1));
            let mut w = World::new(Config::default().seed(8));
            let ns = w.add_node("server");
            let nc = w.add_node("client");
            let server = w.add_component(
                ns,
                "gass",
                GassServer::new(ca.trust_root()).preload("/data", FileData::bulk(100_000_000, 1)),
            );
            w.add_component(
                nc,
                "fetch",
                Fetcher {
                    server,
                    credential: cred,
                    n: FETCHES,
                },
            );
            w.run_until_quiescent();
            std::hint::black_box(w.metrics().counter("net.bulk_bytes"))
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_gram_cycle, bench_gass_transfer
}
criterion_main!(benches);
