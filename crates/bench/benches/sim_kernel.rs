//! P2 — engine bench: DES kernel throughput.
//!
//! How many events per wall-second the kernel processes, and how many
//! simulated grid-seconds per wall-second an E1-style world achieves —
//! the numbers that justify "a week of grid time in minutes".

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gridsim::prelude::*;
use gridsim::AnyMsg;
use gridsim::{Config, World};

/// A component that keeps `fanout` timers rotating forever.
struct TimerStorm {
    fanout: u32,
}

impl Component for TimerStorm {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for tag in 0..self.fanout {
            ctx.set_timer(Duration::from_millis(1 + tag as u64), tag as u64);
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, tag: u64) {
        ctx.set_timer(Duration::from_millis(1 + (tag % 16)), tag);
    }
}

/// Endless ping-pong across the network model: every delivery triggers a
/// reply to the sender.
struct Echo {
    peer: Option<Addr>,
}

#[derive(Debug)]
struct Token;

impl Component for Echo {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(peer) = self.peer {
            ctx.send(peer, Token);
        }
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Addr, _msg: AnyMsg) {
        ctx.send(from, Token);
    }
}

fn bench_timer_events(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_kernel/timers");
    const EVENTS: u64 = 100_000;
    g.throughput(Throughput::Elements(EVENTS));
    g.bench_function("100k_timer_events", |b| {
        b.iter(|| {
            let mut w = World::new(Config::default().seed(1).max_events(EVENTS));
            let n = w.add_node("n");
            w.add_component(n, "storm", TimerStorm { fanout: 64 });
            w.run_until_quiescent();
            std::hint::black_box(w.events_processed())
        })
    });
    g.finish();
}

fn bench_network_ring(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_kernel/network");
    const EVENTS: u64 = 100_000;
    g.throughput(Throughput::Elements(EVENTS));
    g.bench_function("100k_routed_messages", |b| {
        b.iter(|| {
            let mut w = World::new(Config::default().seed(2).max_events(EVENTS));
            // Eight ping-pong pairs across sixteen nodes: every event is a
            // routed cross-node delivery that immediately causes another.
            for i in 0..8 {
                let na = w.add_node(&format!("a{i}"));
                let nb = w.add_node(&format!("b{i}"));
                let pong = w.add_component(nb, "pong", Echo { peer: None });
                w.add_component(na, "ping", Echo { peer: Some(pong) });
            }
            w.run_until_quiescent();
            std::hint::black_box(w.events_processed())
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_timer_events, bench_network_ring
}
criterion_main!(benches);
