//! P1 — engine bench: ClassAd parse / evaluate / matchmake throughput.
//!
//! The E1-scale campaign matchmakes hundreds of jobs against hundreds of
//! machine ads every negotiation cycle; this bench establishes what that
//! costs.

use classads::{parse_ad, parse_expr, rank, symmetric_match, ClassAd, EvalCtx};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

fn machine_ad(i: usize) -> ClassAd {
    ClassAd::new()
        .with("Name", format!("vm{i}.cs.wisc.edu").as_str())
        .with(
            "Arch",
            if i.is_multiple_of(3) {
                "INTEL"
            } else {
                "SUN4u"
            },
        )
        .with("OpSys", "LINUX")
        .with("Memory", (64 + (i % 8) * 32) as i64)
        .with("Mips", (200 + i % 500) as i64)
        .with("State", "Unclaimed")
        .with_parsed("Requirements", "TARGET.ImageSize <= MY.Memory * 1024")
        .with_parsed("Rank", "TARGET.Owner == \"jane\" ? 10 : 0")
}

fn job_ad() -> ClassAd {
    ClassAd::new()
        .with("Owner", "jane")
        .with("ImageSize", 48_000i64)
        .with_parsed(
            "Requirements",
            "TARGET.Arch == \"INTEL\" && TARGET.OpSys == \"LINUX\" && TARGET.Memory >= 64",
        )
        .with_parsed("Rank", "TARGET.Mips")
}

fn bench_parse(c: &mut Criterion) {
    let src = machine_ad(7).to_string();
    let mut g = c.benchmark_group("classads/parse");
    g.throughput(Throughput::Bytes(src.len() as u64));
    g.bench_function("machine_ad", |b| {
        b.iter(|| parse_ad(std::hint::black_box(&src)).unwrap())
    });
    g.finish();
}

fn bench_eval(c: &mut Criterion) {
    let job = job_ad();
    let machine = machine_ad(3);
    let req =
        parse_expr("TARGET.Arch == \"INTEL\" && TARGET.Memory >= 64 && TARGET.Mips > 100").unwrap();
    c.bench_function("classads/eval_requirements", |b| {
        let ctx = EvalCtx::matching(&job, &machine);
        b.iter(|| ctx.eval(std::hint::black_box(&req)))
    });
}

fn bench_match(c: &mut Criterion) {
    let job = job_ad();
    let machines: Vec<ClassAd> = (0..1000).map(machine_ad).collect();
    let mut g = c.benchmark_group("classads/matchmaking");
    g.throughput(Throughput::Elements(machines.len() as u64));
    g.bench_function("match_1000_machines", |b| {
        b.iter(|| {
            let mut best: Option<(f64, usize)> = None;
            for (i, m) in machines.iter().enumerate() {
                if symmetric_match(&job, m) {
                    let r = rank(&job, m);
                    if best.is_none_or(|(br, _)| r > br) {
                        best = Some((r, i));
                    }
                }
            }
            std::hint::black_box(best)
        })
    });
    g.finish();
}

fn bench_round_trip(c: &mut Criterion) {
    let ad = machine_ad(11);
    c.bench_function("classads/print_parse_round_trip", |b| {
        b.iter_batched(
            || ad.clone(),
            |ad| parse_ad(&ad.to_string()).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_parse,
    bench_eval,
    bench_match,
    bench_round_trip
);
criterion_main!(benches);
