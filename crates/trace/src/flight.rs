//! Decoder for flight-recorder dumps.
//!
//! The in-sim [`gridsim::obs::flight::FlightRecorder`] dumps the causal
//! window around an anomaly as a compact binary file
//! ([`gridsim::obs::flight::encode_dump`]). This module is the exact
//! inverse: it decodes a dump into the same [`Record`] model the JSONL
//! parser produces, so every offline analysis — [`crate::Forensics`]
//! critical paths, stuck-job reports, root-cause attribution, Perfetto
//! conversion — works on dumps unchanged.

use crate::parse::Record;
use gridsim::obs::flight::{DumpMeta, DUMP_MAGIC, DUMP_VERSION};
use gridsim::time::SimTime;

struct Cursor<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.b.len() - self.i < n {
            return Err(format!(
                "truncated dump: wanted {n} bytes at offset {}, have {}",
                self.i,
                self.b.len() - self.i
            ));
        }
        let s = &self.b[self.i..self.i + n];
        self.i += n;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| format!("invalid UTF-8 in string: {e}"))
    }
}

/// Decode a flight dump into its metadata and records (time order as
/// written). Errors describe the first structural problem encountered.
pub fn decode(bytes: &[u8]) -> Result<(DumpMeta, Vec<Record>), String> {
    let mut c = Cursor { b: bytes, i: 0 };
    if c.take(4)? != DUMP_MAGIC {
        return Err("not a flight dump (bad magic; expected CGFR)".to_string());
    }
    let version = c.u16()?;
    if version != DUMP_VERSION {
        return Err(format!(
            "unsupported dump version {version} (this build reads {DUMP_VERSION})"
        ));
    }
    let reason = c.string()?;
    let anchor = c.string()?;
    let time = SimTime(c.u64()?);
    let kind_count = c.u32()? as usize;
    let mut kinds = Vec::with_capacity(kind_count);
    for _ in 0..kind_count {
        kinds.push(c.string()?);
    }
    let count = c.u64()? as usize;
    let mut records = Vec::with_capacity(count.min(1 << 20));
    for n in 0..count {
        let time = SimTime(c.u64()?);
        let node = u64::from(c.u32()?);
        let comp = u64::from(c.u32()?);
        let kind_idx = c.u32()? as usize;
        let kind = kinds
            .get(kind_idx)
            .ok_or_else(|| format!("record {n}: kind index {kind_idx} out of range"))?
            .clone();
        let id = c.u64()?;
        let cause = c.u64()?;
        let detail = c.string()?;
        records.push(Record {
            time,
            node,
            comp,
            kind,
            detail,
            id,
            cause,
        });
    }
    if c.i != bytes.len() {
        return Err(format!(
            "trailing garbage: {} bytes past the last record",
            bytes.len() - c.i
        ));
    }
    Ok((
        DumpMeta {
            reason,
            anchor,
            time,
        },
        records,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsim::event::NO_CAUSE;
    use gridsim::obs::flight::{encode_dump, FlightRecord};

    fn rec(time_us: u64, kind: &str, detail: &str, id: u64, cause: u64) -> FlightRecord {
        FlightRecord {
            time: SimTime(time_us),
            node: 3,
            comp: 7,
            kind: kind.to_string(),
            detail: detail.to_string(),
            id,
            cause,
        }
    }

    fn meta() -> DumpMeta {
        DumpMeta {
            reason: "stuck_job: oldest waited 99s".to_string(),
            anchor: "gj42".to_string(),
            time: SimTime(123_456_789),
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        let records = vec![
            rec(1, "gram.submit", "gj42 to gk.siteA", 10, NO_CAUSE),
            rec(2, "span", "job=42 seq=0 phase=submit site=siteA", 11, 10),
            rec(3, "gm.attempt_failed", "gj42: submission failed", 12, 11),
        ];
        let bytes = encode_dump(&meta(), &records);
        let (m, decoded) = decode(&bytes).expect("decodes");
        assert_eq!(m, meta());
        assert_eq!(decoded.len(), 3);
        for (d, r) in decoded.iter().zip(&records) {
            assert_eq!(d.time, r.time);
            assert_eq!(d.node, u64::from(r.node));
            assert_eq!(d.comp, u64::from(r.comp));
            assert_eq!(d.kind, r.kind);
            assert_eq!(d.detail, r.detail);
            assert_eq!(d.id, r.id);
            assert_eq!(d.cause, r.cause);
        }
    }

    #[test]
    fn round_trip_utf8_and_escape_edges() {
        // Details that would need escaping in JSONL must survive the
        // binary format verbatim: quotes, backslashes, newlines, tabs,
        // control chars, multibyte UTF-8, and the empty string.
        let edges = [
            "",
            "\"quoted\" and \\backslashed\\",
            "line\nbreak\tand\rreturn",
            "\u{1}\u{1f}control bytes",
            "grüße from site-α (€ 100, 日本語, 🛰️)",
            "null\u{0}byte",
        ];
        let records: Vec<FlightRecord> = edges
            .iter()
            .enumerate()
            .map(|(i, d)| rec(i as u64, "k.edge", d, i as u64, NO_CAUSE))
            .collect();
        let m = DumpMeta {
            reason: "reason with \"quotes\" and 日本語".to_string(),
            anchor: "anchor-α".to_string(),
            time: SimTime(7),
        };
        let bytes = encode_dump(&m, &records);
        let (m2, decoded) = decode(&bytes).expect("decodes");
        assert_eq!(m2, m);
        let details: Vec<&str> = decoded.iter().map(|r| r.detail.as_str()).collect();
        assert_eq!(details, edges);
    }

    #[test]
    fn empty_dump_round_trips() {
        let bytes = encode_dump(&meta(), &[]);
        let (m, decoded) = decode(&bytes).expect("decodes");
        assert_eq!(m, meta());
        assert!(decoded.is_empty());
    }

    #[test]
    fn rejects_bad_magic_version_and_truncation() {
        assert!(decode(b"nope").is_err());
        assert!(decode(b"JUNKJUNKJUNK").is_err());
        let mut bytes = encode_dump(&meta(), &[rec(1, "k", "d", 1, NO_CAUSE)]);
        // Truncation anywhere inside the record section errors cleanly.
        bytes.truncate(bytes.len() - 3);
        assert!(decode(&bytes).is_err());
        // Version bump is refused.
        let mut versioned = encode_dump(&meta(), &[]);
        versioned[4] = 0xff;
        let err = decode(&versioned).unwrap_err();
        assert!(err.contains("version"), "{err}");
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = encode_dump(&meta(), &[]);
        bytes.extend_from_slice(b"extra");
        let err = decode(&bytes).unwrap_err();
        assert!(err.contains("trailing"), "{err}");
    }
}
