//! Critical-path, stuck-job, and root-cause analysis over a parsed trace.
//!
//! The analyzer stitches three views together:
//!
//! * the happens-before DAG ([`gridsim::obs::CausalDag`]) rebuilt from the
//!   `(id, cause)` pairs on every record — the trigger chain of any event
//!   is [`CausalDag::chain_to_root`], which for a job's terminal milestone
//!   *is* its critical path (at every join the kernel records the
//!   last-arriving input as the cause);
//! * per-job attempt timelines stitched from `"span"` milestone records
//!   (`submit` → `auth` → `commit` → `stage_in_done` → `active` →
//!   `stage_out` → terminal), the same records
//!   [`gridsim::obs::SpanCollector`] consumes online;
//! * the `fault.*` records the kernel emits when a fault plan fires —
//!   the ground-truth outage injections.
//!
//! Root-cause attribution prefers a causal-chain hit (a `fault.*` ancestor
//! of the failure record), but most grid failures are detected by
//! *absence* of a reply — probe timeouts have no happens-before edge from
//! the crash that caused them — so the fallback correlates the failed
//! attempt's site and time window against the fault log.

use crate::parse::Record;
use gridsim::event::NO_CAUSE;
use gridsim::obs::{CausalDag, DagNode};
use gridsim::time::{Duration, SimTime};
use std::collections::BTreeMap;

/// One remote submission attempt of a grid job.
#[derive(Debug, Clone)]
pub struct Attempt {
    /// GRAM sequence number of the attempt.
    pub seq: u64,
    /// Target site name.
    pub site: String,
    /// When the GridManager sent the submit.
    pub submitted: SimTime,
    /// Kernel event id of the submit milestone.
    pub submit_event: u64,
    /// GRAM job contact, once the gatekeeper authenticated the request.
    pub contact: Option<u64>,
    /// `(phase, time, event id)` milestones in order.
    pub milestones: Vec<(String, SimTime, u64)>,
}

/// Why a job was resubmitted (one per `gm.attempt_failed` record).
#[derive(Debug, Clone)]
pub struct Failure {
    /// When the GridManager gave up on the attempt.
    pub time: SimTime,
    /// Kernel event id of the failure record.
    pub event: u64,
    /// The GridManager's stated reason.
    pub why: String,
}

/// Everything reconstructed about one grid job.
#[derive(Debug, Clone, Default)]
pub struct JobForensics {
    /// Grid job id (the `N` of `gj<N>`).
    pub job: u64,
    /// Submission attempts in order; more than one means resubmission.
    pub attempts: Vec<Attempt>,
    /// Attempt failures, in order.
    pub failures: Vec<Failure>,
    /// Terminal milestone `(phase, time, event id)`, if reached.
    pub terminal: Option<(String, SimTime, u64)>,
    /// Time of the job's last milestone of any kind.
    pub last_progress: SimTime,
    /// Phase of that last milestone.
    pub last_phase: String,
}

/// One step of a critical path, blamed on a protocol phase.
#[derive(Debug, Clone)]
pub struct PathStep {
    /// Kernel event id.
    pub event: u64,
    /// When it happened.
    pub time: SimTime,
    /// Time since the previous step on the path.
    pub elapsed: Duration,
    /// Blame category (see [`Forensics::BLAME_CATEGORIES`]).
    pub category: &'static str,
    /// `kind: detail` of the step's first record, for display.
    pub label: String,
}

/// A job's critical path with its blame breakdown.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// The job.
    pub job: u64,
    /// Terminal phase (`done`, `failed`, `removed`).
    pub outcome: String,
    /// End-to-end time to the terminal milestone.
    pub total: Duration,
    /// The chain, root first.
    pub steps: Vec<PathStep>,
    /// `(category, seconds)` aggregated over the steps, largest first.
    pub blame: Vec<(&'static str, f64)>,
}

/// A job with no terminal milestone and no recent progress.
#[derive(Debug, Clone)]
pub struct StuckJob {
    /// The job.
    pub job: u64,
    /// Its last observed phase.
    pub last_phase: String,
    /// When that phase was entered.
    pub since: SimTime,
    /// Site of the last attempt, if any.
    pub site: Option<String>,
}

/// A root-cause verdict for one attempt failure.
#[derive(Debug, Clone)]
pub struct Attribution {
    /// The job.
    pub job: u64,
    /// When the attempt failed.
    pub time: SimTime,
    /// The GridManager's stated reason.
    pub why: String,
    /// Site of the failed attempt.
    pub site: Option<String>,
    /// The fault record blamed: `(kind, detail, time)`.
    pub cause: Option<(String, String, SimTime)>,
    /// `"causal-chain"` or `"site-correlation"` (empty if unattributed).
    pub via: &'static str,
}

/// The assembled forensic views over one trace.
pub struct Forensics {
    /// The parsed records, as indexed by the DAG's nodes.
    pub records: Vec<Record>,
    /// Happens-before DAG of observable kernel events.
    pub dag: CausalDag,
    /// Per-job reconstruction, keyed by grid job id.
    pub jobs: BTreeMap<u64, JobForensics>,
    /// Time of the last record in the trace.
    pub end: SimTime,
    /// Indices of `fault.*` records, in order.
    faults: Vec<usize>,
}

/// `key=value` field lookup in a span detail.
fn field<'a>(detail: &'a str, key: &str) -> Option<&'a str> {
    detail
        .split_whitespace()
        .filter_map(|w| w.split_once('='))
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v)
}

fn num(s: Option<&str>) -> Option<u64> {
    s.and_then(|v| v.parse().ok())
}

impl Forensics {
    /// The blame categories critical-path time is charged to.
    pub const BLAME_CATEGORIES: &'static [&'static str] = &[
        "fault",
        "execute",
        "lrm-wait",
        "gass-transfer",
        "commit",
        "negotiation",
        "gatekeeper",
        "gridmanager",
        "wan",
        "other",
    ];

    /// Build every view from parsed records.
    pub fn build(records: Vec<Record>) -> Forensics {
        let mut dag = CausalDag::new();
        let mut faults = Vec::new();
        let mut end = SimTime::ZERO;
        for (i, r) in records.iter().enumerate() {
            end = end.max(r.time);
            if r.id != NO_CAUSE {
                dag.insert(r.id, r.cause, r.time, i);
            }
            if r.kind.starts_with("fault.") {
                faults.push(i);
            }
        }
        dag.link();

        let mut jobs: BTreeMap<u64, JobForensics> = BTreeMap::new();
        // Attempt lookups while stitching: GRAM seq -> job, contact -> job.
        let mut by_seq: BTreeMap<u64, u64> = BTreeMap::new();
        let mut by_contact: BTreeMap<u64, u64> = BTreeMap::new();
        let note =
            |jobs: &mut BTreeMap<u64, JobForensics>, job: u64, phase: &str, time: SimTime| {
                let j = jobs.entry(job).or_default();
                j.job = job;
                j.last_progress = time;
                j.last_phase = phase.to_string();
            };
        for r in &records {
            match r.kind.as_str() {
                "span" => {
                    let Some(phase) = field(&r.detail, "phase") else {
                        continue;
                    };
                    match phase {
                        "submit" => {
                            let (Some(job), Some(seq)) =
                                (num(field(&r.detail, "job")), num(field(&r.detail, "seq")))
                            else {
                                continue;
                            };
                            note(&mut jobs, job, phase, r.time);
                            by_seq.insert(seq, job);
                            jobs.entry(job).or_default().attempts.push(Attempt {
                                seq,
                                site: field(&r.detail, "site").unwrap_or("?").to_string(),
                                submitted: r.time,
                                submit_event: r.id,
                                contact: None,
                                milestones: Vec::new(),
                            });
                        }
                        "auth" => {
                            let (Some(seq), Some(contact)) = (
                                num(field(&r.detail, "seq")),
                                num(field(&r.detail, "contact")),
                            ) else {
                                continue;
                            };
                            let Some(&job) = by_seq.get(&seq) else {
                                continue;
                            };
                            by_contact.insert(contact, job);
                            note(&mut jobs, job, phase, r.time);
                            let j = jobs.entry(job).or_default();
                            if let Some(a) = j.attempts.iter_mut().rev().find(|a| a.seq == seq) {
                                a.contact = Some(contact);
                                a.milestones.push((phase.to_string(), r.time, r.id));
                            }
                        }
                        "done" | "failed" | "removed" => {
                            let Some(job) = num(field(&r.detail, "job")) else {
                                continue;
                            };
                            note(&mut jobs, job, phase, r.time);
                            jobs.entry(job).or_default().terminal =
                                Some((phase.to_string(), r.time, r.id));
                        }
                        // Contact-keyed JobManager milestones; `transfer`
                        // spans are not job-keyed and are skipped here.
                        _ => {
                            let Some(&job) =
                                num(field(&r.detail, "contact")).and_then(|c| by_contact.get(&c))
                            else {
                                continue;
                            };
                            note(&mut jobs, job, phase, r.time);
                            let j = jobs.entry(job).or_default();
                            if let Some(a) = j.attempts.last_mut() {
                                a.milestones.push((phase.to_string(), r.time, r.id));
                            }
                        }
                    }
                }
                "gm.attempt_failed" => {
                    // Detail: `gj<N>: <why>`.
                    let Some((head, why)) = r.detail.split_once(':') else {
                        continue;
                    };
                    let Some(job) = head.strip_prefix("gj").and_then(|n| n.parse().ok()) else {
                        continue;
                    };
                    note(&mut jobs, job, "attempt_failed", r.time);
                    jobs.entry(job).or_default().failures.push(Failure {
                        time: r.time,
                        event: r.id,
                        why: why.trim().to_string(),
                    });
                }
                _ => {}
            }
        }
        Forensics {
            records,
            dag,
            jobs,
            end,
            faults,
        }
    }

    /// Jobs that were submitted more than once.
    pub fn resubmitted_jobs(&self) -> impl Iterator<Item = &JobForensics> {
        self.jobs.values().filter(|j| j.attempts.len() > 1)
    }

    /// Blame category for one DAG node, from the records emitted under it.
    fn classify(&self, node: &DagNode) -> &'static str {
        // Lower rank wins: a node that both relayed a message and finished
        // a job is blamed on the more specific thing that happened there.
        let rank = |cat: &'static str| {
            Self::BLAME_CATEGORIES
                .iter()
                .position(|c| *c == cat)
                .expect("known category")
        };
        let mut best = "other";
        for &i in &node.records {
            let r = &self.records[i];
            let k = r.kind.as_str();
            let phase = (k == "span").then(|| field(&r.detail, "phase")).flatten();
            let cat = if k.starts_with("fault.") {
                "fault"
            } else if k == "lrm.done" {
                "execute"
            } else if k == "lrm.start" {
                "lrm-wait"
            } else if k.starts_with("gass.") || phase == Some("transfer") {
                "gass-transfer"
            } else if phase == Some("commit") {
                "commit"
            } else if k.starts_with("negotiator.") || k.starts_with("condor.") {
                "negotiation"
            } else if k.starts_with("jm.") || k.starts_with("lrm.") {
                "gatekeeper"
            } else if k.starts_with("gm.") {
                "gridmanager"
            } else if k.starts_with("gram.") || phase == Some("auth") {
                "wan"
            } else {
                "other"
            };
            if rank(cat) < rank(best) {
                best = cat;
            }
        }
        best
    }

    /// The critical path to a job's terminal milestone: the causal trigger
    /// chain of the terminal event, each step blamed on a protocol phase.
    /// `None` when the job never reached a terminal state (see
    /// [`Forensics::stuck_jobs`]) or its terminal event is not in the DAG.
    pub fn critical_path(&self, job: u64) -> Option<CriticalPath> {
        let j = self.jobs.get(&job)?;
        let (outcome, t_end, event) = j.terminal.clone()?;
        let chain = self.dag.chain_to_root(event);
        if chain.is_empty() {
            return None;
        }
        let mut steps = Vec::with_capacity(chain.len());
        let mut prev = SimTime::ZERO;
        for node in &chain {
            let label = node
                .records
                .first()
                .map(|&i| {
                    let r = &self.records[i];
                    format!("{}: {}", r.kind, r.detail)
                })
                .unwrap_or_default();
            steps.push(PathStep {
                event: node.id,
                time: node.time,
                elapsed: node.time - prev,
                category: self.classify(node),
                label,
            });
            prev = node.time;
        }
        let mut by_cat: BTreeMap<&'static str, f64> = BTreeMap::new();
        for s in &steps {
            *by_cat.entry(s.category).or_insert(0.0) += s.elapsed.as_secs_f64();
        }
        let mut blame: Vec<(&'static str, f64)> = by_cat.into_iter().collect();
        blame.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(b.0)));
        Some(CriticalPath {
            job,
            outcome,
            total: t_end - SimTime::ZERO,
            steps,
            blame,
        })
    }

    /// Jobs with no terminal milestone whose last progress is older than
    /// `horizon` before the end of the trace.
    pub fn stuck_jobs(&self, horizon: Duration) -> Vec<StuckJob> {
        self.jobs
            .values()
            .filter(|j| j.terminal.is_none() && j.last_progress + horizon <= self.end)
            .map(|j| StuckJob {
                job: j.job,
                last_phase: j.last_phase.clone(),
                since: j.last_progress,
                site: j.attempts.last().map(|a| a.site.clone()),
            })
            .collect()
    }

    /// Does a fault record plausibly affect `site`? Crash/restart details
    /// name one node (`node=gk.<site>` or `node=cluster.<site>`); partition
    /// details carry comma-joined node lists; loss is global.
    fn fault_touches_site(r: &Record, site: &str) -> bool {
        r.kind == "fault.loss"
            || r.detail.contains(&format!("gk.{site}"))
            || r.detail.contains(&format!("cluster.{site}"))
    }

    /// Onset faults create outages; their recovery twins end them.
    fn is_onset(kind: &str) -> bool {
        matches!(kind, "fault.crash" | "fault.partition" | "fault.loss")
    }

    /// Root-cause every attempt failure: first try the happens-before
    /// chain of the failure record for a `fault.*` ancestor, then fall
    /// back to correlating the attempt's site and time window against the
    /// fault log (timeout-detected failures have no causal edge from the
    /// fault — the whole point of probing is noticing silence).
    pub fn root_causes(&self) -> Vec<Attribution> {
        let mut out = Vec::new();
        for j in self.jobs.values() {
            for (k, f) in j.failures.iter().enumerate() {
                // The attempt this failure ended. The GridManager runs one
                // attempt at a time and resubmits within the same kernel
                // event that records the failure, so a time comparison
                // cannot tell the dying attempt from its replacement —
                // but failure k always ends attempt k.
                let attempt = j.attempts.get(k);
                let mut cause = None;
                let mut via = "";
                // 1. Causal chain.
                for node in self.dag.chain_to_root(f.event).iter().rev() {
                    if let Some(&i) = node
                        .records
                        .iter()
                        .find(|&&i| self.records[i].kind.starts_with("fault."))
                    {
                        let r = &self.records[i];
                        cause = Some((r.kind.clone(), r.detail.clone(), r.time));
                        via = "causal-chain";
                        break;
                    }
                }
                // 2. Site/time correlation with onset faults.
                if cause.is_none() {
                    if let Some(a) = attempt {
                        let matching = |strict_window: bool| {
                            self.faults
                                .iter()
                                .map(|&i| &self.records[i])
                                .filter(|r| Self::is_onset(&r.kind) && r.time <= f.time)
                                .filter(|r| !strict_window || r.time >= a.submitted)
                                .rfind(|r| Self::fault_touches_site(r, &a.site))
                        };
                        // Prefer a fault inside the attempt's own window; an
                        // attempt submitted into an already-broken site falls
                        // back to the latest earlier onset.
                        if let Some(r) = matching(true).or_else(|| matching(false)) {
                            cause = Some((r.kind.clone(), r.detail.clone(), r.time));
                            via = "site-correlation";
                        }
                    }
                }
                out.push(Attribution {
                    job: j.job,
                    time: f.time,
                    why: f.why.clone(),
                    site: attempt.map(|a| a.site.clone()),
                    cause,
                    via,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64, kind: &str, detail: &str, id: u64, cause: u64) -> Record {
        Record {
            time: SimTime(t),
            node: 0,
            comp: 0,
            kind: kind.to_string(),
            detail: detail.to_string(),
            id,
            cause,
        }
    }

    const S: u64 = 1_000_000; // one second in micros

    /// One job: submit -> auth -> commit -> active -> done, with causal
    /// links forming a single chain.
    fn happy_trace() -> Vec<Record> {
        vec![
            rec(0, "span", "job=3 seq=9 phase=submit site=anl", 1, NO_CAUSE),
            rec(2 * S, "span", "seq=9 contact=77 phase=auth", 2, 1),
            rec(3 * S, "span", "contact=77 phase=commit", 3, 2),
            rec(4 * S, "gass.get", "/home/app.exe [0..+100]", 4, 3),
            rec(5 * S, "lrm.start", "anl job 0 (1 cpus)", 5, 4),
            rec(65 * S, "lrm.done", "anl job 0 -> Completed", 6, 5),
            rec(66 * S, "span", "contact=77 phase=active", 6, 5),
            rec(70 * S, "span", "job=3 phase=done", 7, 6),
        ]
    }

    #[test]
    fn critical_path_blames_execution_for_a_compute_bound_job() {
        let f = Forensics::build(happy_trace());
        let cp = f.critical_path(3).expect("terminal reached");
        assert_eq!(cp.outcome, "done");
        assert_eq!(cp.steps.len(), 7);
        assert_eq!(cp.steps.first().unwrap().event, 1);
        assert_eq!(cp.steps.last().unwrap().event, 7);
        // 60 of 70 seconds are the lrm.done step: execute dominates.
        assert_eq!(cp.blame.first().unwrap().0, "execute");
        assert!((cp.blame.first().unwrap().1 - 60.0).abs() < 1e-9);
        let total: f64 = cp.blame.iter().map(|(_, s)| s).sum();
        assert!((total - cp.total.as_secs_f64()).abs() < 1e-9);
    }

    #[test]
    fn stuck_job_detection_respects_the_horizon() {
        let mut t = happy_trace();
        // A second job that stalls after auth at t=100s; trace ends at 4100s.
        t.push(rec(
            99 * S,
            "span",
            "job=8 seq=10 phase=submit site=nrl",
            20,
            NO_CAUSE,
        ));
        t.push(rec(100 * S, "span", "seq=10 contact=90 phase=auth", 21, 20));
        t.push(rec(4100 * S, "gm.exit", "all jobs complete", 30, 21));
        let f = Forensics::build(t);
        let stuck = f.stuck_jobs(Duration::from_secs(3600));
        assert_eq!(stuck.len(), 1);
        assert_eq!(stuck[0].job, 8);
        assert_eq!(stuck[0].last_phase, "auth");
        assert_eq!(stuck[0].site.as_deref(), Some("nrl"));
        // A longer horizon clears it.
        assert!(f.stuck_jobs(Duration::from_secs(5000)).is_empty());
    }

    #[test]
    fn root_cause_prefers_causal_chain_then_site_correlation() {
        let t = vec![
            // Job 1 fails with the fault in its causal chain.
            rec(0, "span", "job=1 seq=1 phase=submit site=anl", 1, NO_CAUSE),
            rec(10 * S, "fault.crash", "node=gk.anl", 2, NO_CAUSE),
            rec(20 * S, "gm.attempt_failed", "gj1: jobmanager lost", 3, 2),
            rec(21 * S, "span", "job=1 seq=2 phase=submit site=nrl", 4, 3),
            // Job 2's failure is only detectable by correlation: its chain
            // roots in the GridManager's own timer, not the fault.
            rec(
                5 * S,
                "span",
                "job=2 seq=3 phase=submit site=nrl",
                10,
                NO_CAUSE,
            ),
            rec(30 * S, "fault.crash", "node=gk.nrl", 11, NO_CAUSE),
            rec(
                40 * S,
                "gm.attempt_failed",
                "gj2: gatekeeper unreachable",
                12,
                10,
            ),
            rec(41 * S, "span", "job=2 seq=4 phase=submit site=anl", 13, 12),
        ];
        let f = Forensics::build(t);
        assert_eq!(f.resubmitted_jobs().count(), 2);
        let causes = f.root_causes();
        assert_eq!(causes.len(), 2);
        let j1 = causes.iter().find(|a| a.job == 1).unwrap();
        assert_eq!(j1.via, "causal-chain");
        assert_eq!(j1.cause.as_ref().unwrap().1, "node=gk.anl");
        let j2 = causes.iter().find(|a| a.job == 2).unwrap();
        assert_eq!(j2.via, "site-correlation");
        assert_eq!(j2.cause.as_ref().unwrap().1, "node=gk.nrl");
        assert_eq!(j2.site.as_deref(), Some("nrl"));
    }

    /// The GridManager resubmits inside the same kernel event that logs
    /// `gm.attempt_failed`, so the replacement attempt shares the failure's
    /// timestamp (and event id). Attribution must still blame the *failed*
    /// attempt's site, not the replacement's.
    #[test]
    fn failure_blamed_on_failed_attempt_not_same_instant_resubmit() {
        let t = vec![
            rec(0, "fault.crash", "node=gk.anl", 1, NO_CAUSE),
            rec(S, "span", "job=4 seq=1 phase=submit site=anl", 2, NO_CAUSE),
            // Failure and the failover submit land in the same event.
            rec(
                30 * S,
                "gm.attempt_failed",
                "gj4: gatekeeper unreachable",
                9,
                2,
            ),
            rec(30 * S, "span", "job=4 seq=2 phase=submit site=nrl", 9, 2),
            rec(60 * S, "span", "job=4 phase=done", 12, 9),
        ];
        let f = Forensics::build(t);
        assert_eq!(f.resubmitted_jobs().count(), 1);
        let causes = f.root_causes();
        assert_eq!(causes.len(), 1);
        assert_eq!(
            causes[0].site.as_deref(),
            Some("anl"),
            "failed attempt's site"
        );
        assert_eq!(causes[0].via, "site-correlation");
        assert_eq!(causes[0].cause.as_ref().unwrap().1, "node=gk.anl");
    }

    #[test]
    fn unattributable_failures_stay_unattributed() {
        let t = vec![
            rec(0, "span", "job=5 seq=1 phase=submit site=anl", 1, NO_CAUSE),
            rec(9 * S, "gm.attempt_failed", "gj5: bad rsl", 2, 1),
        ];
        let f = Forensics::build(t);
        let causes = f.root_causes();
        assert_eq!(causes.len(), 1);
        assert!(causes[0].cause.is_none());
        assert_eq!(causes[0].via, "");
    }
}
