//! Parser for the simulator's `--trace-out` JSONL schema.
//!
//! Each line is one object with a fixed key set:
//!
//! ```text
//! {"t":1500000,"node":3,"comp":0,"kind":"gram.submit","detail":"...","id":42,"cause":null}
//! ```
//!
//! `t` is virtual time in microseconds; `id` is the kernel event the record
//! was emitted under and `cause` its nearest observable causal ancestor
//! (`null` maps to [`NO_CAUSE`] — a DAG root, or a record emitted during
//! world setup). The parser is hand-rolled because the workspace builds
//! offline with no JSON dependency; it accepts exactly the escapes the
//! exporter produces (`\" \\ \n \r \t \uXXXX`) plus `\/`, `\b`, `\f` for
//! good measure.

use gridsim::event::NO_CAUSE;
use gridsim::time::SimTime;
use std::fmt;

/// One parsed trace record (the offline mirror of
/// [`gridsim::trace::TraceEvent`], with owned strings).
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Virtual time of emission.
    pub time: SimTime,
    /// Node id of the component the record is attributed to.
    pub node: u64,
    /// Component id within the node.
    pub comp: u64,
    /// Machine-matchable kind, e.g. `"gram.submit"` or `"span"`.
    pub kind: String,
    /// Human-readable detail.
    pub detail: String,
    /// Kernel event the record was emitted under ([`NO_CAUSE`] for
    /// setup-time records outside any event).
    pub id: u64,
    /// Nearest observable causal ancestor ([`NO_CAUSE`] for DAG roots).
    pub cause: u64,
}

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a whole JSONL document (blank lines are skipped).
pub fn parse(text: &str) -> Result<Vec<Record>, ParseError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(parse_line(line).map_err(|msg| ParseError { line: i + 1, msg })?);
    }
    Ok(out)
}

/// Parse one JSONL line into a [`Record`].
pub fn parse_line(line: &str) -> Result<Record, String> {
    let mut s = Scan {
        b: line.as_bytes(),
        i: 0,
    };
    s.ws();
    s.eat(b'{')?;
    let (mut t, mut node, mut comp) = (None, None, None);
    let (mut kind, mut detail) = (None, None);
    let (mut id, mut cause): (Option<Option<u64>>, Option<Option<u64>>) = (None, None);
    loop {
        s.ws();
        if s.peek() == Some(b'}') {
            s.i += 1;
            break;
        }
        let key = s.string()?;
        s.ws();
        s.eat(b':')?;
        s.ws();
        match key.as_str() {
            "t" => t = Some(s.integer()?),
            "node" => node = Some(s.integer()?),
            "comp" => comp = Some(s.integer()?),
            "kind" => kind = Some(s.string()?),
            "detail" => detail = Some(s.string()?),
            "id" => id = Some(s.integer_or_null()?),
            "cause" => cause = Some(s.integer_or_null()?),
            other => return Err(format!("unknown key {other:?}")),
        }
        s.ws();
        match s.peek() {
            Some(b',') => s.i += 1,
            Some(b'}') => {
                s.i += 1;
                break;
            }
            _ => return Err("expected ',' or '}'".into()),
        }
    }
    s.ws();
    if s.i != s.b.len() {
        return Err("trailing characters after object".into());
    }
    Ok(Record {
        time: SimTime(t.ok_or("missing \"t\"")?),
        node: node.ok_or("missing \"node\"")?,
        comp: comp.ok_or("missing \"comp\"")?,
        kind: kind.ok_or("missing \"kind\"")?,
        detail: detail.ok_or("missing \"detail\"")?,
        id: id.ok_or("missing \"id\"")?.unwrap_or(NO_CAUSE),
        cause: cause.ok_or("missing \"cause\"")?.unwrap_or(NO_CAUSE),
    })
}

/// Byte scanner over one line.
struct Scan<'a> {
    b: &'a [u8],
    i: usize,
}

impl Scan<'_> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, want: u8) -> Result<(), String> {
        if self.peek() == Some(want) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?}", want as char))
        }
    }

    fn integer(&mut self) -> Result<u64, String> {
        let start = self.i;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.i += 1;
        }
        if self.i == start {
            return Err("expected an integer".into());
        }
        std::str::from_utf8(&self.b[start..self.i])
            .expect("digits are ASCII")
            .parse()
            .map_err(|_| "integer out of range".to_string())
    }

    fn integer_or_null(&mut self) -> Result<Option<u64>, String> {
        if self.b[self.i..].starts_with(b"null") {
            self.i += 4;
            Ok(None)
        } else {
            self.integer().map(Some)
        }
    }

    /// A JSON string, including the quotes, undoing the exporter's escapes.
    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .ok_or("truncated \\u escape")?;
                            self.i += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("non-scalar \\u escape")?);
                        }
                        c => return Err(format!("unknown escape \\{}", c as char)),
                    }
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through untouched: copy the
                    // whole scalar, not byte by byte.
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().expect("peek saw a byte");
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsim::component::{Addr, CompId, NodeId};
    use gridsim::obs::subscriber::jsonl_line;
    use gridsim::trace::TraceEvent;

    #[test]
    fn parses_a_plain_line() {
        let r = parse_line(
            r#"{"t":1500000,"node":3,"comp":0,"kind":"gram.submit","detail":"x","id":42,"cause":null}"#,
        )
        .unwrap();
        assert_eq!(r.time, SimTime(1_500_000));
        assert_eq!((r.node, r.comp), (3, 0));
        assert_eq!(r.kind, "gram.submit");
        assert_eq!(r.detail, "x");
        assert_eq!(r.id, 42);
        assert_eq!(r.cause, NO_CAUSE);
    }

    #[test]
    fn exporter_lines_round_trip() {
        // Satellite check: quotes, newlines, tabs, control chars, and
        // non-ASCII must all survive export -> parse unchanged.
        let nasty = "say \"hi\"\nplease\ttab \u{1} bell café → done \\end";
        let ev = TraceEvent {
            time: SimTime(987_654_321),
            addr: Addr {
                node: NodeId(7),
                comp: CompId(2),
            },
            kind: "span",
            detail: nasty.to_string(),
            id: 1234,
            cause: 1200,
        };
        let r = parse_line(&jsonl_line(&ev)).unwrap();
        assert_eq!(r.time, ev.time);
        assert_eq!((r.node, r.comp), (7, 2));
        assert_eq!(r.kind, ev.kind);
        assert_eq!(r.detail, nasty);
        assert_eq!((r.id, r.cause), (1234, 1200));

        // NO_CAUSE renders as null and parses back to NO_CAUSE.
        let root = TraceEvent {
            cause: NO_CAUSE,
            ..ev
        };
        let r = parse_line(&jsonl_line(&root)).unwrap();
        assert_eq!(r.cause, NO_CAUSE);
    }

    #[test]
    fn document_parse_reports_line_numbers_and_skips_blanks() {
        let good = r#"{"t":1,"node":0,"comp":0,"kind":"k","detail":"","id":0,"cause":null}"#;
        let recs = parse(&format!("{good}\n\n{good}\n")).unwrap();
        assert_eq!(recs.len(), 2);

        let err = parse(&format!("{good}\nnot json\n")).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "{",
            "{}",
            r#"{"t":1}"#,
            r#"{"t":1,"node":0,"comp":0,"kind":"k","detail":"","id":0,"cause":null} x"#,
            r#"{"t":1,"node":0,"comp":0,"kind":"k","detail":"unterminated,"id":0,"cause":null}"#,
            r#"{"t":1,"node":0,"comp":0,"kind":"k","detail":"","id":0,"cause":null,"extra":1}"#,
        ] {
            assert!(parse_line(bad).is_err(), "accepted: {bad}");
        }
    }
}
