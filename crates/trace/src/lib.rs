//! Offline forensics over `--trace-out` JSONL traces.
//!
//! The simulator's JSONL exporter ([`gridsim::obs::JsonlWriter`]) streams
//! every trace record with the `(id, cause)` provenance pair the kernel
//! stamps on it. This crate reads such a file back and answers the
//! questions an operator of the real Condor-G would ask after a bad week:
//!
//! * [`parse`] — a dependency-free parser for the exporter's JSONL schema
//!   (the exact inverse of [`gridsim::obs::subscriber::jsonl_line`]).
//! * [`forensics`] — rebuilds the happens-before DAG with
//!   [`gridsim::obs::CausalDag`], stitches span milestones into per-job
//!   attempt timelines, and derives per-job critical paths with blame
//!   breakdowns, stuck-job reports, and root-cause attribution of
//!   resubmissions back to injected faults.
//! * [`flight`] — decodes the binary dumps the in-sim flight recorder
//!   writes when an anomaly detector fires, into the same [`Record`]
//!   model, so all of the above run on campaign black-box dumps too.
//! * [`perfetto`] — converts a trace into a Perfetto TrackEvent protobuf
//!   (hand-rolled wire format, no proto dependency): per-job/site/component
//!   tracks, phase slices, cause→effect flows, and critical-path
//!   annotations, loadable at ui.perfetto.dev.
//!
//! The `condor-g-trace` binary is a thin CLI over these modules.

pub mod flight;
pub mod forensics;
pub mod parse;
pub mod perfetto;

pub use flight::decode as flight_decode;
pub use forensics::{Attempt, Attribution, CriticalPath, Forensics, JobForensics, StuckJob};
pub use parse::{parse, parse_line, ParseError, Record};
pub use perfetto::{decode as perfetto_decode, encode as perfetto_encode, Summary};
