//! `condor-g-trace`: offline forensics over a `--trace-out` JSONL trace.
//!
//! ```text
//! condor-g-trace run.jsonl                    # summary + all reports
//! condor-g-trace run.jsonl --critical-path    # per-job blame breakdown
//! condor-g-trace run.jsonl --critical-path 3  # one job, with full steps
//! condor-g-trace run.jsonl --stuck --horizon 30m
//! condor-g-trace run.jsonl --root-cause
//! condor-g-trace convert run.jsonl --perfetto-out run.perfetto
//! condor-g-trace flight campaign.flight          # decode a flight dump
//! condor-g-trace flight campaign.flight --root-cause
//! ```
//!
//! Exit status: 0 on success, 1 on parse errors, an empty causal DAG
//! (a trace with no provenance is useless for forensics, and usually means
//! the file is not a simulator trace), or a Perfetto self-verification
//! failure, 2 on usage errors.

use condor_g_trace::{flight_decode, parse, perfetto, Forensics};
use gridsim::time::Duration;
use std::process::ExitCode;

struct Options {
    path: String,
    critical_path: bool,
    job: Option<u64>,
    stuck: bool,
    root_cause: bool,
    horizon: Duration,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: condor-g-trace <trace.jsonl> [--critical-path [JOB]] [--stuck] \
         [--horizon DUR] [--root-cause]\n\
         \u{20}      condor-g-trace convert <trace.jsonl> --perfetto-out <file>\n\
         \u{20}      condor-g-trace flight <dump.flight> [report flags as above]\n\
         DUR accepts 90s / 30m / 2h / 1d (default horizon: 1h).\n\
         With no report flag, all reports are printed.\n\
         `convert` writes a Perfetto TrackEvent trace (open at ui.perfetto.dev).\n\
         `flight` decodes a binary flight-recorder dump and runs the same reports."
    );
    ExitCode::from(2)
}

/// `convert <trace> --perfetto-out <file>`: encode, self-verify by decoding,
/// report the track/flow census. Exit 1 if the round-trip check fails.
fn convert(args: &[String]) -> ExitCode {
    let (mut path, mut out) = (None, None);
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--perfetto-out" => match it.next() {
                Some(p) => out = Some(p.clone()),
                None => return usage(),
            },
            p if !p.starts_with('-') && path.is_none() => path = Some(p.to_string()),
            _ => return usage(),
        }
    }
    let (Some(path), Some(out)) = (path, out) else {
        return usage();
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("condor-g-trace: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let records = match parse(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("condor-g-trace: {path}: {e}");
            return ExitCode::from(1);
        }
    };
    let (bytes, summary) = perfetto::encode(&records);
    if let Err(e) = perfetto::verify(&records, &bytes, &summary) {
        eprintln!("condor-g-trace: {path}: perfetto self-verification failed: {e}");
        return ExitCode::from(1);
    }
    if let Err(e) = std::fs::write(&out, &bytes) {
        eprintln!("condor-g-trace: {out}: {e}");
        return ExitCode::from(2);
    }
    println!(
        "{out}: {} bytes, {} packets ({} events, {} phase slices) | tracks: {} jobs, \
         {} sites, {} components | {} flow edges, {} critical-path events",
        bytes.len(),
        summary.packets,
        summary.instants,
        summary.slices,
        summary.job_tracks,
        summary.site_tracks,
        summary.component_tracks,
        summary.flow_edges,
        summary.critical_instants,
    );
    ExitCode::SUCCESS
}

fn parse_horizon(s: &str) -> Option<Duration> {
    let (num, unit) = s.split_at(s.len() - s.chars().last()?.len_utf8());
    let (value, mult) = match unit {
        "s" => (num, 1),
        "m" => (num, 60),
        "h" => (num, 3600),
        "d" => (num, 86_400),
        _ => (s, 1), // plain seconds
    };
    value
        .parse::<u64>()
        .ok()
        .map(|v| Duration::from_secs(v * mult))
}

fn parse_args(args: &[String]) -> Result<Options, ()> {
    let mut opts = Options {
        path: String::new(),
        critical_path: false,
        job: None,
        stuck: false,
        root_cause: false,
        horizon: Duration::from_hours(1),
    };
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--critical-path" => {
                opts.critical_path = true;
                if let Some(j) = it.peek().and_then(|n| n.parse().ok()) {
                    opts.job = Some(j);
                    it.next();
                }
            }
            "--stuck" => opts.stuck = true,
            "--root-cause" => opts.root_cause = true,
            "--horizon" => {
                let v = it.next().ok_or(())?;
                opts.horizon = parse_horizon(v).ok_or(())?;
            }
            p if !p.starts_with('-') && opts.path.is_empty() => opts.path = p.to_string(),
            _ => return Err(()),
        }
    }
    if opts.path.is_empty() {
        return Err(());
    }
    Ok(opts)
}

fn print_critical_paths(f: &Forensics, only: Option<u64>) {
    println!("== critical paths ==");
    for job in f.jobs.keys().copied().collect::<Vec<_>>() {
        if only.is_some_and(|j| j != job) {
            continue;
        }
        let Some(cp) = f.critical_path(job) else {
            continue;
        };
        let blame: Vec<String> = cp
            .blame
            .iter()
            .map(|(cat, secs)| {
                format!(
                    "{cat} {secs:.1}s ({:.0}%)",
                    100.0 * secs / cp.total.as_secs_f64().max(f64::MIN_POSITIVE)
                )
            })
            .collect();
        println!(
            "gj{job}: {} in {:.1}s over {} steps | {}",
            cp.outcome,
            cp.total.as_secs_f64(),
            cp.steps.len(),
            blame.join(", ")
        );
        // Full step listing only for a single selected job.
        if only.is_some() {
            for s in &cp.steps {
                println!(
                    "  [{:>12}] +{:>9.3}s {:<13} {}",
                    s.time,
                    s.elapsed.as_secs_f64(),
                    s.category,
                    s.label
                );
            }
        }
    }
}

fn print_stuck(f: &Forensics, horizon: Duration) {
    println!("== stuck jobs (horizon {:.0}s) ==", horizon.as_secs_f64());
    let stuck = f.stuck_jobs(horizon);
    if stuck.is_empty() {
        println!("none");
        return;
    }
    for s in stuck {
        println!(
            "gj{}: stuck in {} since {} (site {})",
            s.job,
            s.last_phase,
            s.since,
            s.site.as_deref().unwrap_or("-")
        );
    }
}

fn print_root_causes(f: &Forensics) {
    println!("== failure attribution ==");
    let causes = f.root_causes();
    if causes.is_empty() {
        println!("no attempt failures");
        return;
    }
    for a in causes {
        let verdict = match &a.cause {
            Some((kind, detail, t)) => format!("{kind} {detail} at {t} [{}]", a.via),
            None => "unattributed".to_string(),
        };
        println!(
            "gj{} failed at {} ({}, site {}): {}",
            a.job,
            a.time,
            a.why,
            a.site.as_deref().unwrap_or("-"),
            verdict
        );
    }
}

fn print_summary(f: &Forensics, path: &str) {
    println!(
        "{}: {} records, {} observable events, {} roots, {} jobs ({} terminal, {} resubmitted)",
        path,
        f.records.len(),
        f.dag.len(),
        f.dag.roots().count(),
        f.jobs.len(),
        f.jobs.values().filter(|j| j.terminal.is_some()).count(),
        f.resubmitted_jobs().count(),
    );
}

fn run_reports(f: &Forensics, opts: &Options) {
    let all = !opts.critical_path && !opts.stuck && !opts.root_cause;
    if opts.critical_path || all {
        print_critical_paths(f, opts.job);
    }
    if opts.stuck || all {
        print_stuck(f, opts.horizon);
    }
    if opts.root_cause || all {
        print_root_causes(f);
    }
}

/// `flight <dump> [report flags]`: decode a binary flight-recorder dump
/// into the record model and run the standard reports on its window.
fn flight(args: &[String]) -> ExitCode {
    let Ok(opts) = parse_args(args) else {
        return usage();
    };
    let bytes = match std::fs::read(&opts.path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("condor-g-trace: {}: {e}", opts.path);
            return ExitCode::from(2);
        }
    };
    let (meta, records) = match flight_decode(&bytes) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("condor-g-trace: {}: {e}", opts.path);
            return ExitCode::from(1);
        }
    };
    println!(
        "{}: flight dump at {} — {} ({})",
        opts.path,
        meta.time,
        meta.reason,
        if meta.anchor.is_empty() {
            "whole ring".to_string()
        } else {
            format!("anchored on {}", meta.anchor)
        },
    );
    // A dump is a window, not a whole trace: causes may point outside it,
    // so an empty DAG is reported but not fatal.
    let f = Forensics::build(records);
    print_summary(&f, &opts.path);
    run_reports(&f, &opts);
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("convert") {
        return convert(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("flight") {
        return flight(&args[1..]);
    }
    let Ok(opts) = parse_args(&args) else {
        return usage();
    };
    let text = match std::fs::read_to_string(&opts.path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("condor-g-trace: {}: {e}", opts.path);
            return ExitCode::from(2);
        }
    };
    let records = match parse(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("condor-g-trace: {}: {e}", opts.path);
            return ExitCode::from(1);
        }
    };
    let f = Forensics::build(records);
    if f.dag.is_empty() {
        eprintln!(
            "condor-g-trace: {}: no causal provenance in trace (empty DAG)",
            opts.path
        );
        return ExitCode::from(1);
    }
    print_summary(&f, &opts.path);
    run_reports(&f, &opts);
    ExitCode::SUCCESS
}
