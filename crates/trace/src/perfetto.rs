//! Perfetto TrackEvent export: turn a causal JSONL trace into a protobuf
//! trace loadable at ui.perfetto.dev.
//!
//! The proto encoding is hand-rolled (the workspace builds offline, no
//! protobuf dependency): a varint/length-delimited writer emitting the
//! subset of `perfetto.protos.Trace` the UI needs — `TracePacket` with
//! `TrackDescriptor` and `TrackEvent` payloads. The mapping:
//!
//! * **Tracks.** Three roots — `jobs`, `sites`, `components` — with one
//!   child track per grid job (`gj<N>`), per site, and per component
//!   group (the `kind` prefix before the first `.`). Every JSONL record
//!   becomes exactly one `TYPE_INSTANT` event on the most specific track
//!   that claims it: job (via the same seq/contact stitching the
//!   forensics analyzer uses) wins over site (span `site=` fields,
//!   `lrm.*` site prefixes, `fault.*` node names) wins over component.
//! * **Spans.** The `obs::span` phase boundaries (submit → auth → commit
//!   → stage-in → queue → execute → stage-out) become `TYPE_SLICE_BEGIN`
//!   / `TYPE_SLICE_END` pairs on the job's track, so each job reads as a
//!   phase-coloured timeline.
//! * **Flows.** Each happens-before edge `cause → id` becomes a Perfetto
//!   flow: the flow id is the parent event id, carried by the parent's
//!   packet and every child packet, so clicking an event shows its causal
//!   fan-in/fan-out.
//! * **Critical path.** Events on some job's critical path (the
//!   [`chain_to_root`](gridsim::obs::CausalDag::chain_to_root) of its
//!   terminal milestone) carry the `critical` category, so the UI can
//!   highlight exactly the chain that determined each job's end-to-end
//!   time.
//!
//! [`decode`] parses the subset back — the round-trip tests and the
//! `convert` CLI's self-verification both use it.

use crate::forensics::Forensics;
use crate::parse::Record;
use gridsim::event::NO_CAUSE;
use std::collections::{BTreeMap, BTreeSet};

// ---- proto field numbers (perfetto.protos, TrackEvent subset) ----------

/// `Trace.packet`.
const TRACE_PACKET: u32 = 1;
/// `TracePacket.timestamp` (varint, microseconds here).
const PACKET_TIMESTAMP: u32 = 8;
/// `TracePacket.trusted_packet_sequence_id` (varint).
const PACKET_SEQUENCE_ID: u32 = 10;
/// `TracePacket.track_event` (message).
const PACKET_TRACK_EVENT: u32 = 11;
/// `TracePacket.track_descriptor` (message).
const PACKET_TRACK_DESCRIPTOR: u32 = 60;
/// `TrackDescriptor.uuid` (varint).
const DESC_UUID: u32 = 1;
/// `TrackDescriptor.name` (string).
const DESC_NAME: u32 = 2;
/// `TrackDescriptor.parent_uuid` (varint).
const DESC_PARENT: u32 = 5;
/// `TrackEvent.debug_annotations` (repeated message).
const EVENT_ANNOTATION: u32 = 4;
/// `TrackEvent.type` (varint enum).
const EVENT_TYPE: u32 = 9;
/// `TrackEvent.track_uuid` (varint).
const EVENT_TRACK: u32 = 11;
/// `TrackEvent.categories` (repeated string).
const EVENT_CATEGORY: u32 = 22;
/// `TrackEvent.name` (string).
const EVENT_NAME: u32 = 23;
/// `TrackEvent.flow_ids` (repeated fixed64).
const EVENT_FLOW: u32 = 47;
/// `DebugAnnotation.uint_value` (varint).
const ANN_UINT: u32 = 3;
/// `DebugAnnotation.string_value` (string).
const ANN_STRING: u32 = 6;
/// `DebugAnnotation.name` (string).
const ANN_NAME: u32 = 10;

/// `TrackEvent.Type` values.
pub const TYPE_SLICE_BEGIN: u64 = 1;
/// See [`TYPE_SLICE_BEGIN`].
pub const TYPE_SLICE_END: u64 = 2;
/// See [`TYPE_SLICE_BEGIN`].
pub const TYPE_INSTANT: u64 = 3;

/// Track uuids: fixed roots plus banked children, so the assignment is a
/// pure function of the trace content (golden-bytes stability).
const UUID_JOBS_ROOT: u64 = 1;
const UUID_SITES_ROOT: u64 = 2;
const UUID_COMPONENTS_ROOT: u64 = 3;
const UUID_JOB_BASE: u64 = 0x1000;
const UUID_SITE_BASE: u64 = 0x2000;
const UUID_COMPONENT_BASE: u64 = 0x3000;

/// The one trusted packet sequence everything is emitted under.
const SEQUENCE_ID: u64 = 1;

// ---- varint / length-delimited writer ----------------------------------

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_tag(out: &mut Vec<u8>, field: u32, wire: u32) {
    put_varint(out, ((field as u64) << 3) | wire as u64);
}

fn put_uint(out: &mut Vec<u8>, field: u32, v: u64) {
    put_tag(out, field, 0);
    put_varint(out, v);
}

fn put_bytes(out: &mut Vec<u8>, field: u32, bytes: &[u8]) {
    put_tag(out, field, 2);
    put_varint(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

fn put_str(out: &mut Vec<u8>, field: u32, s: &str) {
    put_bytes(out, field, s.as_bytes());
}

fn put_fixed64(out: &mut Vec<u8>, field: u32, v: u64) {
    put_tag(out, field, 1);
    out.extend_from_slice(&v.to_le_bytes());
}

// ---- encoding ----------------------------------------------------------

/// What [`encode`] produced, for reports and CI sanity checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Summary {
    /// Total `TracePacket`s written.
    pub packets: usize,
    /// `TYPE_INSTANT` events — exactly one per JSONL record.
    pub instants: usize,
    /// Phase slices (`TYPE_SLICE_BEGIN`/`END` pairs count as one).
    pub slices: usize,
    /// Job tracks.
    pub job_tracks: usize,
    /// Site tracks.
    pub site_tracks: usize,
    /// Component-group tracks.
    pub component_tracks: usize,
    /// Happens-before edges rendered as flows.
    pub flow_edges: usize,
    /// Instants carrying the `critical` category.
    pub critical_instants: usize,
}

/// Parse a leading `gj<N>` job id (the `GridJobId` display form used by
/// every `gm.*` detail).
fn leading_gj(detail: &str) -> Option<u64> {
    let rest = detail.strip_prefix("gj")?;
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    if digits.is_empty() {
        return None;
    }
    digits.parse().ok()
}

/// `key=value` lookup in a space-separated detail.
fn field<'a>(detail: &'a str, key: &str) -> Option<&'a str> {
    detail.split_whitespace().find_map(|kv| {
        let (k, v) = kv.split_once('=')?;
        (k == key).then_some(v)
    })
}

/// The phase spanned by a consecutive milestone pair (mirror of
/// `gridsim::obs::span::phase_between`, which is private there).
fn phase_between(prev: &str, next: &str) -> Option<&'static str> {
    Some(match (prev, next) {
        ("submit", "auth") => "auth",
        ("auth", "commit") => "commit",
        ("commit", "stage_in_done") => "stage_in",
        ("stage_in_done", "active") => "queue",
        ("active", "stage_out") | ("active", "done") => "execute",
        ("stage_out", "done") => "stage_out",
        _ => return None,
    })
}

/// Per-record track attribution, resolved most-specific-first.
struct Attribution {
    /// Join maps rebuilt the way the protocols thread identity.
    seq_to_job: BTreeMap<u64, u64>,
    contact_to_job: BTreeMap<u64, u64>,
    /// Site names learned from submit milestones and `site=` fields.
    sites: BTreeSet<String>,
}

impl Attribution {
    fn build(records: &[Record]) -> Attribution {
        let mut a = Attribution {
            seq_to_job: BTreeMap::new(),
            contact_to_job: BTreeMap::new(),
            sites: BTreeSet::new(),
        };
        for r in records {
            if let Some(site) = field(&r.detail, "site") {
                a.sites.insert(site.to_string());
            }
            if r.kind == "span" && field(&r.detail, "phase") == Some("submit") {
                if let (Some(job), Some(seq)) = (
                    field(&r.detail, "job").and_then(|v| v.parse().ok()),
                    field(&r.detail, "seq").and_then(|v| v.parse().ok()),
                ) {
                    a.seq_to_job.insert(seq, job);
                }
            }
            if r.kind == "span" && field(&r.detail, "phase") == Some("auth") {
                if let (Some(seq), Some(contact)) = (
                    field(&r.detail, "seq").and_then(|v| v.parse::<u64>().ok()),
                    field(&r.detail, "contact").and_then(|v| v.parse().ok()),
                ) {
                    if let Some(&job) = a.seq_to_job.get(&seq) {
                        a.contact_to_job.insert(contact, job);
                    }
                }
            }
        }
        a
    }

    fn job_of(&self, r: &Record) -> Option<u64> {
        if r.kind == "span" {
            if field(&r.detail, "phase") == Some("transfer") {
                return field(&r.detail, "path")?
                    .strip_prefix("/condor_g/out/gj")?
                    .parse()
                    .ok();
            }
            return field(&r.detail, "job")
                .and_then(|v| v.parse().ok())
                .or_else(|| {
                    field(&r.detail, "seq")
                        .and_then(|v| v.parse().ok())
                        .and_then(|s| self.seq_to_job.get(&s).copied())
                })
                .or_else(|| {
                    field(&r.detail, "contact")
                        .and_then(|v| v.parse().ok())
                        .and_then(|c| self.contact_to_job.get(&c).copied())
                });
        }
        if r.kind.starts_with("gm.") {
            return leading_gj(&r.detail);
        }
        None
    }

    fn site_of(&self, r: &Record) -> Option<String> {
        if let Some(site) = field(&r.detail, "site") {
            return Some(site.to_string());
        }
        if r.kind.starts_with("lrm.") {
            let first = r.detail.split_whitespace().next()?;
            if self.sites.contains(first) {
                return Some(first.to_string());
            }
        }
        if r.kind.starts_with("fault.") {
            for site in &self.sites {
                if r.detail.contains(&format!("gk.{site}"))
                    || r.detail.contains(&format!("cluster.{site}"))
                {
                    return Some(site.clone());
                }
            }
        }
        None
    }

    fn component_of(r: &Record) -> &str {
        r.kind.split('.').next().unwrap_or(&r.kind)
    }
}

fn descriptor_packet(uuid: u64, name: &str, parent: Option<u64>) -> Vec<u8> {
    let mut desc = Vec::new();
    put_uint(&mut desc, DESC_UUID, uuid);
    put_str(&mut desc, DESC_NAME, name);
    if let Some(p) = parent {
        put_uint(&mut desc, DESC_PARENT, p);
    }
    let mut packet = Vec::new();
    put_uint(&mut packet, PACKET_TIMESTAMP, 0);
    put_uint(&mut packet, PACKET_SEQUENCE_ID, SEQUENCE_ID);
    put_bytes(&mut packet, PACKET_TRACK_DESCRIPTOR, &desc);
    packet
}

fn annotation(name: &str, value: AnnValue<'_>) -> Vec<u8> {
    let mut ann = Vec::new();
    match value {
        AnnValue::Str(s) => put_str(&mut ann, ANN_STRING, s),
        AnnValue::Uint(v) => put_uint(&mut ann, ANN_UINT, v),
    }
    put_str(&mut ann, ANN_NAME, name);
    ann
}

enum AnnValue<'a> {
    Str(&'a str),
    Uint(u64),
}

struct EventPacket<'a> {
    timestamp: u64,
    ty: u64,
    track: u64,
    name: &'a str,
    critical: bool,
    flows: &'a [u64],
    annotations: &'a [Vec<u8>],
}

fn event_packet(ev: &EventPacket<'_>) -> Vec<u8> {
    let mut te = Vec::new();
    for ann in ev.annotations {
        put_bytes(&mut te, EVENT_ANNOTATION, ann);
    }
    put_uint(&mut te, EVENT_TYPE, ev.ty);
    put_uint(&mut te, EVENT_TRACK, ev.track);
    if ev.critical {
        put_str(&mut te, EVENT_CATEGORY, "critical");
    }
    put_str(&mut te, EVENT_NAME, ev.name);
    for &f in ev.flows {
        put_fixed64(&mut te, EVENT_FLOW, f);
    }
    let mut packet = Vec::new();
    put_uint(&mut packet, PACKET_TIMESTAMP, ev.timestamp);
    put_uint(&mut packet, PACKET_SEQUENCE_ID, SEQUENCE_ID);
    put_bytes(&mut packet, PACKET_TRACK_EVENT, &te);
    packet
}

/// Encode a parsed trace as a Perfetto `Trace` protobuf.
pub fn encode(records: &[Record]) -> (Vec<u8>, Summary) {
    let attr = Attribution::build(records);
    let f = Forensics::build(records.to_vec());

    // Event ids on some job's critical path.
    let mut critical: BTreeSet<u64> = BTreeSet::new();
    for j in f.jobs.values() {
        if let Some((_, _, terminal_event)) = &j.terminal {
            for node in f.dag.chain_to_root(*terminal_event) {
                critical.insert(node.id);
            }
        }
    }
    // Event ids that cause at least one other record: these open flows.
    let causes: BTreeSet<u64> = records
        .iter()
        .filter(|r| r.cause != NO_CAUSE)
        .map(|r| r.cause)
        .collect();
    let flow_edges = records
        .iter()
        .filter(|r| r.cause != NO_CAUSE && r.id != NO_CAUSE)
        .count();

    // Discover tracks: jobs from the attribution pass, sites and component
    // groups from the records, all in sorted order for stable uuids.
    let mut jobs: BTreeSet<u64> = BTreeSet::new();
    let mut sites: BTreeSet<String> = BTreeSet::new();
    let mut components: BTreeSet<String> = BTreeSet::new();
    let mut placement: Vec<(Option<u64>, Option<String>)> = Vec::with_capacity(records.len());
    for r in records {
        let job = attr.job_of(r);
        let site = if job.is_none() { attr.site_of(r) } else { None };
        match (&job, &site) {
            (Some(j), _) => {
                jobs.insert(*j);
            }
            (None, Some(s)) => {
                sites.insert(s.clone());
            }
            (None, None) => {
                components.insert(Attribution::component_of(r).to_string());
            }
        }
        placement.push((job, site));
    }
    let job_uuid: BTreeMap<u64, u64> = jobs
        .iter()
        .enumerate()
        .map(|(i, &j)| (j, UUID_JOB_BASE + i as u64))
        .collect();
    let site_uuid: BTreeMap<String, u64> = sites
        .iter()
        .enumerate()
        .map(|(i, s)| (s.clone(), UUID_SITE_BASE + i as u64))
        .collect();
    let component_uuid: BTreeMap<String, u64> = components
        .iter()
        .enumerate()
        .map(|(i, c)| (c.clone(), UUID_COMPONENT_BASE + i as u64))
        .collect();

    let mut out = Vec::new();
    let mut packets = 0usize;
    let mut emit = |out: &mut Vec<u8>, packet: Vec<u8>| {
        put_bytes(out, TRACE_PACKET, &packet);
        packets += 1;
    };
    emit(&mut out, descriptor_packet(UUID_JOBS_ROOT, "jobs", None));
    emit(&mut out, descriptor_packet(UUID_SITES_ROOT, "sites", None));
    emit(
        &mut out,
        descriptor_packet(UUID_COMPONENTS_ROOT, "components", None),
    );
    for (&job, &uuid) in &job_uuid {
        emit(
            &mut out,
            descriptor_packet(uuid, &format!("gj{job}"), Some(UUID_JOBS_ROOT)),
        );
    }
    for (site, &uuid) in &site_uuid {
        emit(
            &mut out,
            descriptor_packet(uuid, site, Some(UUID_SITES_ROOT)),
        );
    }
    for (comp, &uuid) in &component_uuid {
        emit(
            &mut out,
            descriptor_packet(uuid, comp, Some(UUID_COMPONENTS_ROOT)),
        );
    }

    // The 1:1 law: every record is exactly one TYPE_INSTANT packet.
    let mut critical_instants = 0usize;
    for (r, (job, site)) in records.iter().zip(&placement) {
        let track = match (job, site) {
            (Some(j), _) => job_uuid[j],
            (None, Some(s)) => site_uuid[s],
            (None, None) => component_uuid[Attribution::component_of(r)],
        };
        let mut flows = Vec::new();
        if r.cause != NO_CAUSE {
            flows.push(r.cause);
        }
        if r.id != NO_CAUSE && r.id != r.cause && causes.contains(&r.id) {
            flows.push(r.id);
        }
        let is_critical = r.id != NO_CAUSE && critical.contains(&r.id);
        if is_critical {
            critical_instants += 1;
        }
        let mut annotations = vec![annotation("detail", AnnValue::Str(&r.detail))];
        if r.id != NO_CAUSE {
            annotations.push(annotation("event", AnnValue::Uint(r.id)));
        }
        if r.cause != NO_CAUSE {
            annotations.push(annotation("cause", AnnValue::Uint(r.cause)));
        }
        emit(
            &mut out,
            event_packet(&EventPacket {
                timestamp: r.time.micros(),
                ty: TYPE_INSTANT,
                track,
                name: &r.kind,
                critical: is_critical,
                flows: &flows,
                annotations: &annotations,
            }),
        );
    }

    // Phase slices on job tracks, from the span milestone pairs.
    let mut slices = 0usize;
    for j in f.jobs.values() {
        let Some(&track) = job_uuid.get(&j.job) else {
            continue;
        };
        for (i, a) in j.attempts.iter().enumerate() {
            let mut milestones: Vec<(String, u64)> =
                vec![("submit".to_string(), a.submitted.micros())];
            milestones.extend(
                a.milestones
                    .iter()
                    .map(|(name, t, _)| (name.clone(), t.micros())),
            );
            // The terminal milestone closes the last attempt.
            if i + 1 == j.attempts.len() {
                if let Some((name, t, _)) = &j.terminal {
                    milestones.push((name.clone(), t.micros()));
                }
            }
            for pair in milestones.windows(2) {
                let Some(phase) = phase_between(&pair[0].0, &pair[1].0) else {
                    continue;
                };
                slices += 1;
                for (ty, ts) in [(TYPE_SLICE_BEGIN, pair[0].1), (TYPE_SLICE_END, pair[1].1)] {
                    emit(
                        &mut out,
                        event_packet(&EventPacket {
                            timestamp: ts,
                            ty,
                            track,
                            name: phase,
                            critical: false,
                            flows: &[],
                            annotations: &[],
                        }),
                    );
                }
            }
        }
    }

    let summary = Summary {
        packets,
        instants: records.len(),
        slices,
        job_tracks: job_uuid.len(),
        site_tracks: site_uuid.len(),
        component_tracks: component_uuid.len(),
        flow_edges,
        critical_instants,
    };
    (out, summary)
}

// ---- decoding (round-trip verification) --------------------------------

/// A decoded `TrackDescriptor`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrackDesc {
    /// Track uuid.
    pub uuid: u64,
    /// Display name.
    pub name: String,
    /// Parent track, if nested.
    pub parent: Option<u64>,
}

/// A decoded `TrackEvent`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrackEv {
    /// `TrackEvent.Type` (see [`TYPE_INSTANT`] etc.).
    pub ty: u64,
    /// Track uuid the event is on.
    pub track: u64,
    /// Event name.
    pub name: String,
    /// Categories (only `critical` is emitted).
    pub categories: Vec<String>,
    /// Flow ids.
    pub flows: Vec<u64>,
    /// String debug annotations (`name`, `value`).
    pub notes: Vec<(String, String)>,
    /// Integer debug annotations (`name`, `value`).
    pub nums: Vec<(String, u64)>,
}

/// A decoded `TracePacket`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Packet {
    /// Packet timestamp (microseconds).
    pub timestamp: u64,
    /// Trusted packet sequence id.
    pub sequence: u64,
    /// Descriptor payload, if any.
    pub descriptor: Option<TrackDesc>,
    /// Event payload, if any.
    pub event: Option<TrackEv>,
}

struct Reader<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Reader<'a> {
    fn done(&self) -> bool {
        self.i >= self.b.len()
    }

    fn varint(&mut self) -> Result<u64, String> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let &byte = self.b.get(self.i).ok_or("truncated varint")?;
            self.i += 1;
            if shift >= 64 {
                return Err("varint overflow".into());
            }
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn fixed64(&mut self) -> Result<u64, String> {
        let bytes = self.b.get(self.i..self.i + 8).ok_or("truncated fixed64")?;
        self.i += 8;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    fn bytes(&mut self) -> Result<&'a [u8], String> {
        let len = self.varint()? as usize;
        let bytes = self
            .b
            .get(self.i..self.i + len)
            .ok_or("truncated length-delimited field")?;
        self.i += len;
        Ok(bytes)
    }

    /// Read one `(field, wire)` tag.
    fn tag(&mut self) -> Result<(u32, u32), String> {
        let t = self.varint()?;
        Ok(((t >> 3) as u32, (t & 7) as u32))
    }

    /// Skip a field of the given wire type.
    fn skip(&mut self, wire: u32) -> Result<(), String> {
        match wire {
            0 => self.varint().map(|_| ()),
            1 => self.fixed64().map(|_| ()),
            2 => self.bytes().map(|_| ()),
            5 => {
                self.i += 4;
                (self.i <= self.b.len())
                    .then_some(())
                    .ok_or_else(|| "truncated fixed32".to_string())
            }
            w => Err(format!("unsupported wire type {w}")),
        }
    }
}

fn utf8(bytes: &[u8]) -> Result<String, String> {
    String::from_utf8(bytes.to_vec()).map_err(|_| "invalid UTF-8".into())
}

fn decode_descriptor(bytes: &[u8]) -> Result<TrackDesc, String> {
    let mut r = Reader { b: bytes, i: 0 };
    let mut d = TrackDesc::default();
    while !r.done() {
        let (f, w) = r.tag()?;
        match f {
            DESC_UUID => d.uuid = r.varint()?,
            DESC_NAME => d.name = utf8(r.bytes()?)?,
            DESC_PARENT => d.parent = Some(r.varint()?),
            _ => r.skip(w)?,
        }
    }
    Ok(d)
}

fn decode_annotation(bytes: &[u8], ev: &mut TrackEv) -> Result<(), String> {
    let mut r = Reader { b: bytes, i: 0 };
    let (mut name, mut s, mut n) = (String::new(), None, None);
    while !r.done() {
        let (f, w) = r.tag()?;
        match f {
            ANN_NAME => name = utf8(r.bytes()?)?,
            ANN_STRING => s = Some(utf8(r.bytes()?)?),
            ANN_UINT => n = Some(r.varint()?),
            _ => r.skip(w)?,
        }
    }
    if let Some(v) = s {
        ev.notes.push((name.clone(), v));
    }
    if let Some(v) = n {
        ev.nums.push((name, v));
    }
    Ok(())
}

fn decode_event(bytes: &[u8]) -> Result<TrackEv, String> {
    let mut r = Reader { b: bytes, i: 0 };
    let mut e = TrackEv::default();
    while !r.done() {
        let (f, w) = r.tag()?;
        match f {
            EVENT_TYPE => e.ty = r.varint()?,
            EVENT_TRACK => e.track = r.varint()?,
            EVENT_NAME => e.name = utf8(r.bytes()?)?,
            EVENT_CATEGORY => e.categories.push(utf8(r.bytes()?)?),
            EVENT_FLOW => e.flows.push(r.fixed64()?),
            EVENT_ANNOTATION => decode_annotation(r.bytes()?, &mut e)?,
            _ => r.skip(w)?,
        }
    }
    Ok(e)
}

fn decode_packet(bytes: &[u8]) -> Result<Packet, String> {
    let mut r = Reader { b: bytes, i: 0 };
    let mut p = Packet::default();
    while !r.done() {
        let (f, w) = r.tag()?;
        match f {
            PACKET_TIMESTAMP => p.timestamp = r.varint()?,
            PACKET_SEQUENCE_ID => p.sequence = r.varint()?,
            PACKET_TRACK_DESCRIPTOR => p.descriptor = Some(decode_descriptor(r.bytes()?)?),
            PACKET_TRACK_EVENT => p.event = Some(decode_event(r.bytes()?)?),
            _ => r.skip(w)?,
        }
    }
    Ok(p)
}

/// Decode an encoded trace back into its packets.
pub fn decode(bytes: &[u8]) -> Result<Vec<Packet>, String> {
    let mut r = Reader { b: bytes, i: 0 };
    let mut out = Vec::new();
    while !r.done() {
        let (f, w) = r.tag()?;
        if f == TRACE_PACKET && w == 2 {
            out.push(decode_packet(r.bytes()?)?);
        } else {
            r.skip(w)?;
        }
    }
    Ok(out)
}

/// Decode `bytes` and cross-check it against the records it was encoded
/// from: the 1:1 instant law, flow ids matching the `(id, cause)` pairs,
/// every event on a declared track, and the declared track census matching
/// `summary`. The `convert` CLI runs this before reporting success.
pub fn verify(records: &[Record], bytes: &[u8], summary: &Summary) -> Result<(), String> {
    let packets = decode(bytes)?;
    if packets.len() != summary.packets {
        return Err(format!(
            "packet count {} != summary {}",
            packets.len(),
            summary.packets
        ));
    }
    let tracks: BTreeMap<u64, &TrackDesc> = packets
        .iter()
        .filter_map(|p| p.descriptor.as_ref())
        .map(|d| (d.uuid, d))
        .collect();
    let child_count = |root: u64| tracks.values().filter(|d| d.parent == Some(root)).count();
    if child_count(UUID_JOBS_ROOT) != summary.job_tracks
        || child_count(UUID_SITES_ROOT) != summary.site_tracks
        || child_count(UUID_COMPONENTS_ROOT) != summary.component_tracks
    {
        return Err("track census does not match summary".into());
    }
    let instants: Vec<(&Packet, &TrackEv)> = packets
        .iter()
        .filter_map(|p| p.event.as_ref().map(|e| (p, e)))
        .filter(|(_, e)| e.ty == TYPE_INSTANT)
        .collect();
    if instants.len() != records.len() {
        return Err(format!(
            "{} instant packets for {} records (1:1 law violated)",
            instants.len(),
            records.len()
        ));
    }
    for ((p, e), r) in instants.iter().zip(records) {
        if p.timestamp != r.time.micros() || e.name != r.kind {
            return Err(format!(
                "instant mismatch: packet {}/{} vs record {}/{}",
                p.timestamp,
                e.name,
                r.time.micros(),
                r.kind
            ));
        }
        if !tracks.contains_key(&e.track) {
            return Err(format!("event on undeclared track {}", e.track));
        }
        if r.cause != NO_CAUSE && !e.flows.contains(&r.cause) {
            return Err(format!(
                "record under event {} lost its cause-flow {}",
                r.id, r.cause
            ));
        }
    }
    let critical = instants
        .iter()
        .filter(|(_, e)| e.categories.iter().any(|c| c == "critical"))
        .count();
    if critical != summary.critical_instants {
        return Err("critical-path annotation count does not match summary".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsim::time::SimTime;

    fn rec(t: u64, kind: &str, detail: &str, id: u64, cause: u64) -> Record {
        Record {
            time: SimTime(t),
            node: 0,
            comp: 0,
            kind: kind.to_string(),
            detail: detail.to_string(),
            id,
            cause,
        }
    }

    const S: u64 = 1_000_000;

    /// One job through the full pipeline, plus a site-attributed LRM event
    /// and an unattributable tick.
    fn pipeline_trace() -> Vec<Record> {
        vec![
            rec(0, "span", "job=3 seq=9 phase=submit site=anl", 1, NO_CAUSE),
            rec(2 * S, "span", "seq=9 contact=77 phase=auth", 2, 1),
            rec(3 * S, "span", "contact=77 phase=commit", 3, 2),
            rec(5 * S, "span", "contact=77 phase=stage_in_done", 4, 3),
            rec(6 * S, "lrm.start", "anl job 0 (1 cpus)", 5, 4),
            rec(9 * S, "span", "contact=77 phase=active", 5, 4),
            rec(60 * S, "span", "contact=77 phase=stage_out", 6, 5),
            rec(61 * S, "span", "job=3 phase=done", 7, 6),
            rec(70 * S, "tick", "", 8, NO_CAUSE),
        ]
    }

    #[test]
    fn round_trip_preserves_every_record_and_flow() {
        let records = pipeline_trace();
        let (bytes, summary) = encode(&records);
        assert!(!bytes.is_empty());
        verify(&records, &bytes, &summary).expect("self-consistent");

        assert_eq!(summary.instants, records.len());
        assert_eq!(summary.job_tracks, 1);
        assert_eq!(summary.site_tracks, 1, "lrm.start lands on the anl track");
        // span (transfer-less job spans all go to the job track) + tick.
        assert_eq!(summary.component_tracks, 1);
        assert_eq!(summary.flow_edges, 7);

        let packets = decode(&bytes).unwrap();
        // Every happens-before edge is a shared flow id: the child carries
        // `cause`, and the parent's packet carries its own id.
        let instants: Vec<&TrackEv> = packets
            .iter()
            .filter_map(|p| p.event.as_ref())
            .filter(|e| e.ty == TYPE_INSTANT)
            .collect();
        for (r, e) in records.iter().zip(&instants) {
            if r.cause != NO_CAUSE {
                assert!(e.flows.contains(&r.cause), "{}: cause flow", r.kind);
            }
        }
        // Event 1 causes event 2, so the submit packet opens flow 1.
        assert!(instants[0].flows.contains(&1));
        // The full chain to `done` is the critical path; the tick is not.
        assert_eq!(summary.critical_instants, 8);
        assert!(instants[8].categories.is_empty());
        assert!(instants[0].categories.iter().any(|c| c == "critical"));
    }

    #[test]
    fn phase_slices_cover_the_pipeline() {
        let records = pipeline_trace();
        let (bytes, summary) = encode(&records);
        assert_eq!(summary.slices, 6, "all six phases completed");
        let packets = decode(&bytes).unwrap();
        let begins: Vec<String> = packets
            .iter()
            .filter_map(|p| p.event.as_ref())
            .filter(|e| e.ty == TYPE_SLICE_BEGIN)
            .map(|e| e.name.clone())
            .collect();
        assert_eq!(
            begins,
            [
                "auth",
                "commit",
                "stage_in",
                "queue",
                "execute",
                "stage_out"
            ]
        );
        let ends = packets
            .iter()
            .filter_map(|p| p.event.as_ref())
            .filter(|e| e.ty == TYPE_SLICE_END)
            .count();
        assert_eq!(ends, 6);
    }

    #[test]
    fn gm_records_attach_to_job_tracks() {
        let records = vec![
            rec(0, "span", "job=4 seq=1 phase=submit site=anl", 1, NO_CAUSE),
            rec(S, "gm.attempt_failed", "gj4: gatekeeper unreachable", 2, 1),
            rec(2 * S, "fault.crash", "node=gk.anl", 3, NO_CAUSE),
        ];
        let (bytes, summary) = encode(&records);
        verify(&records, &bytes, &summary).unwrap();
        let packets = decode(&bytes).unwrap();
        let tracks: BTreeMap<u64, TrackDesc> = packets
            .iter()
            .filter_map(|p| p.descriptor.clone())
            .map(|d| (d.uuid, d))
            .collect();
        let events: Vec<&TrackEv> = packets
            .iter()
            .filter_map(|p| p.event.as_ref())
            .filter(|e| e.ty == TYPE_INSTANT)
            .collect();
        assert_eq!(tracks[&events[1].track].name, "gj4");
        assert_eq!(tracks[&events[2].track].name, "anl", "fault lands on site");
    }

    /// Golden bytes for a minimal trace: any change to field numbers, track
    /// uuid assignment, packet ordering, or the varint writer shows up here.
    /// Regenerate by printing the hex of `encode(&records).0`.
    #[test]
    fn golden_bytes_minimal_trace() {
        let records = vec![rec(5, "k", "d", 1, NO_CAUSE)];
        let (bytes, summary) = encode(&records);
        assert_eq!(
            summary.packets, 5,
            "3 roots + 1 component track + 1 instant"
        );
        let hex: String = bytes.iter().map(|b| format!("{b:02x}")).collect();
        assert_eq!(hex, GOLDEN, "wire encoding drifted");
    }

    /// Captured from a known-good run (see the test above for how to
    /// regenerate).
    const GOLDEN: &str = "0a0f40005001e20308080112046a6f62730a1040005001e2030908\
02120573697465730a1540005001e2030e0803120a636f6d706f6e656e74730a0f40005001e203\
0808806012016b28030a27400550015a21220b320164520664657461696c220918015205657665\
6e744803588060ba01016b";
}
