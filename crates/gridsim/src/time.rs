//! Virtual time.
//!
//! Simulation time is an unsigned count of microseconds since the start of
//! the run. Microsecond resolution comfortably covers everything the paper
//! cares about (network round trips measured in milliseconds, batch queue
//! waits measured in hours, campaigns measured in days) while `u64` gives
//! ~584,000 years of range — far beyond any experiment.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in virtual time (microseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

/// A span of virtual time (microseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Duration(pub u64);

/// The global commit-order key of a kernel event: `(time, seq)`.
///
/// `seq` is allocated from one world-wide counter at push time, so the
/// lexicographic order of these keys is total and identical for every
/// shard count: same-time events fire in global push order no matter
/// which shard's queue holds them. The shard coordinator N-way merges
/// queue heads by this key; using anything coarser (e.g. breaking ties
/// by shard index) would reorder same-time cross-shard events and break
/// the golden trace.
pub type EventKey = (SimTime, u64);

impl SimTime {
    /// The origin of simulation time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Microseconds since simulation start.
    #[inline]
    pub fn micros(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, saturating at zero.
    #[inline]
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Hours since simulation start (for CPU-hour style reporting).
    #[inline]
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3600.0
    }
}

impl Duration {
    /// The empty span.
    pub const ZERO: Duration = Duration(0);
    /// The largest representable span.
    pub const MAX: Duration = Duration(u64::MAX);

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Duration {
        Duration(us)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Duration {
        Duration(ms * 1_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Duration {
        Duration(s * 1_000_000)
    }

    /// Construct from whole minutes.
    #[inline]
    pub const fn from_mins(m: u64) -> Duration {
        Duration(m * 60_000_000)
    }

    /// Construct from whole hours.
    #[inline]
    pub const fn from_hours(h: u64) -> Duration {
        Duration(h * 3_600_000_000)
    }

    /// Construct from whole days.
    #[inline]
    pub const fn from_days(d: u64) -> Duration {
        Duration(d * 86_400_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest microsecond.
    ///
    /// Negative and non-finite inputs clamp to zero: durations cannot run
    /// backwards.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Duration {
        if !s.is_finite() || s <= 0.0 {
            return Duration::ZERO;
        }
        Duration((s * 1e6).round() as u64)
    }

    /// Microseconds in this span.
    #[inline]
    pub fn micros(self) -> u64 {
        self.0
    }

    /// Seconds in this span, as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Hours in this span, as a float.
    #[inline]
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3600.0
    }

    /// True if the span is empty.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }

    /// The smaller of two spans.
    #[inline]
    pub fn min(self, rhs: Duration) -> Duration {
        Duration(self.0.min(rhs.0))
    }

    /// The larger of two spans.
    #[inline]
    pub fn max(self, rhs: Duration) -> Duration {
        Duration(self.0.max(rhs.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: SimTime) -> Duration {
        self.since(rhs)
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0.saturating_mul(rhs))
    }
}

impl Mul<f64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: f64) -> Duration {
        Duration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs.max(1))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_micros(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_micros(self.0))
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_micros(self.0))
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_micros(self.0))
    }
}

/// Render microseconds in the most natural unit (`1.5ms`, `2h03m`, ...).
fn format_micros(us: u64) -> String {
    const MS: u64 = 1_000;
    const S: u64 = 1_000_000;
    const M: u64 = 60 * S;
    const H: u64 = 60 * M;
    const D: u64 = 24 * H;
    if us < MS {
        format!("{us}us")
    } else if us < S {
        format!("{:.3}ms", us as f64 / MS as f64)
    } else if us < M {
        format!("{:.3}s", us as f64 / S as f64)
    } else if us < H {
        format!("{}m{:02}s", us / M, (us % M) / S)
    } else if us < D {
        format!("{}h{:02}m", us / H, (us % H) / M)
    } else {
        format!("{}d{:02}h", us / D, (us % D) / H)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Duration::from_secs(1), Duration::from_millis(1000));
        assert_eq!(Duration::from_mins(2), Duration::from_secs(120));
        assert_eq!(Duration::from_hours(1), Duration::from_mins(60));
        assert_eq!(Duration::from_days(1), Duration::from_hours(24));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + Duration::from_secs(5);
        assert_eq!(t.micros(), 5_000_000);
        assert_eq!(t - SimTime::ZERO, Duration::from_secs(5));
        // Saturating: subtracting a later time yields zero, not underflow.
        assert_eq!(SimTime::ZERO - t, Duration::ZERO);
        assert_eq!(
            Duration::from_secs(3) - Duration::from_secs(5),
            Duration::ZERO
        );
    }

    #[test]
    fn float_round_trip() {
        let d = Duration::from_secs_f64(1.25);
        assert_eq!(d.micros(), 1_250_000);
        assert!((d.as_secs_f64() - 1.25).abs() < 1e-9);
        assert_eq!(Duration::from_secs_f64(-3.0), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(f64::NAN), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(f64::INFINITY), Duration::ZERO);
    }

    #[test]
    fn scaling() {
        assert_eq!(Duration::from_secs(2) * 3, Duration::from_secs(6));
        assert_eq!(Duration::from_secs(2) * 1.5, Duration::from_secs(3));
        assert_eq!(Duration::from_secs(6) / 3, Duration::from_secs(2));
        assert_eq!(Duration::from_secs(6) / 0, Duration::from_secs(6));
    }

    #[test]
    fn formatting() {
        assert_eq!(format!("{}", Duration::from_micros(12)), "12us");
        assert_eq!(format!("{}", Duration::from_millis(1)), "1.000ms");
        assert_eq!(format!("{}", Duration::from_secs(90)), "1m30s");
        assert_eq!(format!("{}", Duration::from_hours(25)), "1d01h");
    }

    #[test]
    fn hours_reporting() {
        let week = Duration::from_days(7);
        assert!((week.as_hours_f64() - 168.0).abs() < 1e-9);
    }
}
