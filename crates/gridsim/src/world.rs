//! The simulation kernel: owns the clock, the event queue, the nodes and
//! components, the network, stable storage, metrics and traces, and drives
//! everything to completion.

use crate::component::{Addr, CompId, Component, Ctx, Effect, Message, NodeId, ShardId};
use crate::event::{EventKind, NO_CAUSE};
use crate::fault::{FaultAction, FaultPlan};
use crate::metrics::Metrics;
use crate::network::flow::{AbortedFlow, BulkAborted};
use crate::network::{NetConfig, Network};
use crate::obs::Profiler;
use crate::rng::SimRng;
use crate::shard::{safe_horizon, Shard};
use crate::store::StableStore;
use crate::time::{Duration, EventKey, SimTime};
use crate::trace::TraceSink;
use std::collections::HashMap;

/// How often (in processed events) the coordinator samples the conservative
/// lookahead protocol's runnable-shard count into the `shard.runnable`
/// gauge. Sampling is bookkeeping only — it never affects execution order.
const RUNNABLE_SAMPLE_MASK: u64 = 4095;

/// The address used by [`World::post`] for externally injected messages.
/// Components may reply to it; such replies are silently dropped.
pub const EXTERNAL: Addr = Addr {
    node: NodeId(u32::MAX),
    comp: CompId(u32::MAX),
};

/// Kernel configuration.
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// Master RNG seed; fully determines a run given the same setup code.
    pub seed: u64,
    /// Network model parameters.
    pub net: NetConfig,
    /// Whether to collect trace events.
    pub trace: bool,
    /// Hard stop: no event at or after this instant is processed.
    pub max_time: Option<SimTime>,
    /// Hard stop: maximum number of events to process.
    pub max_events: Option<u64>,
    /// Recycle the ids of transiently killed components
    /// ([`Ctx::kill_transient`]) into later spawns, keeping the dense
    /// component table sized by the *active* set instead of the lifetime
    /// spawn count. Off by default because reuse renumbers components and
    /// therefore changes trace output; campaign-scale runs turn it on.
    pub reuse_comp_ids: bool,
    /// Number of kernel shards to partition nodes across (0 and 1 both mean
    /// a single shard). Shard 0 is the *home* shard; setup code assigns
    /// site nodes to other shards via [`World::add_node_on`]. Any shard
    /// count produces byte-identical traces and digests for the same seed —
    /// the coordinator commits events in the global `(time, seq)` order —
    /// so the shard count is a performance/partitioning knob, never a
    /// semantics knob.
    pub shards: usize,
}

impl Config {
    /// Set the RNG seed.
    pub fn seed(mut self, seed: u64) -> Config {
        self.seed = seed;
        self
    }

    /// Set the network configuration.
    pub fn net(mut self, net: NetConfig) -> Config {
        self.net = net;
        self
    }

    /// Enable trace collection.
    pub fn with_trace(mut self) -> Config {
        self.trace = true;
        self
    }

    /// Stop the run at this virtual instant.
    pub fn max_time(mut self, t: SimTime) -> Config {
        self.max_time = Some(t);
        self
    }

    /// Stop the run after this many events.
    pub fn max_events(mut self, n: u64) -> Config {
        self.max_events = Some(n);
        self
    }

    /// Enable transient component-id recycling (see
    /// [`Config::reuse_comp_ids`]).
    pub fn reuse_comp_ids(mut self) -> Config {
        self.reuse_comp_ids = true;
        self
    }

    /// Partition the world into `n` kernel shards (see [`Config::shards`]).
    pub fn shards(mut self, n: usize) -> Config {
        self.shards = n;
        self
    }
}

/// A boot-time view of a restarting node, used by boot hooks to re-create
/// components from stable storage.
pub struct BootCtx<'w> {
    node: NodeId,
    now: SimTime,
    store: &'w StableStore,
    spawns: Vec<(String, Box<dyn Component>)>,
}

impl<'w> BootCtx<'w> {
    /// The restarting node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Read-only stable storage, to decide what to recover.
    pub fn store(&self) -> &StableStore {
        self.store
    }

    /// Re-create a component on this node. Its `on_start` will run once the
    /// boot hook returns.
    pub fn add_component<C: Component>(&mut self, name: &str, comp: C) {
        self.spawns.push((name.to_string(), Box::new(comp)));
    }
}

/// A node's boot hook: re-creates components from stable storage on
/// restart.
type BootHook = Box<dyn FnMut(&mut BootCtx<'_>)>;

/// Per-node bookkeeping.
struct NodeEntry {
    name: String,
    up: bool,
    boot: Option<BootHook>,
    /// Components hosted here. A set (not a Vec) so the per-job
    /// spawn/kill churn of GRAM JobManagers stays O(log n) per kill
    /// instead of an O(n) scan; iteration order (by id) is deterministic.
    comps: std::collections::BTreeSet<CompId>,
}

/// Per-component bookkeeping.
struct CompEntry {
    addr: Addr,
    /// Interned: shared with profiler lookups, so the hot dispatch path
    /// never copies the name.
    name: std::rc::Rc<str>,
    comp: Option<Box<dyn Component>>,
    /// Incarnation number: bumped every time the id is reused after a
    /// crash/kill, so stale timers from a previous life never fire.
    epoch: u32,
}

/// The simulation world: a set of [`Shard`]s advanced by a deterministic
/// coordinator. See the crate docs for the model and [`crate::shard`] for
/// the partitioning/lookahead protocol.
pub struct World {
    now: SimTime,
    /// The shard executors. Every node is assigned to exactly one shard;
    /// each shard owns the calendar queue, FIFO link state and
    /// cancelled-timer set for its nodes. Never empty.
    shards: Vec<Shard>,
    /// Node → shard assignment (indexed by `NodeId`).
    node_shard: Vec<u32>,
    /// World-global event sequence counter. Allocating seq across shards
    /// from one stream is what makes the N-way merge reproduce the
    /// single-queue total order: cross-shard ties at the same timestamp
    /// break in push order, exactly as they always have.
    next_seq: u64,
    /// Cached head key `(time, seq)` of each shard's queue, `None` when the
    /// queue is empty. Invalidated (via `head_valid`) on push/pop.
    heads: Vec<Option<EventKey>>,
    head_valid: Vec<bool>,
    nodes: Vec<NodeEntry>,
    /// Component table indexed directly by `CompId` (ids are allocated
    /// sequentially, so the table is dense). Dead slots are `None`; the
    /// hot event-dispatch path is two array indexes, not hash lookups.
    comps: Vec<Option<CompEntry>>,
    names: HashMap<(NodeId, String), CompId>,
    network: Network,
    store: StableStore,
    rng: SimRng,
    metrics: Metrics,
    trace: TraceSink,
    next_comp: u32,
    next_timer: u64,
    /// Names of components that died (crash or kill), so a component
    /// re-created under the same name on the same node keeps its address —
    /// services restart on the same host:port.
    retired: HashMap<(NodeId, String), CompId>,
    /// Next epoch for a reused component id.
    epochs: HashMap<u32, u32>,
    /// Ids released by transient kills, with the epoch their next
    /// incarnation must start at. `Some` only when
    /// [`Config::reuse_comp_ids`] is on.
    free_comps: Option<Vec<(u32, u32)>>,
    halted: bool,
    events_processed: u64,
    max_time: Option<SimTime>,
    max_events: Option<u64>,
    /// Recycled effect buffers: dispatch is reentrant (spawn/kill effects
    /// dispatch nested handlers), so this is a small stack, not one slot.
    effects_pool: Vec<Vec<Effect>>,
    /// Kernel profiler; off by default (see [`World::enable_profiler`]).
    /// Wall-clock measurements never feed back into the simulation, so
    /// profiling does not perturb determinism.
    profiler: Option<Profiler>,
    /// Causal provenance of the event currently being processed: its own
    /// sequence number, its inherited nearest-observable-ancestor, and the
    /// trace sink's emitted count when its processing began. Every event
    /// scheduled while processing it gets `cause = cur_event_id` if a
    /// trace record was emitted since `trace_mark` (the event became
    /// observable), else `cur_inherited` — collapsing unobserved hops so
    /// the exported DAG stays connected without tracing every kernel
    /// event. With tracing off the emitted count never moves, the compare
    /// is always false, and the whole mechanism is three u64 stores per
    /// event.
    cur_event_id: u64,
    cur_inherited: u64,
    trace_mark: u64,
}

/// Stable names for kernel event kinds, used by the profiler's per-kind
/// breakdown.
fn event_kind_name(kind: &EventKind) -> &'static str {
    match kind {
        EventKind::Deliver { .. } => "deliver",
        EventKind::Timer { .. } => "timer",
        EventKind::NodeCrash { .. } => "node_crash",
        EventKind::NodeRestart { .. } => "node_restart",
        EventKind::PartitionStart { .. } => "partition_start",
        EventKind::PartitionEnd { .. } => "partition_end",
        EventKind::SetLossRate { .. } => "set_loss_rate",
        EventKind::FlowDone { .. } => "flow_done",
        EventKind::LinkDown { .. } => "link_down",
        EventKind::LinkUp { .. } => "link_up",
        EventKind::LinkBandwidth { .. } => "link_bandwidth",
    }
}

impl World {
    /// Build an empty world.
    pub fn new(config: Config) -> World {
        let shard_count = config.shards.max(1);
        World {
            now: SimTime::ZERO,
            shards: (0..shard_count).map(|_| Shard::new()).collect(),
            node_shard: Vec::new(),
            next_seq: 0,
            heads: vec![None; shard_count],
            head_valid: vec![true; shard_count],
            nodes: Vec::new(),
            comps: Vec::new(),
            names: HashMap::new(),
            network: Network::new(config.net),
            store: StableStore::with_shards(shard_count),
            rng: SimRng::new(config.seed),
            metrics: Metrics::new(),
            trace: TraceSink::new(config.trace),
            next_comp: 0,
            next_timer: 0,
            retired: HashMap::new(),
            epochs: HashMap::new(),
            free_comps: config.reuse_comp_ids.then(Vec::new),
            halted: false,
            events_processed: 0,
            max_time: config.max_time,
            max_events: config.max_events,
            effects_pool: Vec::new(),
            profiler: None,
            cur_event_id: NO_CAUSE,
            cur_inherited: NO_CAUSE,
            trace_mark: 0,
        }
    }

    /// The causal ancestor to stamp on an event scheduled right now: the
    /// current event if it proved observable (emitted a trace record),
    /// else whatever it inherited. See the field docs on `cur_event_id`.
    #[inline]
    fn cause_now(&self) -> u64 {
        if self.trace.emitted_count() > self.trace_mark {
            self.cur_event_id
        } else {
            self.cur_inherited
        }
    }

    // ----- construction ---------------------------------------------------

    /// Add a node (machine) named `name` on the home shard. Nodes start up.
    pub fn add_node(&mut self, name: &str) -> NodeId {
        self.add_node_on(name, ShardId::HOME)
    }

    /// Add a node on a specific shard. Out-of-range shard ids clamp to the
    /// last shard, so setup code can assign site groups round-robin without
    /// caring whether the world was built with 1 or N shards. Assignment
    /// happens at creation time: every event that fires on this node will
    /// be filed into (and executed by) this shard, and its stable-store
    /// keys live in the shard's partition.
    pub fn add_node_on(&mut self, name: &str, shard: ShardId) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let shard = (shard.0 as usize).min(self.shards.len() - 1) as u32;
        self.node_shard.push(shard);
        self.store.assign_shard(id, ShardId(shard));
        self.nodes.push(NodeEntry {
            name: name.to_string(),
            up: true,
            boot: None,
            comps: std::collections::BTreeSet::new(),
        });
        id
    }

    /// The shard a node is assigned to.
    pub fn shard_of(&self, node: NodeId) -> ShardId {
        ShardId(self.node_shard.get(node.0 as usize).copied().unwrap_or(0))
    }

    /// Number of kernel shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard executed-event totals, indexed by shard id.
    pub fn shard_events(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.events).collect()
    }

    /// The node → shard assignment table (indexed by `NodeId`; nodes beyond
    /// the end are on shard 0). Observability layers use this to split
    /// per-shard streams, e.g. the flight recorder's per-shard rings.
    pub fn node_shards(&self) -> &[u32] {
        &self.node_shard
    }

    /// The shard that will execute `kind`: the shard of the node the event
    /// fires on. Global network events (partitions, loss changes) run on
    /// the home shard — they mutate coordinator-shared state, which is safe
    /// because commit order is globally serialized.
    fn shard_of_kind(&self, kind: &EventKind) -> usize {
        let node = match kind {
            EventKind::Deliver { to, .. } => to.node,
            EventKind::Timer { on, .. } => on.node,
            EventKind::NodeCrash { node } | EventKind::NodeRestart { node } => *node,
            EventKind::PartitionStart { .. }
            | EventKind::PartitionEnd { .. }
            | EventKind::SetLossRate { .. }
            | EventKind::FlowDone { .. }
            | EventKind::LinkDown { .. }
            | EventKind::LinkUp { .. }
            | EventKind::LinkBandwidth { .. } => return 0,
        };
        self.node_shard.get(node.0 as usize).copied().unwrap_or(0) as usize
    }

    /// File an event into its shard's queue with a globally allocated
    /// sequence number — the cross-shard channel send. The destination
    /// shard's cached head is invalidated.
    fn push_event(&mut self, time: SimTime, kind: EventKind, cause: u64) {
        let s = self.shard_of_kind(&kind);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.shards[s].queue.push_with_seq(time, seq, kind, cause);
        self.head_valid[s] = false;
    }

    /// Install a boot hook: called on every restart of `node` to re-create
    /// its components from stable storage.
    pub fn set_boot(&mut self, node: NodeId, boot: impl FnMut(&mut BootCtx<'_>) + 'static) {
        self.nodes[node.0 as usize].boot = Some(Box::new(boot));
    }

    /// Add a component to a (live) node; its `on_start` runs immediately.
    pub fn add_component<C: Component>(&mut self, node: NodeId, name: &str, comp: C) -> Addr {
        assert!(
            self.nodes[node.0 as usize].up,
            "adding component to crashed node"
        );
        let addr = self.insert_component(node, name.to_string(), Box::new(comp));
        self.dispatch_start(addr);
        addr
    }

    /// Borrow the live entry for `id`, if any.
    fn comp(&self, id: CompId) -> Option<&CompEntry> {
        self.comps.get(id.0 as usize).and_then(|s| s.as_ref())
    }

    /// The (possibly empty) table slot for `id`, growing the table on
    /// first use of a fresh id.
    fn comp_slot(&mut self, id: CompId) -> &mut Option<CompEntry> {
        let idx = id.0 as usize;
        if self.comps.len() <= idx {
            self.comps.resize_with(idx + 1, || None);
        }
        &mut self.comps[idx]
    }

    fn insert_component(&mut self, node: NodeId, name: String, comp: Box<dyn Component>) -> Addr {
        // A component re-created under a name that previously existed on
        // this node takes over the old address (stable host:port).
        let id = match self.retired.remove(&(node, name.clone())) {
            Some(old) => old,
            None => {
                let id = CompId(self.next_comp);
                self.next_comp += 1;
                id
            }
        };
        let epoch = self.epochs.get(&id.0).copied().unwrap_or(0);
        let addr = Addr { node, comp: id };
        *self.comp_slot(id) = Some(CompEntry {
            addr,
            name: name.as_str().into(),
            comp: Some(comp),
            epoch,
        });
        self.nodes[node.0 as usize].comps.insert(id);
        self.names.insert((node, name), id);
        addr
    }

    /// Mark a component id dead: retire its name for address reuse and bump
    /// the epoch so its outstanding timers die with it.
    fn retire(&mut self, node: NodeId, name: String, id: CompId) {
        *self.epochs.entry(id.0).or_insert(0) += 1;
        self.retired.insert((node, name), id);
    }

    /// Find a component by `(node, name)`.
    pub fn lookup(&self, node: NodeId, name: &str) -> Option<Addr> {
        self.names
            .get(&(node, name.to_string()))
            .map(|&comp| Addr { node, comp })
    }

    /// The name a node was registered with.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.nodes[node.0 as usize].name
    }

    /// Whether a node is currently up.
    pub fn node_up(&self, node: NodeId) -> bool {
        self.nodes[node.0 as usize].up
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    // ----- external stimulus ----------------------------------------------

    /// Inject a message from outside the simulation (delivered at the
    /// current instant, reliable). The receiver sees [`EXTERNAL`] as sender.
    pub fn post<M: Message>(&mut self, to: Addr, msg: M) {
        self.push_event(
            self.now,
            EventKind::Deliver {
                from: EXTERNAL,
                to,
                msg: Box::new(msg),
            },
            NO_CAUSE,
        );
    }

    /// Schedule the actions of a fault plan.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        for (t, action) in plan.actions() {
            let kind = match action.clone() {
                FaultAction::Crash(node) => EventKind::NodeCrash { node },
                FaultAction::Restart(node) => EventKind::NodeRestart { node },
                FaultAction::Partition(a, b) => EventKind::PartitionStart {
                    group_a: a,
                    group_b: b,
                },
                FaultAction::Heal(a, b) => EventKind::PartitionEnd {
                    group_a: a,
                    group_b: b,
                },
                FaultAction::SetLoss(rate) => EventKind::SetLossRate {
                    rate: rate.unwrap_or(f64::NAN),
                },
                FaultAction::LinkDown(link) => EventKind::LinkDown { link },
                FaultAction::LinkUp(link) => EventKind::LinkUp { link },
                FaultAction::LinkBandwidth(link, capacity) => EventKind::LinkBandwidth {
                    link,
                    capacity: capacity.unwrap_or(f64::NAN),
                },
            };
            // Fault injections are roots of the happens-before DAG.
            self.push_event(*t, kind, NO_CAUSE);
        }
    }

    /// Crash a node right now (see [`Ctx::crash_node`] for semantics).
    pub fn crash_node_now(&mut self, node: NodeId) {
        self.do_crash(node);
    }

    /// Restart a crashed node right now.
    pub fn restart_node_now(&mut self, node: NodeId) {
        self.do_restart(node);
    }

    /// Abruptly kill a single component (like `kill -9` on one daemon):
    /// no `on_stop` runs, its timers die, in-flight messages to it drop.
    /// Fault-injection only; see [`crate::Ctx::kill`] for graceful removal.
    pub fn kill_component_now(&mut self, addr: Addr) {
        if self.comp(addr.comp).is_some_and(|c| c.addr == addr) {
            self.remove_component(addr);
            self.metrics.incr("comp.killed", 1);
        }
    }

    // ----- accessors -------------------------------------------------------

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Pending events across every shard's queue (telemetry heartbeats
    /// sample this as a backpressure signal).
    pub fn queue_len(&self) -> usize {
        self.shards.iter().map(|s| s.queue.len()).sum()
    }

    /// The metrics sink.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable metrics (for experiment-level bookkeeping).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Turn on the kernel profiler (resets any prior profile). Cheap enough
    /// to leave on for long campaigns.
    pub fn enable_profiler(&mut self) {
        self.profiler = Some(Profiler::new());
    }

    /// The profiler, if [`World::enable_profiler`] was called.
    pub fn profiler(&self) -> Option<&Profiler> {
        self.profiler.as_ref()
    }

    /// The trace sink.
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// Mutable trace sink.
    pub fn trace_mut(&mut self) -> &mut TraceSink {
        &mut self.trace
    }

    /// Stable storage.
    pub fn store(&self) -> &StableStore {
        &self.store
    }

    /// Mutable stable storage (to pre-seed files, inspect state in tests).
    pub fn store_mut(&mut self) -> &mut StableStore {
        &mut self.store
    }

    /// The network model (to install link overrides).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// The world RNG (e.g. to fork streams for setup code).
    pub fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    // ----- running ---------------------------------------------------------

    /// Refresh the cached head keys of any shard whose queue changed.
    fn refresh_heads(&mut self) {
        for s in 0..self.shards.len() {
            if !self.head_valid[s] {
                self.heads[s] = self.shards[s].queue.peek_key();
                self.head_valid[s] = true;
            }
        }
    }

    /// The shard holding the globally earliest `(time, seq)` event — the
    /// N-way merge step of the coordinator. `None` when every queue is
    /// empty.
    fn min_shard(&mut self) -> Option<usize> {
        self.refresh_heads();
        let mut best: Option<(EventKey, usize)> = None;
        for (s, head) in self.heads.iter().enumerate() {
            if let Some(key) = *head {
                match best {
                    Some((bk, _)) if bk <= key => {}
                    _ => best = Some((key, s)),
                }
            }
        }
        best.map(|(_, s)| s)
    }

    /// Timestamp of the globally earliest pending event, if any.
    fn next_event_time(&mut self) -> Option<SimTime> {
        let s = self.min_shard()?;
        self.heads[s].map(|(t, _)| t)
    }

    /// How many shards could execute their next event *concurrently* under
    /// the conservative lookahead protocol: shards whose head lies at or
    /// before their safe horizon (minimum over peer shards of peer clock +
    /// WAN lookahead). A measure of the parallelism the current partition
    /// exposes; always 1 for a busy single-shard world.
    pub fn runnable_shards(&mut self) -> usize {
        let lookahead = self.network.lookahead();
        self.refresh_heads();
        let clocks: Vec<SimTime> = self.shards.iter().map(|s| s.clock).collect();
        self.heads
            .iter()
            .enumerate()
            .filter(|(s, head)| {
                head.is_some_and(|(t, _)| t <= safe_horizon(&clocks, *s, lookahead))
            })
            .count()
    }

    /// Process a single event. Returns `false` when nothing was processed
    /// (queue empty, halted, or a stop condition was hit).
    pub fn step(&mut self) -> bool {
        if self.halted {
            return false;
        }
        if let Some(max) = self.max_events {
            if self.events_processed >= max {
                return false;
            }
        }
        // Merge-pop the globally earliest event, discarding cancelled
        // timers without advancing the clock, so a cancelled far-future
        // timeout doesn't stretch the run.
        let (shard, event) = loop {
            let Some(s) = self.min_shard() else {
                return false;
            };
            let event = self.shards[s].queue.pop().expect("cached head present");
            self.head_valid[s] = false;
            if let EventKind::Timer { id, .. } = &event.kind {
                let sh = &mut self.shards[s];
                if !sh.cancelled.is_empty() && sh.cancelled.remove(id) {
                    continue;
                }
            }
            break (s, event);
        };
        if let Some(max) = self.max_time {
            if event.time > max {
                self.now = max;
                self.halted = true;
                return false;
            }
        }
        debug_assert!(event.time >= self.now, "time went backwards");
        self.now = event.time;
        self.events_processed += 1;
        {
            let sh = &mut self.shards[shard];
            sh.clock = event.time;
            sh.events += 1;
        }
        self.cur_event_id = event.seq;
        self.cur_inherited = event.cause;
        self.trace_mark = self.trace.emitted_count();
        if let Some(p) = &mut self.profiler {
            let depth = self.shards.iter().map(|s| s.queue.len()).sum();
            p.note_event(event_kind_name(&event.kind), event.time, depth);
        }
        self.process(event.kind);
        if self.shards.len() > 1 && self.events_processed & RUNNABLE_SAMPLE_MASK == 0 {
            let runnable = self.runnable_shards() as f64;
            let now = self.now;
            self.metrics.gauge("shard.runnable", now, runnable);
        }
        true
    }

    /// Run until no events remain (or a stop condition fires).
    pub fn run_until_quiescent(&mut self) {
        while self.step() {}
    }

    /// Run all events up to and including `t`, then set the clock to `t`.
    pub fn run_until(&mut self, t: SimTime) {
        while !self.halted {
            match self.next_event_time() {
                Some(et) if et <= t => {
                    if !self.step() {
                        break;
                    }
                }
                _ => break,
            }
        }
        if self.now < t && !self.halted {
            self.now = t;
        }
    }

    /// Run for a span of virtual time from now.
    pub fn run_for(&mut self, d: Duration) {
        let target = self.now + d;
        self.run_until(target);
    }

    /// True once `halt` was requested or a stop condition fired.
    pub fn halted(&self) -> bool {
        self.halted
    }

    // ----- internals --------------------------------------------------------

    fn process(&mut self, kind: EventKind) {
        match kind {
            EventKind::Deliver { from, to, msg } => {
                if !self.nodes.get(to.node.0 as usize).is_some_and(|n| n.up) {
                    self.metrics.incr("net.dropped_dead_node", 1);
                    return;
                }
                let alive = self
                    .comp(to.comp)
                    .is_some_and(|c| c.comp.is_some() && c.addr == to);
                if !alive {
                    self.metrics.incr("net.dropped_dead_comp", 1);
                    return;
                }
                self.dispatch(to, |comp, ctx| comp.on_message(ctx, from, msg));
            }
            EventKind::Timer { on, id, tag, epoch } => {
                let s = self
                    .node_shard
                    .get(on.node.0 as usize)
                    .copied()
                    .unwrap_or(0) as usize;
                let sh = &mut self.shards[s];
                if !sh.cancelled.is_empty() && sh.cancelled.remove(&id) {
                    return;
                }
                if !self.nodes.get(on.node.0 as usize).is_some_and(|n| n.up) {
                    return;
                }
                let alive = self
                    .comp(on.comp)
                    .is_some_and(|c| c.comp.is_some() && c.addr == on && c.epoch == epoch);
                if !alive {
                    return;
                }
                self.dispatch(on, |comp, ctx| comp.on_timer(ctx, id, tag));
            }
            EventKind::NodeCrash { node } => {
                // Emit before acting, so everything the fault triggers
                // (boot chains, retries) links back to this record.
                self.trace_fault("fault.crash", |w| format!("node={}", w.node_name(node)));
                self.do_crash(node);
                if self.network.flow_enabled() {
                    let (aborted, resched) = self.network.flow_abort_node(node, self.now);
                    self.finish_flow_aborts(aborted, resched);
                }
            }
            EventKind::NodeRestart { node } => {
                self.trace_fault("fault.restart", |w| format!("node={}", w.node_name(node)));
                self.do_restart(node);
            }
            EventKind::PartitionStart { group_a, group_b } => {
                self.trace_fault("fault.partition", |w| {
                    format!(
                        "a={} b={}",
                        w.group_names(&group_a),
                        w.group_names(&group_b)
                    )
                });
                self.network.partition(&group_a, &group_b);
                self.metrics.incr("net.partitions", 1);
                if self.network.flow_enabled() {
                    let (aborted, resched) = self.network.flow_abort_unreachable(self.now);
                    self.finish_flow_aborts(aborted, resched);
                }
            }
            EventKind::PartitionEnd { group_a, group_b } => {
                self.trace_fault("fault.heal", |w| {
                    format!(
                        "a={} b={}",
                        w.group_names(&group_a),
                        w.group_names(&group_b)
                    )
                });
                self.network.heal(&group_a, &group_b);
            }
            EventKind::SetLossRate { rate } => {
                self.trace_fault("fault.loss", |_| format!("rate={rate}"));
                self.network
                    .set_global_loss(if rate.is_nan() { None } else { Some(rate) });
            }
            EventKind::FlowDone { flow } => {
                // Stale deadlines (rescheduled flows) return None: ignore.
                if let Some((from, to, msg, resched)) = self.network.flow_complete(flow, self.now) {
                    self.metrics.incr("net.flows_done", 1);
                    let cause = self.cause_now();
                    self.push_event(self.now, EventKind::Deliver { from, to, msg }, cause);
                    self.push_flow_deadlines(resched, cause);
                }
            }
            EventKind::LinkDown { link } => {
                self.trace_fault("fault.link_down", |_| format!("link={link}"));
                if let Some((aborted, resched)) = self.network.flow_link_down(&link, self.now) {
                    self.metrics.incr("net.link_downs", 1);
                    self.finish_flow_aborts(aborted, resched);
                }
            }
            EventKind::LinkUp { link } => {
                self.trace_fault("fault.link_up", |_| format!("link={link}"));
                if let Some(resched) = self.network.flow_link_up(&link, self.now) {
                    let cause = self.cause_now();
                    self.push_flow_deadlines(resched, cause);
                }
            }
            EventKind::LinkBandwidth { link, capacity } => {
                self.trace_fault("fault.link_bandwidth", |_| {
                    format!("link={link} capacity={capacity}")
                });
                let cap = if capacity.is_nan() {
                    None
                } else {
                    Some(capacity)
                };
                if let Some(resched) = self.network.flow_link_bandwidth(&link, cap, self.now) {
                    self.metrics.incr("net.link_rescales", 1);
                    let cause = self.cause_now();
                    self.push_flow_deadlines(resched, cause);
                }
            }
        }
    }

    /// Schedule a `FlowDone` check for every flow whose completion
    /// deadline just changed.
    fn push_flow_deadlines(&mut self, resched: Vec<(u64, SimTime)>, cause: u64) {
        for (flow, at) in resched {
            self.push_event(at, EventKind::FlowDone { flow }, cause);
        }
    }

    /// Deliver a [`BulkAborted`] notice to the sender of every aborted
    /// flow (at the current instant — the sender-side stack observes the
    /// break immediately, like a TCP reset) and install the survivors'
    /// updated completion schedule.
    fn finish_flow_aborts(&mut self, aborted: Vec<AbortedFlow>, resched: Vec<(u64, SimTime)>) {
        let cause = self.cause_now();
        for a in aborted {
            self.metrics.incr("net.flows_aborted", 1);
            self.push_event(
                self.now,
                EventKind::Deliver {
                    from: a.to,
                    to: a.from,
                    msg: Box::new(BulkAborted {
                        to: a.to,
                        bytes: a.bytes,
                        msg: a.msg,
                    }),
                },
                cause,
            );
        }
        self.push_flow_deadlines(resched, cause);
    }

    /// Record a kernel-injected fault in the trace (roots of the causal
    /// DAG, attributed to [`EXTERNAL`]). The detail closure runs only when
    /// the sink is active.
    fn trace_fault(&mut self, kind: &'static str, detail: impl FnOnce(&World) -> String) {
        if !self.trace.is_active() {
            return;
        }
        let d = detail(self);
        let (now, id, cause) = (self.now, self.cur_event_id, self.cur_inherited);
        self.trace.emit(now, EXTERNAL, kind, d, id, cause);
    }

    /// Comma-joined node names for a partition group.
    fn group_names(&self, group: &[NodeId]) -> String {
        let names: Vec<&str> = group.iter().map(|&n| self.node_name(n)).collect();
        names.join(",")
    }

    /// Take the component out, run `f` with a fresh context, put it back,
    /// then apply the buffered effects.
    fn dispatch<F>(&mut self, addr: Addr, f: F)
    where
        F: FnOnce(&mut dyn Component, &mut Ctx<'_>),
    {
        let Some(entry) = self
            .comps
            .get_mut(addr.comp.0 as usize)
            .and_then(|s| s.as_mut())
        else {
            return;
        };
        let Some(mut comp) = entry.comp.take() else {
            return;
        };
        let prof_name = self.profiler.as_ref().map(|_| entry.name.clone());
        let mut ctx = Ctx {
            now: self.now,
            self_addr: addr,
            effects: self.effects_pool.pop().unwrap_or_default(),
            store: &mut self.store,
            rng: &mut self.rng,
            metrics: &mut self.metrics,
            trace: &mut self.trace,
            next_timer: &mut self.next_timer,
            next_comp: &mut self.next_comp,
            retired: &self.retired,
            free_comps: self.free_comps.as_mut(),
            event_id: self.cur_event_id,
            event_cause: self.cur_inherited,
            shard: ShardId(
                self.node_shard
                    .get(addr.node.0 as usize)
                    .copied()
                    .unwrap_or(0),
            ),
        };
        let handler_start = prof_name.as_ref().map(|_| std::time::Instant::now());
        f(comp.as_mut(), &mut ctx);
        let effects = ctx.effects;
        if let (Some(p), Some(name), Some(t0)) = (self.profiler.as_mut(), prof_name, handler_start)
        {
            p.note_handler(&name, t0.elapsed());
        }
        if let Some(entry) = self
            .comps
            .get_mut(addr.comp.0 as usize)
            .and_then(|s| s.as_mut())
        {
            // The slot can only still be empty (crash removes the entry
            // entirely, and effects haven't been applied yet).
            entry.comp = Some(comp);
        }
        self.apply_effects(addr, effects);
    }

    fn dispatch_start(&mut self, addr: Addr) {
        self.dispatch(addr, |comp, ctx| comp.on_start(ctx));
    }

    fn apply_effects(&mut self, from: Addr, mut effects: Vec<Effect>) {
        for effect in effects.drain(..) {
            match effect {
                Effect::Send { to, msg } => {
                    self.metrics.incr("net.sent", 1);
                    match self.network.route(&mut self.rng, from.node, to.node) {
                        Some(latency) => {
                            // FIFO per directed link: never deliver before a
                            // message sent earlier on the same link. Link
                            // state lives on the *sender's* shard (the one
                            // executing this effect).
                            let mut at = self.now + latency;
                            let s = self
                                .node_shard
                                .get(from.node.0 as usize)
                                .copied()
                                .unwrap_or(0);
                            let slot = self.shards[s as usize]
                                .fifo
                                .entry((from.node, to.node))
                                .or_insert(at);
                            if *slot > at {
                                at = *slot;
                            }
                            *slot = at;
                            let cause = self.cause_now();
                            self.push_event(at, EventKind::Deliver { from, to, msg }, cause);
                        }
                        None => {
                            self.metrics.incr("net.lost", 1);
                        }
                    }
                }
                Effect::SendBulk { to, bytes, msg } => {
                    self.metrics.incr("net.bulk_transfers", 1);
                    self.metrics.incr("net.bulk_bytes", bytes);
                    if self.network.flow_enabled() && from.node != to.node {
                        // Flow mode: the transfer contends with every other
                        // flow on its route; completion is a rescheduled
                        // kernel event, not a duration fixed at start.
                        let now = self.now;
                        match self
                            .network
                            .flow_start(&mut self.rng, from, to, bytes, msg, now)
                        {
                            Some(resched) => {
                                self.metrics.incr("net.flows_started", 1);
                                let cause = self.cause_now();
                                self.push_flow_deadlines(resched, cause);
                            }
                            None => {
                                self.metrics.incr("net.lost", 1);
                            }
                        }
                        continue;
                    }
                    match self
                        .network
                        .transfer_duration(&mut self.rng, from.node, to.node, bytes)
                    {
                        Some(delay) => {
                            let cause = self.cause_now();
                            self.push_event(
                                self.now + delay,
                                EventKind::Deliver { from, to, msg },
                                cause,
                            );
                        }
                        None => {
                            self.metrics.incr("net.lost", 1);
                        }
                    }
                }
                Effect::SendLocal { to, msg } => {
                    let latency = self
                        .network
                        .route(&mut self.rng, from.node, from.node)
                        .expect("loopback never drops");
                    let cause = self.cause_now();
                    self.push_event(
                        self.now + latency,
                        EventKind::Deliver { from, to, msg },
                        cause,
                    );
                }
                Effect::SetTimer { id, after, tag } => {
                    let epoch = self.comp(from.comp).map_or(0, |c| c.epoch);
                    let cause = self.cause_now();
                    self.push_event(
                        self.now + after,
                        EventKind::Timer {
                            on: from,
                            id,
                            tag,
                            epoch,
                        },
                        cause,
                    );
                }
                Effect::CancelTimer { id } => {
                    // Timers fire on the component that set them, so the
                    // cancellation lands in the issuing shard's set.
                    let s = self
                        .node_shard
                        .get(from.node.0 as usize)
                        .copied()
                        .unwrap_or(0);
                    self.shards[s as usize].cancelled.insert(id);
                }
                Effect::Spawn {
                    node,
                    name,
                    comp,
                    id,
                    epoch,
                } => {
                    if !self.nodes[node.0 as usize].up {
                        // Spawning onto a dead node fails silently, like
                        // forking on a crashed machine.
                        continue;
                    }
                    // The id may be a retired one being reused.
                    self.retired.remove(&(node, name.clone()));
                    let addr = Addr { node, comp: id };
                    // Recycled ids carry their epoch with them; retired
                    // (same-name) reuse reads the epochs map as before.
                    let epoch =
                        epoch.unwrap_or_else(|| self.epochs.get(&id.0).copied().unwrap_or(0));
                    *self.comp_slot(id) = Some(CompEntry {
                        addr,
                        name: name.as_str().into(),
                        comp: Some(comp),
                        epoch,
                    });
                    self.nodes[node.0 as usize].comps.insert(id);
                    self.names.insert((node, name), id);
                    self.dispatch_start(addr);
                }
                Effect::Kill { addr } => {
                    self.dispatch(addr, |comp, ctx| comp.on_stop(ctx));
                    self.remove_component(addr);
                }
                Effect::KillTransient { addr } => {
                    self.dispatch(addr, |comp, ctx| comp.on_stop(ctx));
                    self.remove_component_transient(addr);
                }
                Effect::CrashNode { node } => self.do_crash(node),
                Effect::RestartNode { node, after } => {
                    let cause = self.cause_now();
                    self.push_event(self.now + after, EventKind::NodeRestart { node }, cause);
                }
                Effect::Halt => {
                    self.halted = true;
                }
            }
        }
        if self.effects_pool.len() < 8 {
            self.effects_pool.push(effects);
        }
    }

    fn remove_component(&mut self, addr: Addr) {
        if let Some(entry) = self
            .comps
            .get_mut(addr.comp.0 as usize)
            .and_then(|s| s.take())
        {
            let name = entry.name.to_string();
            self.names.remove(&(addr.node, name.clone()));
            self.nodes[addr.node.0 as usize].comps.remove(&addr.comp);
            self.retire(addr.node, name, addr.comp);
        }
    }

    /// Remove a component without retiring its name: no `retired` or
    /// `epochs` entry survives it, so per-job transients (JobManagers) cost
    /// zero residual kernel memory. Stale timers and deliveries still drop
    /// because the slot is empty and the id is never reused.
    fn remove_component_transient(&mut self, addr: Addr) {
        if let Some(entry) = self
            .comps
            .get_mut(addr.comp.0 as usize)
            .and_then(|s| s.take())
        {
            self.names.remove(&(addr.node, entry.name.to_string()));
            self.nodes[addr.node.0 as usize].comps.remove(&addr.comp);
            if let Some(free) = &mut self.free_comps {
                // Bump the epoch so the dead incarnation's timers cannot
                // fire into whatever reuses the id.
                free.push((addr.comp.0, entry.epoch + 1));
            }
        }
    }

    fn do_crash(&mut self, node: NodeId) {
        let entry = &mut self.nodes[node.0 as usize];
        if !entry.up {
            return;
        }
        entry.up = false;
        let comps = std::mem::take(&mut entry.comps);
        for id in comps {
            if let Some(e) = self.comps.get_mut(id.0 as usize).and_then(|s| s.take()) {
                let name = e.name.to_string();
                self.names.remove(&(node, name.clone()));
                self.retire(node, name, id);
            }
        }
        self.metrics.incr("node.crashes", 1);
    }

    fn do_restart(&mut self, node: NodeId) {
        let entry = &mut self.nodes[node.0 as usize];
        if entry.up {
            return;
        }
        entry.up = true;
        self.metrics.incr("node.restarts", 1);
        // Run the boot hook, collecting spawns, then install them.
        let Some(mut boot) = self.nodes[node.0 as usize].boot.take() else {
            return;
        };
        let mut bctx = BootCtx {
            node,
            now: self.now,
            store: &self.store,
            spawns: Vec::new(),
        };
        boot(&mut bctx);
        let spawns = bctx.spawns;
        self.nodes[node.0 as usize].boot = Some(boot);
        for (name, comp) in spawns {
            let addr = self.insert_component(node, name, comp);
            self.dispatch_start(addr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{AnyMsg, TimerId};

    /// A component that counts messages and echoes them back `echoes` times.
    struct Echo {
        received: u64,
        echoes: u32,
        record_key: Option<String>,
    }

    #[derive(Debug)]
    struct Hit(u32);

    impl Component for Echo {
        fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Addr, msg: AnyMsg) {
            let Hit(n) = *msg.downcast::<Hit>().unwrap();
            self.received += 1;
            if let Some(key) = &self.record_key {
                let node = ctx.node();
                let count = self.received;
                ctx.store().put(node, key, &count);
            }
            if n < self.echoes && from != EXTERNAL {
                ctx.send(from, Hit(n + 1));
            }
        }
    }

    #[test]
    fn message_round_trips() {
        let mut w = World::new(Config::default().seed(1));
        let na = w.add_node("a");
        let nb = w.add_node("b");
        let a = w.add_component(
            na,
            "echo",
            Echo {
                received: 0,
                echoes: 4,
                record_key: None,
            },
        );
        let b = w.add_component(
            nb,
            "echo",
            Echo {
                received: 0,
                echoes: 4,
                record_key: None,
            },
        );
        // Prime: have a send to b by posting to a? post is EXTERNAL; instead
        // post directly to b from a's address is not possible — start the
        // exchange with a spawned kicker.
        struct Kicker(Addr);
        impl Component for Kicker {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.send(self.0, Hit(0));
            }
        }
        w.add_component(na, "kick", Kicker(b));
        w.run_until_quiescent();
        assert!(w.now() > SimTime::ZERO);
        let _ = (a, b);
    }

    #[test]
    fn external_post_is_delivered() {
        let mut w = World::new(Config::default().seed(1));
        let n = w.add_node("n");
        let addr = w.add_component(
            n,
            "echo",
            Echo {
                received: 0,
                echoes: 0,
                record_key: Some("hits".into()),
            },
        );
        w.post(addr, Hit(0));
        w.post(addr, Hit(0));
        w.run_until_quiescent();
        assert_eq!(w.store().get::<u64>(n, "hits"), Some(2));
    }

    #[test]
    fn crash_drops_components_and_store_survives() {
        let mut w = World::new(Config::default().seed(1));
        let n = w.add_node("n");
        let addr = w.add_component(
            n,
            "echo",
            Echo {
                received: 0,
                echoes: 0,
                record_key: Some("hits".into()),
            },
        );
        w.post(addr, Hit(0));
        w.run_until_quiescent();
        w.crash_node_now(n);
        assert!(!w.node_up(n));
        assert!(w.lookup(n, "echo").is_none());
        // Store survived the crash.
        assert_eq!(w.store().get::<u64>(n, "hits"), Some(1));
        // Message to the dead component is dropped, not an error.
        w.post(addr, Hit(0));
        w.run_until_quiescent();
        assert_eq!(w.metrics().counter("net.dropped_dead_node"), 1);
    }

    #[test]
    fn boot_hook_recovers_from_store() {
        let mut w = World::new(Config::default().seed(1));
        let n = w.add_node("n");
        let addr = w.add_component(
            n,
            "echo",
            Echo {
                received: 0,
                echoes: 0,
                record_key: Some("hits".into()),
            },
        );
        w.set_boot(n, move |b| {
            let prior: u64 = b.store().get(b.node(), "hits").unwrap_or(0);
            b.add_component(
                "echo",
                Echo {
                    received: prior,
                    echoes: 0,
                    record_key: Some("hits".into()),
                },
            );
        });
        w.post(addr, Hit(0));
        w.post(addr, Hit(0));
        w.post(addr, Hit(0));
        w.run_until_quiescent();
        w.crash_node_now(n);
        w.restart_node_now(n);
        let revived = w.lookup(n, "echo").expect("component rebooted");
        assert_eq!(revived, addr, "a restarted service keeps its address");
        w.post(revived, Hit(0));
        w.run_until_quiescent();
        assert_eq!(w.store().get::<u64>(n, "hits"), Some(4));
    }

    #[test]
    fn timers_fire_and_cancel() {
        struct TimerUser {
            fired: Vec<u64>,
        }
        impl Component for TimerUser {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(Duration::from_secs(1), 1);
                let cancel_me = ctx.set_timer(Duration::from_secs(2), 2);
                ctx.set_timer(Duration::from_secs(3), 3);
                ctx.cancel_timer(cancel_me);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, tag: u64) {
                self.fired.push(tag);
                let node = ctx.node();
                let fired = self.fired.clone();
                ctx.store().put(node, "fired", &fired);
            }
        }
        let mut w = World::new(Config::default().seed(1));
        let n = w.add_node("n");
        w.add_component(n, "t", TimerUser { fired: vec![] });
        w.run_until_quiescent();
        assert_eq!(w.store().get::<Vec<u64>>(n, "fired"), Some(vec![1, 3]));
        assert_eq!(w.now(), SimTime::ZERO + Duration::from_secs(3));
    }

    #[test]
    fn run_until_advances_clock_without_events() {
        let mut w = World::new(Config::default().seed(1));
        w.run_until(SimTime::ZERO + Duration::from_secs(10));
        assert_eq!(w.now(), SimTime::ZERO + Duration::from_secs(10));
    }

    #[test]
    fn max_time_stops_the_run() {
        struct Ticker;
        impl Component for Ticker {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(Duration::from_secs(1), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, _tag: u64) {
                ctx.set_timer(Duration::from_secs(1), 0);
            }
        }
        let mut w = World::new(
            Config::default()
                .seed(1)
                .max_time(SimTime::ZERO + Duration::from_secs(5)),
        );
        let n = w.add_node("n");
        w.add_component(n, "tick", Ticker);
        w.run_until_quiescent();
        assert!(w.halted());
        assert_eq!(w.now(), SimTime::ZERO + Duration::from_secs(5));
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run(seed: u64) -> Vec<String> {
            struct Noisy;
            impl Component for Noisy {
                fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                    let jitter = ctx.rng().range_u64(1, 100);
                    ctx.set_timer(Duration::from_millis(jitter), 0);
                }
                fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, tag: u64) {
                    let r = ctx.rng().range_u64(0, 1000);
                    ctx.trace("tick", format!("tag={tag} r={r}"));
                    if tag < 20 {
                        let jitter = ctx.rng().range_u64(1, 100);
                        ctx.set_timer(Duration::from_millis(jitter), tag + 1);
                    }
                }
            }
            let mut w = World::new(Config::default().seed(seed).with_trace());
            let n = w.add_node("n");
            w.add_component(n, "noisy", Noisy);
            w.run_until_quiescent();
            w.trace().events().iter().map(|e| format!("{e}")).collect()
        }
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn spawn_and_kill() {
        struct Parent {
            child: Option<Addr>,
        }
        struct Child;
        impl Component for Child {
            fn on_stop(&mut self, ctx: &mut Ctx<'_>) {
                let node = ctx.node();
                ctx.store().put(node, "child_stopped", &true);
            }
        }
        #[derive(Debug)]
        struct SpawnCmd;
        #[derive(Debug)]
        struct KillCmd;
        impl Component for Parent {
            fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: Addr, msg: AnyMsg) {
                if msg.is::<SpawnCmd>() {
                    self.child = Some(ctx.spawn(ctx.node(), "child", Child));
                } else if msg.is::<KillCmd>() {
                    ctx.kill(self.child.take().unwrap());
                }
            }
        }
        let mut w = World::new(Config::default().seed(1));
        let n = w.add_node("n");
        let p = w.add_component(n, "parent", Parent { child: None });
        w.post(p, SpawnCmd);
        w.run_until_quiescent();
        assert!(w.lookup(n, "child").is_some());
        w.post(p, KillCmd);
        w.run_until_quiescent();
        assert!(w.lookup(n, "child").is_none());
        assert_eq!(w.store().get::<bool>(n, "child_stopped"), Some(true));
    }

    #[test]
    fn kill_transient_leaves_no_residue_and_recycles_ids() {
        // A short-lived worker that sets a far-future timer, then is
        // transiently killed; with id recycling on, the next worker reuses
        // the id and the dead worker's timer must not fire into it.
        struct Worker;
        impl Component for Worker {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(Duration::from_hours(1), 99);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, _tag: u64) {
                let node = ctx.node();
                let fired: u64 = ctx.store().get(node, "fired_count").unwrap_or(0);
                ctx.store().put(node, "fired_count", &(fired + 1));
            }
        }
        #[derive(Debug)]
        struct Cycle(u32);
        struct Boss {
            child: Option<Addr>,
            ids: Vec<u32>,
        }
        impl Component for Boss {
            fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: Addr, msg: AnyMsg) {
                let Cycle(n) = *msg.downcast::<Cycle>().unwrap();
                if let Some(old) = self.child.take() {
                    ctx.kill_transient(old);
                }
                let addr = ctx.spawn(ctx.node(), &format!("w{n}"), Worker);
                self.ids.push(addr.comp.0);
                self.child = Some(addr);
                let node = ctx.node();
                let ids = self.ids.clone();
                ctx.store().put(node, "ids", &ids);
            }
        }
        let mut w = World::new(Config::default().seed(1).reuse_comp_ids());
        let n = w.add_node("n");
        let boss = w.add_component(
            n,
            "boss",
            Boss {
                child: None,
                ids: vec![],
            },
        );
        for i in 0..5u32 {
            w.post(boss, Cycle(i));
            w.run_until(w.now() + Duration::from_secs(1));
        }
        w.run_until_quiescent();
        let ids: Vec<u32> = w.store().get(n, "ids").unwrap();
        assert_eq!(ids.len(), 5);
        // Ids recycle instead of growing without bound: a kill's id is
        // free by the *next* cycle, so five kill/spawn rounds touch at most
        // two distinct ids (alternating), not five.
        let distinct: std::collections::HashSet<_> = ids.iter().collect();
        assert!(distinct.len() <= 2, "ids grew: {ids:?}");
        // Only the final (still live) worker's timer fires: the four dead
        // incarnations' timers die with their epochs even though the id was
        // recycled.
        assert_eq!(w.store().get::<u64>(n, "fired_count"), Some(1));
        // No retired-name residue from transient kills.
        assert!(w.lookup(n, "w0").is_none());
    }

    #[test]
    fn fault_plan_crashes_and_restarts() {
        let mut w = World::new(Config::default().seed(1));
        let n = w.add_node("n");
        w.add_component(
            n,
            "echo",
            Echo {
                received: 0,
                echoes: 0,
                record_key: None,
            },
        );
        w.set_boot(n, |b| {
            b.add_component(
                "echo",
                Echo {
                    received: 0,
                    echoes: 0,
                    record_key: None,
                },
            );
        });
        let plan = FaultPlan::new().crash_restart(
            n,
            SimTime::ZERO + Duration::from_secs(10),
            Duration::from_secs(5),
        );
        w.apply_fault_plan(&plan);
        w.run_until(SimTime::ZERO + Duration::from_secs(12));
        assert!(!w.node_up(n));
        w.run_until(SimTime::ZERO + Duration::from_secs(20));
        assert!(w.node_up(n));
        assert!(w.lookup(n, "echo").is_some());
        assert_eq!(w.metrics().counter("node.crashes"), 1);
        assert_eq!(w.metrics().counter("node.restarts"), 1);
    }
}
