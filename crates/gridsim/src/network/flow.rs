//! Shared-bandwidth flow model: a topology of named links with finite
//! capacity, plus a max-min fair-share allocator over the bulk transfers
//! ("flows") currently crossing them.
//!
//! The legacy model in [`super::Network::transfer_duration`] gives every
//! bulk transfer a private, uncontended pipe whose fate is decided entirely
//! at start time. That is fine for control traffic but wrong for the
//! paper's hardest production lessons (§6): stage-in storms, checkpoint
//! traffic and links that degrade mid-run are all *contention* phenomena.
//! In flow mode a transfer instead becomes a kernel-visible object:
//!
//! * each flow follows a route — an ordered list of [`LinkId`]s declared by
//!   the scenario — and is additionally capped by the legacy per-pair
//!   bandwidth (modelling the endpoint NIC / disk);
//! * whenever the flow set or the topology changes, every flow's rate is
//!   recomputed by **max-min fair share** (progressive filling): repeatedly
//!   give every unfixed flow the smallest per-link fair share
//!   `capacity / flows_on_link`, freeze the flows that bottleneck at that
//!   rate, subtract their demand, and continue with the rest;
//! * a flow's completion is a scheduled kernel event. Because rates change
//!   while a flow is in flight, completion events carry no payload except
//!   the flow id and are validated against the flow's *current* deadline:
//!   stale events (scheduled before a rate change) fire and are ignored.
//!
//! Everything here is deterministic: flows are stored in a `BTreeMap` and
//! iterated in id order, the waterfill fixes flows by exact float equality
//! of identically-computed expressions, and no wall-clock or hash-order
//! state is consulted.

use crate::component::{Addr, AnyMsg, NodeId};
use crate::time::{Duration, SimTime};
use std::collections::{BTreeMap, HashMap};

/// Handle to a declared topology link.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

/// Kernel notice delivered to the *sender* of a bulk transfer that was
/// aborted in flight (network partition, link failure, or receiver crash).
///
/// The original payload is handed back so the sender can decide whether to
/// retransmit (`gass::GcatClient` does), translate the abort into a
/// protocol-level failure for the would-be receiver (`gass::GassServer`
/// turns an aborted GET reply into a retryable `TransferError::Aborted`),
/// or drop it.
#[derive(Debug)]
pub struct BulkAborted {
    /// Where the transfer was headed.
    pub to: Addr,
    /// Size of the aborted transfer.
    pub bytes: u64,
    /// The undelivered payload.
    pub msg: AnyMsg,
}

/// A capacitated topology link (named externally via `FlowNet::by_name`).
#[derive(Debug)]
struct Link {
    /// Configured capacity in bytes/second.
    capacity: f64,
    /// Propagation latency in seconds, paid once per flow as part of the
    /// completion tail.
    latency: f64,
    up: bool,
    /// Fault-plan capacity override (`LinkBandwidth` events).
    override_cap: Option<f64>,
}

impl Link {
    /// Capacity currently available to the fair-share allocator.
    fn effective(&self) -> f64 {
        if !self.up {
            return 0.0;
        }
        self.override_cap.unwrap_or(self.capacity).max(0.0)
    }
}

/// One in-flight bulk transfer.
#[derive(Debug)]
struct Flow {
    from: Addr,
    to: Addr,
    bytes: u64,
    /// Bytes not yet pushed into the pipe (`<= 0` while the last bytes are
    /// "draining" through the latency tail).
    remaining: f64,
    /// Current fair-share rate in bytes/second.
    rate: f64,
    /// Sim time at which `remaining` was last settled.
    last: SimTime,
    /// Completion tail: one end-to-end latency sample plus the route's
    /// summed propagation delays, paid after the last byte is sent.
    latency: Duration,
    route: Vec<LinkId>,
    /// Per-flow ceiling (the legacy per-pair bandwidth — endpoint NIC).
    cap: f64,
    /// Current completion deadline; [`SimTime::MAX`] while stalled. A
    /// `FlowDone` event is valid only if its fire time equals this.
    deadline: SimTime,
    /// The payload, surrendered on completion or abort.
    msg: Option<AnyMsg>,
}

/// An aborted flow, as reported back to the kernel: the kernel wraps it in
/// a [`BulkAborted`] delivered to `from`.
#[derive(Debug)]
pub(crate) struct AbortedFlow {
    pub(crate) from: Addr,
    pub(crate) to: Addr,
    pub(crate) bytes: u64,
    pub(crate) msg: AnyMsg,
}

/// The flow-mode network state: topology plus active flows.
#[derive(Debug, Default)]
pub(crate) struct FlowNet {
    links: Vec<Link>,
    by_name: HashMap<String, LinkId>,
    /// Directed routes; [`FlowNet::set_route`] installs both directions.
    routes: HashMap<(NodeId, NodeId), Vec<LinkId>>,
    /// Active flows in creation order (BTreeMap: deterministic iteration).
    flows: BTreeMap<u64, Flow>,
    next_id: u64,
}

impl FlowNet {
    /// Declare a link. Re-declaring a name updates capacity/latency and
    /// returns the existing id.
    pub(crate) fn add_link(&mut self, name: &str, capacity: f64, latency_secs: f64) -> LinkId {
        if let Some(&id) = self.by_name.get(name) {
            let link = &mut self.links[id.0 as usize];
            link.capacity = capacity;
            link.latency = latency_secs;
            return id;
        }
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            capacity,
            latency: latency_secs,
            up: true,
            override_cap: None,
        });
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Look up a link by name.
    pub(crate) fn link_id(&self, name: &str) -> Option<LinkId> {
        self.by_name.get(name).copied()
    }

    /// Install the route for `a ↔ b` (both directions).
    pub(crate) fn set_route(&mut self, a: NodeId, b: NodeId, route: &[LinkId]) {
        self.routes.insert((a, b), route.to_vec());
        self.routes.insert((b, a), route.to_vec());
    }

    /// The route for `from → to`; empty (capacity-unconstrained, still
    /// flow-scheduled) when none is declared.
    pub(crate) fn route_for(&self, from: NodeId, to: NodeId) -> Vec<LinkId> {
        self.routes.get(&(from, to)).cloned().unwrap_or_default()
    }

    pub(crate) fn link_is_up(&self, id: LinkId) -> bool {
        self.links[id.0 as usize].up
    }

    /// A link's propagation latency in seconds.
    pub(crate) fn link_latency(&self, id: LinkId) -> f64 {
        self.links[id.0 as usize].latency
    }

    /// Set a link's up/down state. Returns false for unknown names.
    pub(crate) fn set_link_up(&mut self, name: &str, up: bool) -> bool {
        match self.by_name.get(name) {
            Some(&id) => {
                self.links[id.0 as usize].up = up;
                true
            }
            None => false,
        }
    }

    /// Set (or with `None`, clear) a link's capacity override.
    pub(crate) fn set_link_override(&mut self, name: &str, cap: Option<f64>) -> bool {
        match self.by_name.get(name) {
            Some(&id) => {
                self.links[id.0 as usize].override_cap = cap;
                true
            }
            None => false,
        }
    }

    /// Number of in-flight flows.
    pub(crate) fn active(&self) -> usize {
        self.flows.len()
    }

    /// Smallest declared link latency, folded into `floor`.
    pub(crate) fn min_latency(&self, floor: f64) -> f64 {
        self.links
            .iter()
            .map(|l| l.latency)
            .fold(floor, |lo, l| lo.min(l))
    }

    /// Register a new flow (rates/deadlines are assigned by the next
    /// [`FlowNet::refresh`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn start(
        &mut self,
        from: Addr,
        to: Addr,
        bytes: u64,
        route: Vec<LinkId>,
        latency: Duration,
        cap: f64,
        now: SimTime,
        msg: AnyMsg,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.flows.insert(
            id,
            Flow {
                from,
                to,
                bytes,
                // Zero-byte transfers still pay the latency tail.
                remaining: (bytes.max(1)) as f64,
                rate: 0.0,
                last: now,
                latency,
                route,
                cap,
                deadline: SimTime::MAX,
                msg: Some(msg),
            },
        );
        id
    }

    /// Complete flow `id` if `now` matches its current deadline (stale
    /// completion events — scheduled before a rate change — return `None`
    /// and are ignored). Returns `(from, to, payload)`.
    pub(crate) fn complete(&mut self, id: u64, now: SimTime) -> Option<(Addr, Addr, AnyMsg)> {
        match self.flows.get(&id) {
            Some(f) if f.deadline == now => {}
            _ => return None,
        }
        let mut flow = self.flows.remove(&id).expect("checked above");
        Some((flow.from, flow.to, flow.msg.take().expect("payload intact")))
    }

    /// Remove and return every flow matching `pred(from_node, to_node,
    /// route)`. The caller is expected to [`FlowNet::refresh`] afterwards.
    pub(crate) fn abort_where(
        &mut self,
        mut pred: impl FnMut(NodeId, NodeId, &[LinkId]) -> bool,
    ) -> Vec<AbortedFlow> {
        let doomed: Vec<u64> = self
            .flows
            .iter()
            .filter(|(_, f)| pred(f.from.node, f.to.node, &f.route))
            .map(|(&id, _)| id)
            .collect();
        doomed
            .into_iter()
            .map(|id| {
                let mut f = self.flows.remove(&id).expect("collected above");
                AbortedFlow {
                    from: f.from,
                    to: f.to,
                    bytes: f.bytes,
                    msg: f.msg.take().expect("payload intact"),
                }
            })
            .collect()
    }

    /// Settle progress up to `now` under the old rates, re-run the
    /// fair-share waterfill, and return the flows whose completion deadline
    /// changed to a new finite time — the kernel schedules a `FlowDone`
    /// event for each. Flows whose deadline moved to [`SimTime::MAX`]
    /// (stalled) get no event; their previously scheduled events go stale.
    pub(crate) fn refresh(&mut self, now: SimTime) -> Vec<(u64, SimTime)> {
        // 1. Settle progress under the rates that held since `last`.
        for f in self.flows.values_mut() {
            let dt = (now - f.last).as_secs_f64();
            if dt > 0.0 && f.remaining > 0.0 {
                f.remaining = (f.remaining - f.rate * dt).max(0.0);
            }
            f.last = now;
        }
        // 2. Max-min fair share over the still-sending flows. Flows that
        //    have pushed their last byte ("draining" the latency tail) hold
        //    their frozen deadline and consume no capacity.
        let mut cap: Vec<f64> = self.links.iter().map(Link::effective).collect();
        let mut load: Vec<u32> = vec![0; self.links.len()];
        let mut todo: Vec<u64> = Vec::new();
        for (&id, f) in &self.flows {
            f.route.iter().for_each(|l| {
                if f.remaining > 0.0 {
                    load[l.0 as usize] += 1;
                }
            });
            if f.remaining > 0.0 {
                todo.push(id);
            }
        }
        while !todo.is_empty() {
            // Each unfixed flow's current ceiling: its own cap and the
            // fair share of every link it crosses.
            let limits: Vec<f64> = todo
                .iter()
                .map(|id| {
                    let f = &self.flows[id];
                    let mut lim = f.cap;
                    for l in &f.route {
                        let i = l.0 as usize;
                        if load[i] > 0 {
                            lim = lim.min(cap[i] / load[i] as f64);
                        }
                    }
                    lim.max(0.0)
                })
                .collect();
            let floor = limits.iter().copied().fold(f64::INFINITY, f64::min);
            // Fix every flow sitting at the global minimum (exact equality:
            // the minimum was computed from these very values).
            let mut rest = Vec::with_capacity(todo.len());
            for (id, lim) in todo.drain(..).zip(limits) {
                if lim <= floor {
                    let f = self.flows.get_mut(&id).expect("in todo");
                    f.rate = lim;
                    for l in &f.route {
                        let i = l.0 as usize;
                        cap[i] = (cap[i] - lim).max(0.0);
                        load[i] -= 1;
                    }
                } else {
                    rest.push(id);
                }
            }
            todo = rest;
        }
        // 3. Recompute deadlines; collect the changed, finite ones.
        let mut changed = Vec::new();
        for (&id, f) in self.flows.iter_mut() {
            if f.remaining <= 0.0 {
                continue; // draining: deadline frozen
            }
            let deadline = if f.rate > 0.0 {
                // Saturated adds collapse to MAX == "never".
                now + Duration::from_secs_f64(f.remaining / f.rate) + f.latency
            } else {
                SimTime::MAX
            };
            if deadline != f.deadline {
                f.deadline = deadline;
                if deadline != SimTime::MAX {
                    changed.push((id, deadline));
                }
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::CompId;

    fn addr(node: u32) -> Addr {
        Addr {
            node: NodeId(node),
            comp: CompId(0),
        }
    }

    fn payload() -> AnyMsg {
        Box::new(42u64)
    }

    fn net_one_link(capacity: f64) -> (FlowNet, LinkId) {
        let mut net = FlowNet::default();
        let wan = net.add_link("wan", capacity, 0.0);
        net.set_route(NodeId(1), NodeId(2), &[wan]);
        net.set_route(NodeId(1), NodeId(3), &[wan]);
        (net, wan)
    }

    /// Start a `bytes`-sized flow from node 1 to `to` with a huge
    /// endpoint cap so only the shared link constrains it.
    fn start(net: &mut FlowNet, to: u32, bytes: u64, now: SimTime) -> u64 {
        let route = net.route_for(NodeId(1), NodeId(to));
        net.start(
            addr(1),
            addr(to),
            bytes,
            route,
            Duration::ZERO,
            1e12,
            now,
            payload(),
        )
    }

    #[test]
    fn fair_share_two_flows_halve_the_link() {
        let (mut net, _) = net_one_link(1_000_000.0);
        let t0 = SimTime::ZERO;
        let a = start(&mut net, 2, 10_000_000, t0);
        let b = start(&mut net, 3, 10_000_000, t0);
        let sched = net.refresh(t0);
        // Both flows see capacity/2 = 500 kB/s => 20 s for 10 MB.
        assert_eq!(sched.len(), 2);
        for &(id, deadline) in &sched {
            assert!(id == a || id == b);
            assert_eq!(deadline, t0 + Duration::from_secs(20));
        }
        assert_eq!(net.flows[&a].rate, 500_000.0);
        assert_eq!(net.flows[&b].rate, 500_000.0);
    }

    #[test]
    fn solo_flow_gets_full_capacity_after_peer_completes() {
        let (mut net, _) = net_one_link(1_000_000.0);
        let t0 = SimTime::ZERO;
        let a = start(&mut net, 2, 10_000_000, t0);
        let b = start(&mut net, 3, 2_000_000, t0);
        net.refresh(t0);
        // b finishes at 4 s (2 MB at 500 kB/s); a then speeds up to full
        // capacity: 10 MB total = 2 MB done + 8 MB at 1 MB/s => t=12 s.
        let t_b = net.flows[&b].deadline;
        assert_eq!(t_b, t0 + Duration::from_secs(4));
        assert!(net.complete(b, t_b).is_some());
        let sched = net.refresh(t_b);
        assert_eq!(sched, vec![(a, t0 + Duration::from_secs(12))]);
    }

    #[test]
    fn stale_completion_events_are_ignored() {
        let (mut net, _) = net_one_link(1_000_000.0);
        let t0 = SimTime::ZERO;
        let a = start(&mut net, 2, 10_000_000, t0);
        net.refresh(t0);
        let first_deadline = net.flows[&a].deadline;
        // A second flow arrives: a's deadline moves out, the event
        // scheduled for the original deadline must be rejected.
        let t1 = t0 + Duration::from_secs(2);
        let _b = start(&mut net, 3, 10_000_000, t1);
        net.refresh(t1);
        assert!(net.flows[&a].deadline > first_deadline);
        assert!(net.complete(a, first_deadline).is_none());
        assert_eq!(net.active(), 2);
    }

    #[test]
    fn per_flow_cap_limits_below_fair_share() {
        let mut net = FlowNet::default();
        let wan = net.add_link("wan", 1_000_000.0, 0.0);
        net.set_route(NodeId(1), NodeId(2), &[wan]);
        net.set_route(NodeId(1), NodeId(3), &[wan]);
        let route = net.route_for(NodeId(1), NodeId(2));
        // a is NIC-capped at 100 kB/s; b should absorb the slack (900 kB/s).
        let a = net.start(
            addr(1),
            addr(2),
            1_000_000,
            route.clone(),
            Duration::ZERO,
            100_000.0,
            SimTime::ZERO,
            payload(),
        );
        let b = net.start(
            addr(1),
            addr(3),
            1_000_000,
            route,
            Duration::ZERO,
            1e12,
            SimTime::ZERO,
            payload(),
        );
        net.refresh(SimTime::ZERO);
        assert_eq!(net.flows[&a].rate, 100_000.0);
        assert_eq!(net.flows[&b].rate, 900_000.0);
    }

    #[test]
    fn zero_capacity_stalls_then_resumes() {
        let (mut net, _) = net_one_link(1_000_000.0);
        let t0 = SimTime::ZERO;
        let a = start(&mut net, 2, 1_000_000, t0);
        let sched = net.refresh(t0);
        assert_eq!(sched.len(), 1);
        // Bandwidth override of 0.0: the flow stalls (deadline => MAX, no
        // event scheduled), and the old completion event goes stale.
        assert!(net.set_link_override("wan", Some(0.0)));
        let t1 = t0 + Duration::from_millis(500);
        let sched = net.refresh(t1);
        assert!(sched.is_empty());
        assert_eq!(net.flows[&a].deadline, SimTime::MAX);
        assert!(net.complete(a, t0 + Duration::from_secs(1)).is_none());
        // Restore: the remaining 500 kB drain at full capacity.
        assert!(net.set_link_override("wan", None));
        let t2 = t0 + Duration::from_secs(10);
        let sched = net.refresh(t2);
        assert_eq!(sched, vec![(a, t2 + Duration::from_millis(500))]);
    }

    #[test]
    fn abort_where_surrenders_payloads() {
        let (mut net, wan) = net_one_link(1_000_000.0);
        let t0 = SimTime::ZERO;
        let _a = start(&mut net, 2, 1_000_000, t0);
        let _b = start(&mut net, 3, 1_000_000, t0);
        net.refresh(t0);
        let aborted = net.abort_where(|_, to, route| to == NodeId(2) && route.contains(&wan));
        assert_eq!(aborted.len(), 1);
        assert_eq!(aborted[0].to.node, NodeId(2));
        assert_eq!(aborted[0].bytes, 1_000_000);
        assert!(aborted[0].msg.downcast_ref::<u64>().is_some());
        assert_eq!(net.active(), 1);
        // Survivor speeds up to full capacity.
        let sched = net.refresh(t0);
        assert_eq!(sched.len(), 1);
    }

    #[test]
    fn latency_tail_is_not_resliced() {
        // A flow that has pushed its last byte is draining: a topology
        // change must not move its (frozen) deadline.
        let mut net = FlowNet::default();
        let wan = net.add_link("wan", 1_000_000.0, 0.050);
        net.set_route(NodeId(1), NodeId(2), &[wan]);
        net.set_route(NodeId(1), NodeId(3), &[wan]);
        let route = net.route_for(NodeId(1), NodeId(2));
        let a = net.start(
            addr(1),
            addr(2),
            1_000_000,
            route,
            Duration::from_millis(50),
            1e12,
            SimTime::ZERO,
            payload(),
        );
        net.refresh(SimTime::ZERO);
        let deadline = net.flows[&a].deadline;
        assert_eq!(deadline, SimTime::ZERO + Duration::from_millis(1050));
        // At t=1.0 s every byte is pushed; a new flow at t=1.02 s must not
        // extend a's deadline.
        let t = SimTime::ZERO + Duration::from_millis(1020);
        let _b = start(&mut net, 3, 1_000_000, t);
        let sched = net.refresh(t);
        assert_eq!(net.flows[&a].deadline, deadline);
        assert!(sched.iter().all(|&(id, _)| id != a));
        assert!(net.complete(a, deadline).is_some());
    }
}
