//! The event queue.
//!
//! A binary heap keyed by `(time, seq)`: `seq` is a monotonically increasing
//! sequence number assigned at push time, so simultaneous events fire in the
//! order they were scheduled. That total order is the root of the kernel's
//! determinism guarantee.

use crate::component::{Addr, AnyMsg, NodeId, TimerId};
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug)]
pub enum EventKind {
    /// Deliver `msg` to `to` (dropped if the target is dead).
    Deliver {
        /// Sender.
        from: Addr,
        /// Receiver.
        to: Addr,
        /// Payload.
        msg: AnyMsg,
    },
    /// Fire timer `id` with `tag` on `on` (dropped if cancelled, dead, or
    /// belonging to an earlier incarnation of a restarted component).
    Timer {
        /// Owning component.
        on: Addr,
        /// Timer handle (for cancellation checks).
        id: TimerId,
        /// Caller-chosen discriminator.
        tag: u64,
        /// Owner incarnation at scheduling time.
        epoch: u32,
    },
    /// Crash a node (scripted by a fault plan or an operator component).
    NodeCrash {
        /// The node.
        node: NodeId,
    },
    /// Restart a crashed node.
    NodeRestart {
        /// The node.
        node: NodeId,
    },
    /// Begin a network partition between the two groups.
    PartitionStart {
        /// One side.
        group_a: Vec<NodeId>,
        /// The other side.
        group_b: Vec<NodeId>,
    },
    /// Heal a network partition.
    PartitionEnd {
        /// One side.
        group_a: Vec<NodeId>,
        /// The other side.
        group_b: Vec<NodeId>,
    },
    /// Change the global message-loss probability.
    SetLossRate {
        /// New rate (NaN restores the configured default).
        rate: f64,
    },
}

/// A scheduled event.
#[derive(Debug)]
pub struct Event {
    /// When the event fires.
    pub time: SimTime,
    /// Push-order tie-breaker.
    pub seq: u64,
    /// The action.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Earliest-first event queue with deterministic tie-breaking.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> EventQueue {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `kind` at `time`.
    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{CompId, NodeId};

    fn timer_at(q: &mut EventQueue, t: u64, tag: u64) {
        q.push(
            SimTime(t),
            EventKind::Timer {
                on: Addr {
                    node: NodeId(0),
                    comp: CompId(0),
                },
                id: TimerId(tag),
                tag,
                epoch: 0,
            },
        );
    }

    fn pop_tag(q: &mut EventQueue) -> (u64, u64) {
        match q.pop().unwrap() {
            Event {
                time,
                kind: EventKind::Timer { tag, .. },
                ..
            } => (time.0, tag),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn earliest_first() {
        let mut q = EventQueue::new();
        timer_at(&mut q, 30, 3);
        timer_at(&mut q, 10, 1);
        timer_at(&mut q, 20, 2);
        assert_eq!(pop_tag(&mut q), (10, 1));
        assert_eq!(pop_tag(&mut q), (20, 2));
        assert_eq!(pop_tag(&mut q), (30, 3));
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_fire_in_push_order() {
        let mut q = EventQueue::new();
        for tag in 0..100 {
            timer_at(&mut q, 5, tag);
        }
        for tag in 0..100 {
            assert_eq!(pop_tag(&mut q), (5, tag));
        }
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        timer_at(&mut q, 42, 0);
        timer_at(&mut q, 7, 1);
        assert_eq!(q.peek_time(), Some(SimTime(7)));
        assert_eq!(q.len(), 2);
        let _ = q.pop();
        assert_eq!(q.peek_time(), Some(SimTime(42)));
    }
}
