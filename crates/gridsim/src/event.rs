//! The event queue.
//!
//! Events are keyed by `(time, seq)`: `seq` is a monotonically increasing
//! sequence number assigned at push time, so simultaneous events fire in the
//! order they were scheduled. That total order is the root of the kernel's
//! determinism guarantee.
//!
//! The implementation is a two-level calendar queue tuned for the timer-dense
//! workloads grid components generate (heartbeats, retries, polling):
//!
//! * an **active heap** holding every event in the current 1024 µs slot,
//! * **L0**: 1024 buckets of 1024 µs each — exactly one L1 slot (~1.05 s),
//!   aligned to the L1 boundary,
//! * **L1**: 1024 buckets of ~1.05 s each (~18 simulated minutes), aligned,
//! * an **overflow heap** for everything beyond the L1 horizon.
//!
//! Pushes and pops are O(1) amortised: most events land directly in an L0/L1
//! bucket and are only heap-ordered once they reach the (small) active heap.
//! Bucket windows are *aligned*, not sliding, so an event can never be filed
//! into a bucket that drains after a later-keyed event — the pop sequence is
//! exactly the `(time, seq)` order a single binary heap would produce, which
//! the determinism tests assert byte-for-byte.

use crate::component::{Addr, AnyMsg, NodeId, TimerId};
use crate::time::{EventKey, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug)]
pub enum EventKind {
    /// Deliver `msg` to `to` (dropped if the target is dead).
    Deliver {
        /// Sender.
        from: Addr,
        /// Receiver.
        to: Addr,
        /// Payload.
        msg: AnyMsg,
    },
    /// Fire timer `id` with `tag` on `on` (dropped if cancelled, dead, or
    /// belonging to an earlier incarnation of a restarted component).
    Timer {
        /// Owning component.
        on: Addr,
        /// Timer handle (for cancellation checks).
        id: TimerId,
        /// Caller-chosen discriminator.
        tag: u64,
        /// Owner incarnation at scheduling time.
        epoch: u32,
    },
    /// Crash a node (scripted by a fault plan or an operator component).
    NodeCrash {
        /// The node.
        node: NodeId,
    },
    /// Restart a crashed node.
    NodeRestart {
        /// The node.
        node: NodeId,
    },
    /// Begin a network partition between the two groups.
    PartitionStart {
        /// One side.
        group_a: Vec<NodeId>,
        /// The other side.
        group_b: Vec<NodeId>,
    },
    /// Heal a network partition.
    PartitionEnd {
        /// One side.
        group_a: Vec<NodeId>,
        /// The other side.
        group_b: Vec<NodeId>,
    },
    /// Change the global message-loss probability.
    SetLossRate {
        /// New rate (NaN restores the configured default).
        rate: f64,
    },
    /// A flow-mode bulk transfer's completion deadline. Valid only if the
    /// flow still exists *and* its current deadline equals the fire time —
    /// rate changes reschedule by pushing a fresh event and letting the
    /// old one go stale (no queue surgery).
    FlowDone {
        /// The flow id.
        flow: u64,
    },
    /// Take a flow-mode topology link down (crossing flows abort).
    LinkDown {
        /// The link name.
        link: String,
    },
    /// Bring a downed flow-mode link back up.
    LinkUp {
        /// The link name.
        link: String,
    },
    /// Override a flow-mode link's capacity; active flows rescale.
    LinkBandwidth {
        /// The link name.
        link: String,
        /// New capacity in bytes/s (NaN restores the configured value).
        capacity: f64,
    },
}

/// Causal-provenance sentinel: "no observable cause" (external stimulus,
/// fault-plan injection, or a chain on which nothing was ever traced).
/// Event sequence numbers start at 0, so `u64::MAX` can never collide.
pub const NO_CAUSE: u64 = u64::MAX;

/// A scheduled event.
#[derive(Debug)]
pub struct Event {
    /// When the event fires.
    pub time: SimTime,
    /// Push-order tie-breaker.
    pub seq: u64,
    /// Sequence number of the nearest *observable* causal ancestor — the
    /// most recent event on this event's trigger chain during whose
    /// processing a trace record was emitted — or [`NO_CAUSE`]. Captured
    /// automatically by the kernel at scheduling time; components never
    /// see or set it. The trace layer exports `(id, cause)` pairs and
    /// `obs::causality` rebuilds the happens-before DAG from them.
    pub cause: u64,
    /// The action.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// log2 of the L0 bucket width in microseconds (1024 µs ≈ 1 ms).
const B0: u32 = 10;
/// log2 of the L1 bucket width in microseconds (~1.05 s). Must equal
/// `B0 + log2(N0)` so L0 covers exactly one L1 slot.
const B1: u32 = 20;
/// Buckets per level (a power of two, for cheap modular indexing).
const N: usize = 1024;
/// Words in each occupancy bitmap.
const WORDS: usize = N / 64;

/// First set bucket index `>= from`, or `None`.
fn scan(bits: &[u64; WORDS], from: usize) -> Option<usize> {
    if from >= N {
        return None;
    }
    let mut w = from / 64;
    let mut word = bits[w] & (!0u64 << (from % 64));
    loop {
        if word != 0 {
            return Some(w * 64 + word.trailing_zeros() as usize);
        }
        w += 1;
        if w == WORDS {
            return None;
        }
        word = bits[w];
    }
}

/// Earliest-first event queue with deterministic tie-breaking.
#[derive(Debug)]
pub struct EventQueue {
    /// Events in L0 slots `<= cur0`, heap-ordered by `(time, seq)`.
    active: BinaryHeap<Event>,
    /// One bucket per L0 slot of the current L1 slot (index `slot0 % N`).
    l0: Vec<Vec<Event>>,
    l0_bits: [u64; WORDS],
    /// One bucket per L1 slot of the current horizon (index `slot1 % N`).
    /// Invariant: every event in a bucket shares the same absolute slot1,
    /// which lies in `(cur1, cur1 + N)`.
    l1: Vec<Vec<Event>>,
    l1_bits: [u64; WORDS],
    /// Events beyond the L1 horizon at push time.
    overflow: BinaryHeap<Event>,
    /// The L0 slot currently drained into `active`.
    cur0: u64,
    len: usize,
    next_seq: u64,
}

impl Default for EventQueue {
    fn default() -> EventQueue {
        EventQueue::new()
    }
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> EventQueue {
        EventQueue {
            active: BinaryHeap::new(),
            l0: (0..N).map(|_| Vec::new()).collect(),
            l0_bits: [0; WORDS],
            l1: (0..N).map(|_| Vec::new()).collect(),
            l1_bits: [0; WORDS],
            overflow: BinaryHeap::new(),
            cur0: 0,
            len: 0,
            next_seq: 0,
        }
    }

    /// Schedule `kind` at `time`, recording `cause` as its causal ancestor
    /// (use [`NO_CAUSE`] for external stimuli).
    pub fn push(&mut self, time: SimTime, kind: EventKind, cause: u64) {
        let seq = self.next_seq;
        self.push_with_seq(time, seq, kind, cause);
    }

    /// Schedule `kind` at `time` with an externally allocated sequence
    /// number. The sharded kernel allocates one *global* seq stream across
    /// every shard's queue so that cross-shard ties still break in push
    /// order — the same total order a single queue would produce. The
    /// internal counter is kept ahead of `seq` so mixing with
    /// [`EventQueue::push`] stays sound.
    pub fn push_with_seq(&mut self, time: SimTime, seq: u64, kind: EventKind, cause: u64) {
        self.next_seq = self.next_seq.max(seq.saturating_add(1));
        self.len += 1;
        let event = Event {
            time,
            seq,
            cause,
            kind,
        };
        let s0 = time.0 >> B0;
        if s0 <= self.cur0 {
            // Current (or already-drained) slot: compete in the heap.
            self.active.push(event);
        } else if s0 >> (B1 - B0) == self.cur0 >> (B1 - B0) {
            // Later slot of the current L1 slot: direct L0 filing.
            let idx = (s0 as usize) & (N - 1);
            self.l0[idx].push(event);
            self.l0_bits[idx / 64] |= 1 << (idx % 64);
        } else {
            let s1 = time.0 >> B1;
            let cur1 = self.cur0 >> (B1 - B0);
            if s1 - cur1 < N as u64 {
                // Within the L1 horizon: direct L1 filing.
                let idx = (s1 as usize) & (N - 1);
                self.l1[idx].push(event);
                self.l1_bits[idx / 64] |= 1 << (idx % 64);
            } else {
                self.overflow.push(event);
            }
        }
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        loop {
            if let Some(event) = self.active.pop() {
                self.len -= 1;
                return Some(event);
            }
            if self.len == 0 {
                return None;
            }
            self.advance();
        }
    }

    /// Move the next non-empty bucket into the active heap. Only called
    /// when `active` is empty and at least one event remains.
    fn advance(&mut self) {
        // Later L0 bucket within the current L1 slot?
        let base0 = self.cur0 & !(N as u64 - 1);
        let lo = (self.cur0 - base0) as usize + 1;
        if let Some(idx) = scan(&self.l0_bits, lo) {
            self.drain_l0(base0, idx);
            return;
        }
        // Advance to the next occupied L1 slot: the earliest of the first
        // set L1 bucket and the overflow heap's front. Both can hold events
        // for the same slot (filed at different horizons), so drain both.
        let cur1 = self.cur0 >> (B1 - B0);
        let bucket_s1 = {
            let lo1 = ((cur1 as usize) & (N - 1)) + 1;
            // Buckets wrap modulo N: scan above the cursor, then below.
            scan(&self.l1_bits, lo1)
                .map(|idx| base_plus(cur1, lo1, idx))
                .or_else(|| scan(&self.l1_bits, 0).map(|idx| base_plus(cur1, 0, idx)))
        };
        let overflow_s1 = self.overflow.peek().map(|e| e.time.0 >> B1);
        let target = match (bucket_s1, overflow_s1) {
            (Some(b), Some(o)) => b.min(o),
            (Some(b), None) => b,
            (None, Some(o)) => o,
            (None, None) => unreachable!("len > 0 with every level empty"),
        };
        // Redistribute the slot's events into L0 buckets.
        self.cur0 = target << (B1 - B0);
        let base0 = self.cur0;
        if bucket_s1 == Some(target) {
            let idx = (target as usize) & (N - 1);
            self.l1_bits[idx / 64] &= !(1 << (idx % 64));
            let mut events = std::mem::take(&mut self.l1[idx]);
            for event in events.drain(..) {
                let i = ((event.time.0 >> B0) as usize) & (N - 1);
                self.l0[i].push(event);
                self.l0_bits[i / 64] |= 1 << (i % 64);
            }
            self.l1[idx] = events;
        }
        while let Some(e) = self.overflow.peek() {
            if e.time.0 >> B1 != target {
                break;
            }
            let event = self.overflow.pop().expect("peeked");
            let i = ((event.time.0 >> B0) as usize) & (N - 1);
            self.l0[i].push(event);
            self.l0_bits[i / 64] |= 1 << (i % 64);
        }
        let idx = scan(&self.l0_bits, 0).expect("slot chosen because occupied");
        self.drain_l0(base0, idx);
    }

    /// Drain L0 bucket `idx` (absolute slot `base0 + idx`) into the heap.
    fn drain_l0(&mut self, base0: u64, idx: usize) {
        self.cur0 = base0 + idx as u64;
        self.l0_bits[idx / 64] &= !(1 << (idx % 64));
        let mut events = std::mem::take(&mut self.l0[idx]);
        self.active.extend(events.drain(..));
        self.l0[idx] = events;
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.peek_key().map(|k| k.0)
    }

    /// `(time, seq)` of the earliest event without removing it — exactly
    /// the key [`EventQueue::pop`] would return next. The shard coordinator
    /// N-way merges queues by this key, so it must be precise under ties:
    /// same-time events across shards fire in global push (seq) order.
    pub fn peek_key(&self) -> Option<EventKey> {
        if let Some(event) = self.active.peek() {
            return Some((event.time, event.seq));
        }
        if self.len == 0 {
            return None;
        }
        let base0 = self.cur0 & !(N as u64 - 1);
        let lo = (self.cur0 - base0) as usize + 1;
        if let Some(idx) = scan(&self.l0_bits, lo) {
            return bucket_min(&self.l0[idx]);
        }
        // The earliest remaining event is in the first occupied L1 bucket
        // or the overflow heap — slots are disjoint time ranges, so the
        // earlier slot wins; for a shared slot, the earlier minimum.
        let cur1 = self.cur0 >> (B1 - B0);
        let lo1 = ((cur1 as usize) & (N - 1)) + 1;
        let bucket = scan(&self.l1_bits, lo1)
            .or_else(|| scan(&self.l1_bits, 0))
            .and_then(|idx| bucket_min(&self.l1[idx]));
        let overflow = self.overflow.peek().map(|e| (e.time, e.seq));
        match (bucket, overflow) {
            (Some(b), Some(o)) => Some(b.min(o)),
            (b, o) => b.or(o),
        }
    }

    /// Number of pending events across *every* level of the calendar —
    /// the active heap, all L0/L1 buckets, and the overflow heap. The
    /// count is maintained on push/pop (bucket redistribution in
    /// [`advance`](Self::advance) moves events between levels without
    /// touching it), so the profiler's queue-depth samples always see the
    /// true total, not just the active slot.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Absolute L1 slot for bucket `idx` found scanning from `lo` with the
/// cursor at `cur1`: the smallest slot `> cur1` congruent to `idx` mod N.
fn base_plus(cur1: u64, lo: usize, idx: usize) -> u64 {
    let base = cur1 & !(N as u64 - 1);
    let abs = base + idx as u64;
    debug_assert!(lo == 0 || idx >= lo);
    if abs > cur1 {
        abs
    } else {
        abs + N as u64
    }
}

/// Earliest `(time, seq)` key in an unsorted bucket.
fn bucket_min(bucket: &[Event]) -> Option<EventKey> {
    bucket.iter().map(|e| (e.time, e.seq)).min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{CompId, NodeId};

    fn timer_at(q: &mut EventQueue, t: u64, tag: u64) {
        q.push(
            SimTime(t),
            EventKind::Timer {
                on: Addr {
                    node: NodeId(0),
                    comp: CompId(0),
                },
                id: TimerId(tag),
                tag,
                epoch: 0,
            },
            NO_CAUSE,
        );
    }

    fn pop_tag(q: &mut EventQueue) -> (u64, u64) {
        match q.pop().unwrap() {
            Event {
                time,
                kind: EventKind::Timer { tag, .. },
                ..
            } => (time.0, tag),
            other => panic!("unexpected {other:?}"),
        }
    }

    /// The original single-binary-heap queue, kept as the reference model
    /// for the calendar queue's pop order.
    #[derive(Default)]
    pub(crate) struct BaselineQueue {
        heap: BinaryHeap<Event>,
        next_seq: u64,
    }

    impl BaselineQueue {
        pub(crate) fn push(&mut self, time: SimTime, kind: EventKind) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Event {
                time,
                seq,
                cause: NO_CAUSE,
                kind,
            });
        }
        pub(crate) fn pop(&mut self) -> Option<Event> {
            self.heap.pop()
        }
    }

    #[test]
    fn earliest_first() {
        let mut q = EventQueue::new();
        timer_at(&mut q, 30, 3);
        timer_at(&mut q, 10, 1);
        timer_at(&mut q, 20, 2);
        assert_eq!(pop_tag(&mut q), (10, 1));
        assert_eq!(pop_tag(&mut q), (20, 2));
        assert_eq!(pop_tag(&mut q), (30, 3));
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_fire_in_push_order() {
        let mut q = EventQueue::new();
        for tag in 0..100 {
            timer_at(&mut q, 5, tag);
        }
        for tag in 0..100 {
            assert_eq!(pop_tag(&mut q), (5, tag));
        }
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        timer_at(&mut q, 42, 0);
        timer_at(&mut q, 7, 1);
        assert_eq!(q.peek_time(), Some(SimTime(7)));
        assert_eq!(q.len(), 2);
        let _ = q.pop();
        assert_eq!(q.peek_time(), Some(SimTime(42)));
    }

    #[test]
    fn order_spans_every_level() {
        // One event per region: active slot, later L0 bucket, near L1
        // bucket, far L1 bucket, overflow — pushed out of order.
        let day = 86_400_000_000u64; // far beyond the L1 horizon
        let times = [day, 3, 5_000_000, 900, 2_000_000_000, day + 1, 200_000];
        let mut q = EventQueue::new();
        for (tag, &t) in times.iter().enumerate() {
            timer_at(&mut q, t, tag as u64);
        }
        let mut sorted = times;
        sorted.sort_unstable();
        for &expect in &sorted {
            assert_eq!(q.peek_time(), Some(SimTime(expect)));
            assert_eq!(pop_tag(&mut q).0, expect);
        }
        assert!(q.pop().is_none());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn len_counts_events_parked_in_every_level() {
        // Regression guard for queue-depth sampling: events parked in L0
        // buckets, L1 buckets, and the overflow heap must all be visible
        // through `len()`, not only the active heap's contents.
        let day = 86_400_000_000u64;
        let mut q = EventQueue::new();
        timer_at(&mut q, 3, 0); // active slot
        timer_at(&mut q, 500_000, 1); // later L0 bucket
        timer_at(&mut q, 600_000_000, 2); // L1 bucket
        timer_at(&mut q, day, 3); // overflow heap
        assert_eq!(q.len(), 4, "all levels counted");
        assert!(!q.is_empty());
        let _ = q.pop();
        assert_eq!(q.len(), 3, "pop decrements by exactly one");
        // Redistribution (L1 -> L0 -> active) must not change the count.
        assert_eq!(pop_tag(&mut q), (500_000, 1));
        assert_eq!(q.len(), 2);
        assert_eq!(pop_tag(&mut q), (600_000_000, 2));
        assert_eq!(q.len(), 1);
        assert_eq!(pop_tag(&mut q), (day, 3));
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_matches_reference() {
        // Deterministic pseudo-random schedule with re-pushes after pops,
        // exercising bucket wrap-around and overflow migration.
        let mut q = EventQueue::new();
        let mut r = BaselineQueue::default();
        let mut x = 0x9e3779b97f4a7c15u64;
        let step = |x: &mut u64| {
            *x ^= *x << 13;
            *x ^= *x >> 7;
            *x ^= *x << 17;
            *x
        };
        let mut now = 0u64;
        for round in 0..5_000u64 {
            let n = step(&mut x) % 4;
            for _ in 0..n {
                // Mix of near (same ms), mid (seconds), and far (hours).
                let delta = match step(&mut x) % 5 {
                    0 => step(&mut x) % 1_000,
                    1..=2 => step(&mut x) % 5_000_000,
                    3 => step(&mut x) % 2_000_000_000,
                    _ => step(&mut x) % 100_000_000_000,
                };
                timer_at(&mut q, now + delta, round);
                r.push(
                    SimTime(now + delta),
                    EventKind::Timer {
                        on: Addr {
                            node: NodeId(0),
                            comp: CompId(0),
                        },
                        id: TimerId(round),
                        tag: round,
                        epoch: 0,
                    },
                );
            }
            if step(&mut x) % 3 != 0 {
                match (q.pop(), r.pop()) {
                    (Some(a), Some(b)) => {
                        assert_eq!((a.time, a.seq), (b.time, b.seq), "round {round}");
                        now = a.time.0;
                    }
                    (None, None) => {}
                    (a, b) => panic!("one queue empty: {:?} vs {:?}", a.is_some(), b.is_some()),
                }
            }
        }
        loop {
            match (q.pop(), r.pop()) {
                (Some(a), Some(b)) => assert_eq!((a.time, a.seq), (b.time, b.seq)),
                (None, None) => break,
                (a, b) => panic!("one queue empty: {:?} vs {:?}", a.is_some(), b.is_some()),
            }
        }
    }
}
