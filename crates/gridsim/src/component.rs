//! The component (actor) model.
//!
//! A [`Component`] is a state machine living on a node. It reacts to three
//! stimuli — start, message delivery, timer expiry — and interacts with the
//! world exclusively through its [`Ctx`]: sending messages, setting timers,
//! spawning components, reading/writing stable storage, drawing randomness,
//! and emitting trace/metric events. Effects are buffered in the context and
//! applied by the kernel after the handler returns, so handlers never alias
//! the world.

use crate::metrics::Metrics;
use crate::rng::SimRng;
use crate::store::StableStore;
use crate::time::{Duration, SimTime};
use crate::trace::TraceSink;
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::fmt;

/// Identifies a node (a machine) in the simulated grid.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifies a component instance within the world.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CompId(pub u32);

/// Identifies a kernel shard: one partition of the world's nodes with its
/// own calendar queue, local clock, FIFO link state and cancelled-timer
/// set. Every component id is shard-qualified through its node's shard
/// assignment ([`crate::world::World::shard_of`]); the default world runs
/// everything on shard 0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ShardId(pub u32);

/// The home shard: the agent side (schedd/gridmanager/broker) and any node
/// not explicitly assigned elsewhere.
impl ShardId {
    /// Shard 0, where unassigned nodes live.
    pub const HOME: ShardId = ShardId(0);
}

/// A component's full address: the node it runs on plus its instance id.
///
/// Addresses are location-transparent endpoints: sending to an `Addr` routes
/// through the network model between the two nodes. A component that has
/// been killed or whose node has crashed silently drops deliveries, exactly
/// like a dead TCP endpoint.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Addr {
    /// Node hosting the component.
    pub node: NodeId,
    /// Component instance.
    pub comp: CompId,
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for CompId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Debug for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}/{:?}", self.node, self.comp)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self)
    }
}

/// Handle to a scheduled timer, used for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimerId(pub u64);

/// A dynamically-typed message payload.
///
/// Protocol crates define plain Rust structs/enums for their wire messages;
/// the kernel moves them as `AnyMsg` and receivers downcast. `Debug` is
/// required so the trace can render message contents.
pub type AnyMsg = Box<dyn Message>;

/// Trait object bound for message payloads. Blanket-implemented for every
/// `'static + Debug` type, so protocol crates never implement it by hand.
pub trait Message: Any + fmt::Debug {
    /// Upcast for downcasting by receivers.
    fn as_any(self: Box<Self>) -> Box<dyn Any>;
    /// Borrowed upcast for type tests.
    fn as_any_ref(&self) -> &dyn Any;
    /// The payload's type name (for traces).
    fn type_name(&self) -> &'static str;
}

impl<T: Any + fmt::Debug> Message for T {
    fn as_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
    fn as_any_ref(&self) -> &dyn Any {
        self
    }
    fn type_name(&self) -> &'static str {
        std::any::type_name::<T>()
    }
}

impl dyn Message {
    /// Attempt to downcast the boxed payload to a concrete type.
    pub fn downcast<T: Any>(self: Box<Self>) -> Result<Box<T>, Box<dyn Any>> {
        self.as_any().downcast::<T>()
    }

    /// Borrowing downcast.
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        self.as_any_ref().downcast_ref::<T>()
    }

    /// True if the payload is a `T`.
    pub fn is<T: Any>(&self) -> bool {
        self.as_any_ref().is::<T>()
    }
}

/// A state machine reacting to simulation stimuli.
///
/// Handlers must not block or loop on wall-clock anything; all waiting is
/// expressed as timers.
pub trait Component: 'static {
    /// Called once when the component is added to a live node (including on
    /// re-creation after a node restart).
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// A message arrived from `from`.
    fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: Addr, _msg: AnyMsg) {}

    /// A timer set via [`Ctx::set_timer`] fired. `tag` is the caller-chosen
    /// discriminator passed at scheduling time.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _timer: TimerId, _tag: u64) {}

    /// The component is being torn down (graceful kill, *not* called on
    /// node crash — crashes are abrupt by design).
    fn on_stop(&mut self, _ctx: &mut Ctx<'_>) {}
}

/// An effect requested by a handler, applied by the kernel afterwards.
pub(crate) enum Effect {
    Send {
        to: Addr,
        msg: AnyMsg,
    },
    SendLocal {
        to: Addr,
        msg: AnyMsg,
    },
    SendBulk {
        to: Addr,
        bytes: u64,
        msg: AnyMsg,
    },
    SetTimer {
        id: TimerId,
        after: Duration,
        tag: u64,
    },
    CancelTimer {
        id: TimerId,
    },
    Spawn {
        node: NodeId,
        name: String,
        comp: Box<dyn Component>,
        id: CompId,
        /// Set when `id` was recycled from the transient free list: the
        /// epoch the new incarnation must start at so the old incarnation's
        /// timers stay dead.
        epoch: Option<u32>,
    },
    Kill {
        addr: Addr,
    },
    KillTransient {
        addr: Addr,
    },
    CrashNode {
        node: NodeId,
    },
    RestartNode {
        node: NodeId,
        after: Duration,
    },
    Halt,
}

/// The handler-side view of the world.
///
/// Owns buffered effects plus direct (safe, order-independent) access to the
/// stable store, RNG, metrics and trace sinks.
pub struct Ctx<'w> {
    pub(crate) now: SimTime,
    pub(crate) self_addr: Addr,
    pub(crate) effects: Vec<Effect>,
    pub(crate) store: &'w mut StableStore,
    pub(crate) rng: &'w mut SimRng,
    pub(crate) metrics: &'w mut Metrics,
    pub(crate) trace: &'w mut TraceSink,
    pub(crate) next_timer: &'w mut u64,
    pub(crate) next_comp: &'w mut u32,
    pub(crate) retired: &'w std::collections::HashMap<(NodeId, String), CompId>,
    /// `(id, next_epoch)` pairs released by [`Ctx::kill_transient`], reused
    /// by [`Ctx::spawn`] when the world runs with
    /// [`crate::world::Config::reuse_comp_ids`]. `None` when recycling is
    /// off (the default).
    pub(crate) free_comps: Option<&'w mut Vec<(u32, u32)>>,
    /// Sequence number of the kernel event currently being processed;
    /// stamped onto trace records as their `id`.
    pub(crate) event_id: u64,
    /// That event's nearest observable causal ancestor (see
    /// [`crate::trace::TraceEvent::cause`]).
    pub(crate) event_cause: u64,
    /// The shard this component's node is assigned to.
    pub(crate) shard: ShardId,
}

impl<'w> Ctx<'w> {
    /// The current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This component's own address.
    #[inline]
    pub fn self_addr(&self) -> Addr {
        self.self_addr
    }

    /// The node this component runs on.
    #[inline]
    pub fn node(&self) -> NodeId {
        self.self_addr.node
    }

    /// The kernel shard executing this handler (the shard its node is
    /// assigned to). [`ShardId::HOME`] unless the world was partitioned.
    #[inline]
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// Send a message to `to` through the network model (latency, loss and
    /// partitions apply; same-node sends use the loopback path and are
    /// reliable).
    pub fn send<M: Message>(&mut self, to: Addr, msg: M) {
        self.effects.push(Effect::Send {
            to,
            msg: Box::new(msg),
        });
    }

    /// Send `bytes` of bulk data to `to`, delivering `msg` when the
    /// transfer completes. In the legacy (uncontended) model the delivery
    /// delay is one latency sample plus `bytes / bandwidth` for the link,
    /// and loss/partition rules apply once, to the whole transfer,
    /// regardless of its size. When the world declares flow links
    /// (`Network::add_flow_link`) and the endpoints are on different
    /// nodes, the transfer becomes a *flow* instead: it shares routed
    /// link capacity max-min fairly with concurrent flows, loss compounds
    /// per megabyte, and a partition or link failure mid-transfer aborts
    /// it — the *sender* then receives a
    /// [`crate::network::flow::BulkAborted`] carrying the undelivered
    /// payload, so protocols can retry.
    pub fn send_bulk<M: Message>(&mut self, to: Addr, bytes: u64, msg: M) {
        self.effects.push(Effect::SendBulk {
            to,
            bytes,
            msg: Box::new(msg),
        });
    }

    /// Send a message to a component on this same node, bypassing the
    /// network model entirely (delivered at `now` + loopback latency,
    /// never lost).
    pub fn send_local<M: Message>(&mut self, to: Addr, msg: M) {
        debug_assert_eq!(to.node, self.self_addr.node, "send_local across nodes");
        self.effects.push(Effect::SendLocal {
            to,
            msg: Box::new(msg),
        });
    }

    /// Schedule a timer to fire on this component after `after`, carrying
    /// `tag` back to [`Component::on_timer`].
    pub fn set_timer(&mut self, after: Duration, tag: u64) -> TimerId {
        let id = TimerId(*self.next_timer);
        *self.next_timer += 1;
        self.effects.push(Effect::SetTimer { id, after, tag });
        id
    }

    /// Cancel a previously scheduled timer. Cancelling an already-fired or
    /// unknown timer is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.effects.push(Effect::CancelTimer { id });
    }

    /// Create a new component on `node`. Its `on_start` runs before any
    /// other pending event. Returns the address it will have.
    ///
    /// Re-spawning under a name that previously existed on the node takes
    /// over the old address (a restarted daemon listens on the same
    /// host:port), with a fresh timer epoch.
    pub fn spawn<C: Component>(&mut self, node: NodeId, name: &str, comp: C) -> Addr {
        let (id, epoch) = match self.retired.get(&(node, name.to_string())) {
            Some(&old) => (old, None),
            None => match self.free_comps.as_mut().and_then(|f| f.pop()) {
                Some((recycled, epoch)) => (CompId(recycled), Some(epoch)),
                None => {
                    let id = CompId(*self.next_comp);
                    *self.next_comp += 1;
                    (id, None)
                }
            },
        };
        self.effects.push(Effect::Spawn {
            node,
            name: name.to_string(),
            comp: Box::new(comp),
            id,
            epoch,
        });
        Addr { node, comp: id }
    }

    /// Gracefully remove a component (its `on_stop` runs).
    pub fn kill(&mut self, addr: Addr) {
        self.effects.push(Effect::Kill { addr });
    }

    /// Gracefully remove a *transient* component (its `on_stop` runs)
    /// without retiring its name for address reuse. Use for per-job
    /// ephemera that are never re-spawned under the same name — e.g. a GRAM
    /// JobManager after its done-ack — so a million-job campaign doesn't
    /// accumulate a retired-name and epoch entry per finished job.
    /// Outstanding timers and in-flight messages to the dead address are
    /// still dropped (the component slot is empty). A later spawn under the
    /// same name gets a *fresh* address rather than the old one; callers
    /// must only use this where that distinction cannot matter.
    pub fn kill_transient(&mut self, addr: Addr) {
        self.effects.push(Effect::KillTransient { addr });
    }

    /// Abruptly crash a node: every component on it loses its in-memory
    /// state; messages in flight to it will be dropped at delivery time.
    pub fn crash_node(&mut self, node: NodeId) {
        self.effects.push(Effect::CrashNode { node });
    }

    /// Restart a crashed node after `after`; its boot hook re-creates
    /// components from stable storage.
    pub fn restart_node(&mut self, node: NodeId, after: Duration) {
        self.effects.push(Effect::RestartNode { node, after });
    }

    /// Stop the simulation after the current event.
    pub fn halt(&mut self) {
        self.effects.push(Effect::Halt);
    }

    /// Node-scoped stable storage (survives crashes).
    pub fn store(&mut self) -> &mut StableStore {
        self.store
    }

    /// The world's deterministic RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Metrics sink (counters, gauges, histograms).
    pub fn metrics(&mut self) -> &mut Metrics {
        self.metrics
    }

    /// Emit a trace event attributed to this component.
    ///
    /// The detail string is built by the caller even when tracing is off;
    /// prefer [`Ctx::trace_with`] whenever building it allocates (e.g. any
    /// `format!`), so disabled tracing costs nothing.
    pub fn trace(&mut self, kind: &'static str, detail: impl Into<String>) {
        if !self.trace.is_active() {
            return;
        }
        let (now, addr) = (self.now, self.self_addr);
        self.trace.emit(
            now,
            addr,
            kind,
            detail.into(),
            self.event_id,
            self.event_cause,
        );
    }

    /// Emit a trace event with a lazily built detail string: `detail` runs
    /// only when the sink is collecting or streaming events, so call sites
    /// can use `|| format!(...)` without paying for it in quiet runs.
    pub fn trace_with(&mut self, kind: &'static str, detail: impl FnOnce() -> String) {
        if !self.trace.is_active() {
            return;
        }
        let (now, addr) = (self.now, self.self_addr);
        self.trace
            .emit(now, addr, kind, detail(), self.event_id, self.event_cause);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_downcast() {
        #[derive(Debug, PartialEq)]
        struct Hello(u32);
        let m: AnyMsg = Box::new(Hello(7));
        assert!(m.is::<Hello>());
        assert_eq!(m.downcast_ref::<Hello>(), Some(&Hello(7)));
        let h = m.downcast::<Hello>().unwrap();
        assert_eq!(*h, Hello(7));
    }

    #[test]
    fn message_downcast_wrong_type() {
        #[derive(Debug)]
        struct A;
        #[derive(Debug)]
        struct B;
        let m: AnyMsg = Box::new(A);
        assert!(!m.is::<B>());
        assert!(m.downcast::<B>().is_err());
    }

    #[test]
    fn addr_display() {
        let a = Addr {
            node: NodeId(3),
            comp: CompId(9),
        };
        assert_eq!(format!("{a}"), "n3/c9");
    }
}
