//! Deterministic random number generation and the distributions used by the
//! workload and failure models.
//!
//! All randomness in a simulation flows from a single seeded [`SimRng`].
//! Handlers draw from it through [`crate::component::Ctx::rng`], and since
//! the event loop is single-threaded and deterministic, a seed fully
//! determines a run.

use crate::time::Duration;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// The simulation's random source. A thin wrapper around a seeded [`StdRng`]
/// plus the sampling helpers the grid models need.
#[derive(Clone, Debug)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> SimRng {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child stream. Useful to give a subsystem its
    /// own stream so its draws don't perturb others when configurations
    /// change.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.inner.gen())
    }

    /// Uniform draw in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..hi)
    }

    /// Uniform usize in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }

    /// Uniform float in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.inner.gen_range(lo..hi)
    }

    /// Exponential variate with the given mean (inverse-CDF method).
    pub fn exp_f64(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// Standard normal variate (Box–Muller).
    pub fn normal_f64(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.inner.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Log-normal variate parameterized by the *median* and a shape sigma.
    /// Batch-job service times are classically heavy-tailed; log-normal is a
    /// standard fit for them.
    pub fn lognormal_f64(&mut self, median: f64, sigma: f64) -> f64 {
        debug_assert!(median > 0.0);
        let z = self.normal_f64(0.0, 1.0);
        median * (sigma * z).exp()
    }

    /// Bounded Pareto variate (heavy-tailed job sizes).
    pub fn pareto_f64(&mut self, min: f64, max: f64, alpha: f64) -> f64 {
        debug_assert!(min > 0.0 && max > min && alpha > 0.0);
        let u = self.inner.gen::<f64>();
        let lo = min.powf(-alpha);
        let hi = max.powf(-alpha);
        (lo - u * (lo - hi)).powf(-1.0 / alpha)
    }

    /// Sample a [`Duration`] from a [`Dist`].
    pub fn duration(&mut self, dist: &Dist) -> Duration {
        Duration::from_secs_f64(self.sample(dist))
    }

    /// Sample a raw value (interpreted in seconds for durations) from a
    /// [`Dist`].
    pub fn sample(&mut self, dist: &Dist) -> f64 {
        match *dist {
            Dist::Constant(v) => v,
            Dist::Uniform { lo, hi } => {
                if hi <= lo {
                    lo
                } else {
                    self.range_f64(lo, hi)
                }
            }
            Dist::Exp { mean } => self.exp_f64(mean),
            Dist::Normal { mean, std_dev } => self.normal_f64(mean, std_dev).max(0.0),
            Dist::LogNormal { median, sigma } => self.lognormal_f64(median, sigma),
            Dist::Pareto { min, max, alpha } => self.pareto_f64(min, max, alpha),
        }
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

/// A named distribution, used throughout the workload generators and the
/// network / failure models so experiments can be configured declaratively.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Dist {
    /// Always the same value.
    Constant(f64),
    /// Uniform over `[lo, hi)`.
    Uniform {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// Exponential with the given mean.
    Exp {
        /// The mean (1/rate).
        mean: f64,
    },
    /// Normal, truncated at zero when sampled as a duration.
    Normal {
        /// Location.
        mean: f64,
        /// Scale.
        std_dev: f64,
    },
    /// Log-normal parameterized by median and shape.
    LogNormal {
        /// The distribution's median (`exp(mu)`).
        median: f64,
        /// Shape parameter (sigma of the underlying normal).
        sigma: f64,
    },
    /// Bounded Pareto over `[min, max]` with tail index `alpha`.
    Pareto {
        /// Lower bound.
        min: f64,
        /// Upper bound.
        max: f64,
        /// Tail index (smaller = heavier tail).
        alpha: f64,
    },
}

impl Dist {
    /// A lower bound no sample can undershoot. This is the *lookahead* the
    /// sharded kernel extracts from a link-latency distribution: a message
    /// sent now can never arrive sooner than `now + min_bound`, so a shard
    /// may safely execute local events up to every peer's clock plus this
    /// bound. Unbounded-below-at-zero distributions (Exp, Normal,
    /// LogNormal) return 0 — correct, if useless for lookahead.
    pub fn min_bound(&self) -> f64 {
        match *self {
            Dist::Constant(v) => v.max(0.0),
            Dist::Uniform { lo, .. } => lo.max(0.0),
            Dist::Exp { .. } | Dist::Normal { .. } | Dist::LogNormal { .. } => 0.0,
            Dist::Pareto { min, .. } => min.max(0.0),
        }
    }

    /// The distribution's mean, where it has a closed form (used for
    /// reporting and for sizing experiments).
    pub fn mean(&self) -> f64 {
        match *self {
            Dist::Constant(v) => v,
            Dist::Uniform { lo, hi } => (lo + hi) / 2.0,
            Dist::Exp { mean } => mean,
            Dist::Normal { mean, .. } => mean,
            Dist::LogNormal { median, sigma } => median * (sigma * sigma / 2.0).exp(),
            Dist::Pareto { min, max, alpha } => {
                // Mean of the bounded Pareto on [min, max].
                if (alpha - 1.0).abs() < 1e-12 {
                    (max / min).ln() / (1.0 / min - 1.0 / max)
                } else {
                    min.powf(alpha) / (1.0 - (min / max).powf(alpha))
                        * (alpha / (alpha - 1.0))
                        * (1.0 / min.powf(alpha - 1.0) - 1.0 / max.powf(alpha - 1.0))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fork_streams_differ() {
        let mut a = SimRng::new(7);
        let mut child = a.fork();
        let xs: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..10).map(|_| child.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-3.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = SimRng::new(99);
        let n = 20_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| r.exp_f64(mean)).sum();
        let m = sum / n as f64;
        assert!((m - mean).abs() < 0.2, "sample mean {m}");
    }

    #[test]
    fn normal_moments_close() {
        let mut r = SimRng::new(5);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal_f64(3.0, 2.0)).collect();
        let m = xs.iter().sum::<f64>() / n as f64;
        let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n as f64;
        assert!((m - 3.0).abs() < 0.1, "mean {m}");
        assert!((v - 4.0).abs() < 0.3, "var {v}");
    }

    #[test]
    fn pareto_bounded() {
        let mut r = SimRng::new(12);
        for _ in 0..10_000 {
            let x = r.pareto_f64(1.0, 100.0, 1.2);
            assert!((1.0..=100.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn duration_sampling_nonnegative() {
        let mut r = SimRng::new(3);
        let d = Dist::Normal {
            mean: 0.001,
            std_dev: 10.0,
        };
        for _ in 0..1000 {
            // Must clamp to zero rather than panic on negative draws.
            let _ = r.duration(&d);
        }
    }

    #[test]
    fn pareto_mean_formula_matches_samples() {
        let mut r = SimRng::new(21);
        let d = Dist::Pareto {
            min: 2.0,
            max: 200.0,
            alpha: 1.5,
        };
        let n = 100_000;
        let m: f64 = (0..n).map(|_| r.sample(&d)).sum::<f64>() / n as f64;
        let expect = d.mean();
        assert!(
            (m - expect).abs() / expect < 0.05,
            "sample mean {m}, analytic {expect}"
        );
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(4);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
