//! Stable storage.
//!
//! The paper's fault-tolerance story (§4.2) rests on two persistent stores:
//! the Condor-G scheduler's job queue on the submit machine and the GRAM
//! client-side job log. [`StableStore`] models a per-node durable key/value
//! store: it survives node crashes (a crash wipes component memory, not the
//! store), and components re-read it from their boot hooks on restart.
//!
//! Values are byte strings; components serialize their state with the
//! [`crate::codec`] binary codec.
//!
//! Keys are shard-scoped: the store holds one partition per kernel shard
//! and routes every `(node, key)` access through the node→shard assignment
//! mirrored from the world. Since keys are already node-scoped and a node
//! lives on exactly one shard, the partitioning is invisible to components
//! — it exists so each shard's executor touches only its own map (and so a
//! future truly-parallel executor can hand each shard its partition without
//! locking). A single-shard world keeps everything in partition 0, exactly
//! the old layout.

use crate::component::{NodeId, ShardId};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::collections::BTreeMap;

/// Durable, crash-surviving per-node key/value storage.
///
/// Keys are `(node, name)` within a per-shard partition; `BTreeMap`s keep
/// iteration deterministic.
#[derive(Debug)]
pub struct StableStore {
    /// One partition per shard. Never empty.
    parts: Vec<BTreeMap<(NodeId, String), Vec<u8>>>,
    /// Node → shard assignment, mirrored from the world's node table.
    /// Unlisted nodes route to shard 0.
    node_shard: Vec<u32>,
    /// Write count (for reporting stable-storage traffic).
    pub writes: u64,
}

impl Default for StableStore {
    fn default() -> StableStore {
        StableStore::with_shards(1)
    }
}

impl StableStore {
    /// An empty single-shard store.
    pub fn new() -> StableStore {
        StableStore::default()
    }

    /// An empty store with `shards` partitions (at least one).
    pub fn with_shards(shards: usize) -> StableStore {
        StableStore {
            parts: (0..shards.max(1)).map(|_| BTreeMap::new()).collect(),
            node_shard: Vec::new(),
            writes: 0,
        }
    }

    /// Record that `node`'s keys live in `shard`'s partition. Called by the
    /// world as nodes are added; out-of-range shards clamp to the last
    /// partition.
    pub fn assign_shard(&mut self, node: NodeId, shard: ShardId) {
        let idx = node.0 as usize;
        if self.node_shard.len() <= idx {
            self.node_shard.resize(idx + 1, 0);
        }
        self.node_shard[idx] = (shard.0 as usize).min(self.parts.len() - 1) as u32;
    }

    /// The partition index for `node`.
    #[inline]
    fn part(&self, node: NodeId) -> usize {
        let s = self.node_shard.get(node.0 as usize).copied().unwrap_or(0) as usize;
        s.min(self.parts.len() - 1)
    }

    /// Write raw bytes under `(node, key)`.
    pub fn put_bytes(&mut self, node: NodeId, key: &str, value: Vec<u8>) {
        self.writes += 1;
        let p = self.part(node);
        self.parts[p].insert((node, key.to_string()), value);
    }

    /// Read raw bytes.
    pub fn get_bytes(&self, node: NodeId, key: &str) -> Option<&[u8]> {
        self.parts[self.part(node)]
            .get(&(node, key.to_string()))
            .map(Vec::as_slice)
    }

    /// Serialize `value` with the binary codec and store it.
    pub fn put<T: Serialize>(&mut self, node: NodeId, key: &str, value: &T) {
        let bytes = crate::codec::to_bytes(value).expect("stable store serialize");
        self.put_bytes(node, key, bytes);
    }

    /// Load and deserialize a value; `None` if the key is absent.
    ///
    /// Panics if the stored bytes do not decode as `T` — a schema mismatch
    /// is a programming error, not a runtime condition.
    pub fn get<T: DeserializeOwned>(&self, node: NodeId, key: &str) -> Option<T> {
        self.get_bytes(node, key)
            .map(|b| crate::codec::from_bytes(b).expect("stable store deserialize"))
    }

    /// Remove a key. Returns true if it was present.
    pub fn remove(&mut self, node: NodeId, key: &str) -> bool {
        let p = self.part(node);
        self.parts[p].remove(&(node, key.to_string())).is_some()
    }

    /// All keys on `node` that start with `prefix`, in sorted order.
    pub fn keys_with_prefix(&self, node: NodeId, prefix: &str) -> Vec<String> {
        self.parts[self.part(node)]
            .range((node, prefix.to_string())..)
            .take_while(|((n, k), _)| *n == node && k.starts_with(prefix))
            .map(|((_, k), _)| k.clone())
            .collect()
    }

    /// Remove every key on `node` with the given prefix; returns how many.
    pub fn remove_prefix(&mut self, node: NodeId, prefix: &str) -> usize {
        let keys = self.keys_with_prefix(node, prefix);
        let p = self.part(node);
        for k in &keys {
            self.parts[p].remove(&(node, k.clone()));
        }
        keys.len()
    }

    /// Number of stored keys across all nodes.
    pub fn len(&self) -> usize {
        self.parts.iter().map(BTreeMap::len).sum()
    }

    /// Number of stored keys in one shard's partition (0 if out of range).
    pub fn shard_len(&self, shard: ShardId) -> usize {
        self.parts.get(shard.0 as usize).map_or(0, BTreeMap::len)
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct QueueState {
        jobs: Vec<u64>,
        epoch: u32,
    }

    #[test]
    fn typed_round_trip() {
        let mut s = StableStore::new();
        let st = QueueState {
            jobs: vec![1, 2, 3],
            epoch: 9,
        };
        s.put(NodeId(0), "schedd/queue", &st);
        let back: QueueState = s.get(NodeId(0), "schedd/queue").unwrap();
        assert_eq!(back, st);
    }

    #[test]
    fn missing_key_is_none() {
        let s = StableStore::new();
        assert_eq!(s.get::<u32>(NodeId(0), "nope"), None);
    }

    #[test]
    fn keys_are_node_scoped() {
        let mut s = StableStore::new();
        s.put(NodeId(0), "k", &1u32);
        s.put(NodeId(1), "k", &2u32);
        assert_eq!(s.get::<u32>(NodeId(0), "k"), Some(1));
        assert_eq!(s.get::<u32>(NodeId(1), "k"), Some(2));
    }

    #[test]
    fn prefix_scan_sorted_and_scoped() {
        let mut s = StableStore::new();
        s.put(NodeId(0), "job/2", &0u8);
        s.put(NodeId(0), "job/1", &0u8);
        s.put(NodeId(0), "job/10", &0u8);
        s.put(NodeId(0), "log/1", &0u8);
        s.put(NodeId(1), "job/9", &0u8);
        assert_eq!(
            s.keys_with_prefix(NodeId(0), "job/"),
            vec!["job/1", "job/10", "job/2"]
        );
        assert_eq!(s.remove_prefix(NodeId(0), "job/"), 3);
        assert!(s.keys_with_prefix(NodeId(0), "job/").is_empty());
        assert_eq!(s.get::<u8>(NodeId(0), "log/1"), Some(0));
        assert_eq!(s.get::<u8>(NodeId(1), "job/9"), Some(0));
    }

    #[test]
    fn remove_reports_presence() {
        let mut s = StableStore::new();
        s.put(NodeId(0), "x", &5u8);
        assert!(s.remove(NodeId(0), "x"));
        assert!(!s.remove(NodeId(0), "x"));
    }

    #[test]
    fn shard_partitions_route_by_node_and_stay_transparent() {
        let mut s = StableStore::with_shards(3);
        s.assign_shard(NodeId(0), ShardId(0));
        s.assign_shard(NodeId(1), ShardId(2));
        s.put(NodeId(0), "k", &1u32);
        s.put(NodeId(1), "k", &2u32);
        // Reads are partition-transparent.
        assert_eq!(s.get::<u32>(NodeId(0), "k"), Some(1));
        assert_eq!(s.get::<u32>(NodeId(1), "k"), Some(2));
        // But the data physically lives in the assigned partition.
        assert_eq!(s.shard_len(ShardId(0)), 1);
        assert_eq!(s.shard_len(ShardId(1)), 0);
        assert_eq!(s.shard_len(ShardId(2)), 1);
        assert_eq!(s.len(), 2);
        // Prefix scans stay node-scoped within the partition.
        assert_eq!(s.keys_with_prefix(NodeId(1), "k"), vec!["k"]);
        // Unassigned nodes and out-of-range shards fall back safely.
        s.put(NodeId(9), "k", &3u32);
        assert_eq!(s.get::<u32>(NodeId(9), "k"), Some(3));
        s.assign_shard(NodeId(9), ShardId(99));
        assert_eq!(s.get::<u32>(NodeId(9), "k"), None, "moved partitions");
    }
}
