//! Stable storage.
//!
//! The paper's fault-tolerance story (§4.2) rests on two persistent stores:
//! the Condor-G scheduler's job queue on the submit machine and the GRAM
//! client-side job log. [`StableStore`] models a per-node durable key/value
//! store: it survives node crashes (a crash wipes component memory, not the
//! store), and components re-read it from their boot hooks on restart.
//!
//! Values are byte strings; components serialize their state with the
//! [`crate::codec`] binary codec.

use crate::component::NodeId;
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::collections::BTreeMap;

/// Durable, crash-surviving per-node key/value storage.
///
/// Keys are `(node, name)`; a `BTreeMap` keeps iteration deterministic.
#[derive(Debug, Default)]
pub struct StableStore {
    data: BTreeMap<(NodeId, String), Vec<u8>>,
    /// Write count (for reporting stable-storage traffic).
    pub writes: u64,
}

impl StableStore {
    /// An empty store.
    pub fn new() -> StableStore {
        StableStore::default()
    }

    /// Write raw bytes under `(node, key)`.
    pub fn put_bytes(&mut self, node: NodeId, key: &str, value: Vec<u8>) {
        self.writes += 1;
        self.data.insert((node, key.to_string()), value);
    }

    /// Read raw bytes.
    pub fn get_bytes(&self, node: NodeId, key: &str) -> Option<&[u8]> {
        self.data.get(&(node, key.to_string())).map(Vec::as_slice)
    }

    /// Serialize `value` with the binary codec and store it.
    pub fn put<T: Serialize>(&mut self, node: NodeId, key: &str, value: &T) {
        let bytes = crate::codec::to_bytes(value).expect("stable store serialize");
        self.put_bytes(node, key, bytes);
    }

    /// Load and deserialize a value; `None` if the key is absent.
    ///
    /// Panics if the stored bytes do not decode as `T` — a schema mismatch
    /// is a programming error, not a runtime condition.
    pub fn get<T: DeserializeOwned>(&self, node: NodeId, key: &str) -> Option<T> {
        self.get_bytes(node, key)
            .map(|b| crate::codec::from_bytes(b).expect("stable store deserialize"))
    }

    /// Remove a key. Returns true if it was present.
    pub fn remove(&mut self, node: NodeId, key: &str) -> bool {
        self.data.remove(&(node, key.to_string())).is_some()
    }

    /// All keys on `node` that start with `prefix`, in sorted order.
    pub fn keys_with_prefix(&self, node: NodeId, prefix: &str) -> Vec<String> {
        self.data
            .range((node, prefix.to_string())..)
            .take_while(|((n, k), _)| *n == node && k.starts_with(prefix))
            .map(|((_, k), _)| k.clone())
            .collect()
    }

    /// Remove every key on `node` with the given prefix; returns how many.
    pub fn remove_prefix(&mut self, node: NodeId, prefix: &str) -> usize {
        let keys = self.keys_with_prefix(node, prefix);
        for k in &keys {
            self.data.remove(&(node, k.clone()));
        }
        keys.len()
    }

    /// Number of stored keys across all nodes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct QueueState {
        jobs: Vec<u64>,
        epoch: u32,
    }

    #[test]
    fn typed_round_trip() {
        let mut s = StableStore::new();
        let st = QueueState {
            jobs: vec![1, 2, 3],
            epoch: 9,
        };
        s.put(NodeId(0), "schedd/queue", &st);
        let back: QueueState = s.get(NodeId(0), "schedd/queue").unwrap();
        assert_eq!(back, st);
    }

    #[test]
    fn missing_key_is_none() {
        let s = StableStore::new();
        assert_eq!(s.get::<u32>(NodeId(0), "nope"), None);
    }

    #[test]
    fn keys_are_node_scoped() {
        let mut s = StableStore::new();
        s.put(NodeId(0), "k", &1u32);
        s.put(NodeId(1), "k", &2u32);
        assert_eq!(s.get::<u32>(NodeId(0), "k"), Some(1));
        assert_eq!(s.get::<u32>(NodeId(1), "k"), Some(2));
    }

    #[test]
    fn prefix_scan_sorted_and_scoped() {
        let mut s = StableStore::new();
        s.put(NodeId(0), "job/2", &0u8);
        s.put(NodeId(0), "job/1", &0u8);
        s.put(NodeId(0), "job/10", &0u8);
        s.put(NodeId(0), "log/1", &0u8);
        s.put(NodeId(1), "job/9", &0u8);
        assert_eq!(
            s.keys_with_prefix(NodeId(0), "job/"),
            vec!["job/1", "job/10", "job/2"]
        );
        assert_eq!(s.remove_prefix(NodeId(0), "job/"), 3);
        assert!(s.keys_with_prefix(NodeId(0), "job/").is_empty());
        assert_eq!(s.get::<u8>(NodeId(0), "log/1"), Some(0));
        assert_eq!(s.get::<u8>(NodeId(1), "job/9"), Some(0));
    }

    #[test]
    fn remove_reports_presence() {
        let mut s = StableStore::new();
        s.put(NodeId(0), "x", &5u8);
        assert!(s.remove(NodeId(0), "x"));
        assert!(!s.remove(NodeId(0), "x"));
    }
}
