//! Execution tracing.
//!
//! Traces serve two purposes: the determinism tests compare whole traces
//! across runs, and the Figure-1/Figure-2 experiments print the protocol
//! "ladder" (who sent what to whom, and which state transitions followed) to
//! show the reproduction walks the same path as the paper's diagrams.

use crate::component::Addr;
use crate::time::SimTime;
use std::fmt;

/// One trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// When it happened.
    pub time: SimTime,
    /// The component it is attributed to.
    pub addr: Addr,
    /// Machine-matchable kind, e.g. `"gram.submit"` or `"job.state"`.
    pub kind: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>12}] {:>8} {:<24} {}", self.time, self.addr.to_string(), self.kind, self.detail)
    }
}

/// Collects trace events. Disabled by default (tracing a week-long campaign
/// would allocate heavily); experiments that need the ladder enable it.
#[derive(Debug, Default)]
pub struct TraceSink {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl TraceSink {
    /// A sink in the given state.
    pub fn new(enabled: bool) -> TraceSink {
        TraceSink { enabled, events: Vec::new() }
    }

    /// Turn collection on/off.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether events are being collected.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event (no-op when disabled).
    pub fn emit(&mut self, time: SimTime, addr: Addr, kind: &'static str, detail: String) {
        if self.enabled {
            self.events.push(TraceEvent { time, addr, kind, detail });
        }
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events of a particular kind.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Drop all recorded events.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{CompId, NodeId};

    fn addr() -> Addr {
        Addr { node: NodeId(0), comp: CompId(1) }
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let mut t = TraceSink::new(false);
        t.emit(SimTime(1), addr(), "x", "y".into());
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_sink_records_in_order() {
        let mut t = TraceSink::new(true);
        t.emit(SimTime(1), addr(), "a", "1".into());
        t.emit(SimTime(2), addr(), "b", "2".into());
        t.emit(SimTime(3), addr(), "a", "3".into());
        assert_eq!(t.events().len(), 3);
        let kinds: Vec<_> = t.of_kind("a").map(|e| e.detail.as_str()).collect();
        assert_eq!(kinds, vec!["1", "3"]);
    }

    #[test]
    fn display_formats() {
        let e = TraceEvent { time: SimTime(1_500_000), addr: addr(), kind: "k", detail: "d".into() };
        let s = format!("{e}");
        assert!(s.contains("1.500s"));
        assert!(s.contains("n0/c1"));
        assert!(s.contains('k'));
    }
}
