//! Execution tracing.
//!
//! Traces serve three purposes: the determinism tests compare whole traces
//! across runs, the Figure-1/Figure-2 experiments print the protocol
//! "ladder" (who sent what to whom, and which state transitions followed) to
//! show the reproduction walks the same path as the paper's diagrams, and
//! the [`crate::obs`] layer turns them into per-job lifecycle spans and
//! exportable timelines.
//!
//! The sink has two delivery paths:
//!
//! * an in-memory vector (`enabled`) — unbounded, convenient for tests and
//!   short experiments that inspect [`TraceSink::events`] afterwards;
//! * pluggable [`TraceSubscriber`]s — each event is offered to every
//!   subscriber as it is emitted, so a week-long campaign can stream to a
//!   JSONL file or keep only a bounded ring of recent events without the
//!   unbounded vector ever being turned on.

use crate::component::Addr;
use crate::time::SimTime;
use std::fmt;

/// One trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// When it happened.
    pub time: SimTime,
    /// The component it is attributed to.
    pub addr: Addr,
    /// Machine-matchable kind, e.g. `"gram.submit"` or `"job.state"`.
    pub kind: &'static str,
    /// Human-readable detail.
    pub detail: String,
    /// Kernel event id: the sequence number of the event during whose
    /// processing this record was emitted. Several records can share one
    /// id (one handler, many traces); together with `cause` they form the
    /// happens-before DAG reconstructed by [`crate::obs::causality`].
    pub id: u64,
    /// The id of the nearest *observable* causal ancestor event — the most
    /// recent event on this record's trigger chain that itself emitted a
    /// trace record — or [`NO_CAUSE`] for externally injected stimuli
    /// (fault plans, initial posts).
    pub cause: u64,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12}] {:>8} {:<24} {}",
            self.time,
            self.addr.to_string(),
            self.kind,
            self.detail
        )
    }
}

/// A consumer of trace events, registered with [`TraceSink::subscribe`].
///
/// Subscribers see every emitted event (do their own filtering via
/// [`crate::obs::Filtered`]) and run regardless of whether the sink's
/// in-memory vector is enabled — that is what keeps memory bounded on long
/// campaigns.
pub trait TraceSubscriber {
    /// Called once per emitted event, in emission order.
    fn on_event(&mut self, event: &TraceEvent);

    /// Flush any buffered output (e.g. an underlying file). Called by
    /// [`TraceSink::flush`] at end of run; default is a no-op.
    fn flush(&mut self) {}
}

/// Collects trace events and fans them out to subscribers.
///
/// The in-memory vector is disabled by default (tracing a week-long campaign
/// would allocate heavily); experiments that need the full ladder enable it,
/// campaigns attach bounded subscribers instead.
#[derive(Default)]
pub struct TraceSink {
    enabled: bool,
    events: Vec<TraceEvent>,
    subscribers: Vec<Box<dyn TraceSubscriber>>,
    /// Total records emitted (vector + subscribers). The kernel compares
    /// this across a handler to decide whether the event being processed
    /// was *observable* — i.e. whether downstream events should name it as
    /// their `cause` or inherit its own. Never incremented when the sink
    /// is inactive, so causality costs nothing with tracing off.
    emitted: u64,
}

impl fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceSink")
            .field("enabled", &self.enabled)
            .field("events", &self.events.len())
            .field("subscribers", &self.subscribers.len())
            .finish()
    }
}

impl TraceSink {
    /// A sink in the given state, with no subscribers.
    pub fn new(enabled: bool) -> TraceSink {
        TraceSink {
            enabled,
            events: Vec::new(),
            subscribers: Vec::new(),
            emitted: 0,
        }
    }

    /// Turn in-memory collection on/off (subscribers are unaffected).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether events are being collected into the in-memory vector.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Whether an emitted event would go anywhere at all (collected in
    /// memory or streamed to a subscriber). Callers use this to skip
    /// building detail strings entirely — see [`crate::Ctx::trace_with`].
    pub fn is_active(&self) -> bool {
        self.enabled || !self.subscribers.is_empty()
    }

    /// Register a subscriber; it sees every event emitted from now on.
    pub fn subscribe(&mut self, sub: Box<dyn TraceSubscriber>) {
        self.subscribers.push(sub);
    }

    /// Number of registered subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.len()
    }

    /// Flush all subscribers (call at end of run before reading exports).
    pub fn flush(&mut self) {
        for sub in &mut self.subscribers {
            sub.flush();
        }
    }

    /// Record an event (no-op when disabled and no subscriber is attached).
    /// `id` is the kernel event being processed at emission time and
    /// `cause` its nearest observable ancestor (see [`TraceEvent`]).
    pub fn emit(
        &mut self,
        time: SimTime,
        addr: Addr,
        kind: &'static str,
        detail: String,
        id: u64,
        cause: u64,
    ) {
        if !self.enabled && self.subscribers.is_empty() {
            return;
        }
        self.emitted += 1;
        let event = TraceEvent {
            time,
            addr,
            kind,
            detail,
            id,
            cause,
        };
        for sub in &mut self.subscribers {
            sub.on_event(&event);
        }
        if self.enabled {
            self.events.push(event);
        }
    }

    /// Total records emitted so far (whether retained in memory or only
    /// streamed to subscribers). Monotone; the kernel samples it around
    /// each handler to detect observable events.
    pub fn emitted_count(&self) -> u64 {
        self.emitted
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events of a particular kind.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Drop all recorded events (subscribers keep what they already saw).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{CompId, NodeId};
    use crate::event::NO_CAUSE;

    fn addr() -> Addr {
        Addr {
            node: NodeId(0),
            comp: CompId(1),
        }
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let mut t = TraceSink::new(false);
        t.emit(SimTime(1), addr(), "x", "y".into(), 0, NO_CAUSE);
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_sink_records_in_order() {
        let mut t = TraceSink::new(true);
        t.emit(SimTime(1), addr(), "a", "1".into(), 0, NO_CAUSE);
        t.emit(SimTime(2), addr(), "b", "2".into(), 1, 0);
        t.emit(SimTime(3), addr(), "a", "3".into(), 2, 0);
        assert_eq!(t.events().len(), 3);
        let kinds: Vec<_> = t.of_kind("a").map(|e| e.detail.as_str()).collect();
        assert_eq!(kinds, vec!["1", "3"]);
    }

    #[test]
    fn display_formats() {
        let e = TraceEvent {
            time: SimTime(1_500_000),
            addr: addr(),
            kind: "k",
            detail: "d".into(),
            id: 7,
            cause: NO_CAUSE,
        };
        let s = format!("{e}");
        assert!(s.contains("1.500s"));
        assert!(s.contains("n0/c1"));
        assert!(s.contains('k'));
    }

    #[test]
    fn subscribers_see_events_even_when_vector_disabled() {
        struct Counter(std::rc::Rc<std::cell::Cell<u32>>);
        impl TraceSubscriber for Counter {
            fn on_event(&mut self, _event: &TraceEvent) {
                self.0.set(self.0.get() + 1);
            }
        }
        let count = std::rc::Rc::new(std::cell::Cell::new(0));
        let mut t = TraceSink::new(false);
        t.subscribe(Box::new(Counter(count.clone())));
        t.emit(SimTime(1), addr(), "a", "1".into(), 0, NO_CAUSE);
        t.emit(SimTime(2), addr(), "b", "2".into(), 1, 0);
        assert!(t.events().is_empty(), "vector stays off");
        assert_eq!(count.get(), 2, "subscriber saw both events");
    }
}
