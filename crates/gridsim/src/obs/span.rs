//! Job-lifecycle spans: stitching trace events into per-job timelines.
//!
//! Protocol components emit *span milestones* — trace events of kind
//! `"span"` whose detail is a space-separated `key=value` list — at each
//! boundary of the Figure-1 pipeline:
//!
//! | milestone       | emitted by          | meaning                                   |
//! |-----------------|---------------------|-------------------------------------------|
//! | `submit`        | `core::GridManager` | two-phase GRAM submit sent (opens attempt)|
//! | `auth`          | `gram::Gatekeeper`  | GSI authentication + authorization passed |
//! | `commit`        | `gram::JobManager`  | commit received, stage-in begins          |
//! | `stage_in_done` | `gram::JobManager`  | executable staged, handed to site LRM     |
//! | `active`        | `gram::JobManager`  | site scheduler started the job            |
//! | `stage_out`     | `gram::JobManager`  | output staging back to the client began   |
//! | `done`/`failed`/`removed` | `core::GridManager` | terminal state reported to user |
//!
//! Identity is threaded the way the protocols thread it: the `submit`
//! milestone carries `job=<id> seq=<n>`, the gatekeeper's `auth` carries
//! `seq=<n> contact=<c>`, and JobManager milestones carry `contact=<c>` —
//! the [`SpanCollector`] joins them back into per-job [`JobSpan`]s with one
//! [`AttemptSpan`] per (re)submission. GASS transfers annotate the span
//! they belong to via the job-stdout path convention.
//!
//! The collector doubles as a [`TraceSubscriber`], so spans can be built
//! online from a bounded pipeline, or offline from a recorded event vector
//! via [`SpanCollector::from_events`].

use crate::metrics::Metrics;
use crate::time::{Duration, SimTime};
use crate::trace::{TraceEvent, TraceSubscriber};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The trace-event kind span milestones are emitted under.
pub const SPAN_KIND: &str = "span";

/// Pipeline phases, in order. Each phase is the interval ending at the
/// correspondingly named milestone (e.g. `Auth` spans submit→auth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanPhase {
    /// Submit sent → gatekeeper authenticated (network + GSI handshake).
    Auth,
    /// Authenticated → commit received by the JobManager (two-phase commit).
    Commit,
    /// Commit → executable/stdin staged and job handed to the site LRM.
    StageIn,
    /// Handed to the LRM → the site scheduler started it (queue wait).
    Queue,
    /// Started → finished executing.
    Execute,
    /// Execution done → output staged back to the client.
    StageOut,
}

impl SpanPhase {
    /// Metric-friendly name (`span.phase.<name>` histograms).
    pub fn name(self) -> &'static str {
        match self {
            SpanPhase::Auth => "auth",
            SpanPhase::Commit => "commit",
            SpanPhase::StageIn => "stage_in",
            SpanPhase::Queue => "queue",
            SpanPhase::Execute => "execute",
            SpanPhase::StageOut => "stage_out",
        }
    }
}

/// All phases in pipeline order.
pub const PHASES: [SpanPhase; 6] = [
    SpanPhase::Auth,
    SpanPhase::Commit,
    SpanPhase::StageIn,
    SpanPhase::Queue,
    SpanPhase::Execute,
    SpanPhase::StageOut,
];

/// The phase spanned by a consecutive milestone pair. `done` after
/// `active` means execution with no output staging, so the pair decides.
fn phase_between(prev: &str, next: &str) -> Option<SpanPhase> {
    Some(match (prev, next) {
        ("submit", "auth") => SpanPhase::Auth,
        ("auth", "commit") => SpanPhase::Commit,
        ("commit", "stage_in_done") => SpanPhase::StageIn,
        ("stage_in_done", "active") => SpanPhase::Queue,
        ("active", "stage_out") | ("active", "done") => SpanPhase::Execute,
        ("stage_out", "done") => SpanPhase::StageOut,
        _ => return None,
    })
}

/// One (re)submission attempt of a job.
#[derive(Debug, Clone, Default)]
pub struct AttemptSpan {
    /// GRAM submission sequence number.
    pub seq: Option<u64>,
    /// Site the broker chose.
    pub site: Option<String>,
    /// Job contact assigned by the gatekeeper.
    pub contact: Option<u64>,
    /// Milestones in arrival order: `(name, time)`.
    pub milestones: Vec<(String, SimTime)>,
    /// Bytes of output staged back, from GASS transfer annotations.
    pub staged_out_bytes: u64,
}

impl AttemptSpan {
    /// Time of the named milestone, if reached.
    pub fn at(&self, milestone: &str) -> Option<SimTime> {
        self.milestones
            .iter()
            .find(|(name, _)| name == milestone)
            .map(|&(_, t)| t)
    }

    /// Duration of each completed phase, in pipeline order.
    pub fn phase_durations(&self) -> Vec<(SpanPhase, Duration)> {
        let mut out = Vec::new();
        for pair in self.milestones.windows(2) {
            let (ref prev, start) = pair[0];
            let (ref next, end) = pair[1];
            if let Some(phase) = phase_between(prev, next) {
                out.push((phase, end - start));
            }
        }
        out
    }

    /// The terminal milestone (`done`/`failed`/`removed`), if reached.
    pub fn terminal(&self) -> Option<&str> {
        self.milestones
            .iter()
            .rev()
            .map(|(name, _)| name.as_str())
            .find(|name| matches!(*name, "done" | "failed" | "removed"))
    }
}

/// A job's full lifecycle: one or more attempts, last one authoritative.
#[derive(Debug, Clone, Default)]
pub struct JobSpan {
    /// The job's queue id.
    pub job: u64,
    /// Submission attempts, in order.
    pub attempts: Vec<AttemptSpan>,
}

impl JobSpan {
    /// The last (authoritative) attempt.
    pub fn last_attempt(&self) -> Option<&AttemptSpan> {
        self.attempts.last()
    }

    /// Whether the full submit → done pipeline completed in some attempt.
    pub fn completed(&self) -> bool {
        self.attempts.iter().any(|a| a.terminal() == Some("done"))
    }
}

/// Joins span milestones back into per-job timelines.
///
/// Also a [`TraceSubscriber`]: box a clone of a shared collector into the
/// sink, or feed recorded events through [`SpanCollector::from_events`].
#[derive(Debug, Default)]
pub struct SpanCollector {
    jobs: BTreeMap<u64, JobSpan>,
    /// seq → job, registered by `submit` milestones.
    seq_to_job: BTreeMap<u64, u64>,
    /// contact → job, registered by `auth` milestones.
    contact_to_job: BTreeMap<u64, u64>,
    /// Span events that could not be attributed (unknown seq/contact).
    pub orphans: u64,
}

/// Parse a `key=value` list; values cannot contain spaces (the emitters
/// guarantee that for identity keys; free-text keys go last).
fn field<'a>(detail: &'a str, key: &str) -> Option<&'a str> {
    detail.split_whitespace().find_map(|kv| {
        let (k, v) = kv.split_once('=')?;
        (k == key).then_some(v)
    })
}

impl SpanCollector {
    /// An empty collector.
    pub fn new() -> SpanCollector {
        SpanCollector::default()
    }

    /// Build a collector from recorded events (offline reconstruction).
    pub fn from_events(events: &[TraceEvent]) -> SpanCollector {
        let mut c = SpanCollector::new();
        for e in events {
            c.ingest(e);
        }
        c
    }

    /// All reconstructed job spans, keyed by job id.
    pub fn jobs(&self) -> &BTreeMap<u64, JobSpan> {
        &self.jobs
    }

    /// Feed one event; non-span kinds are ignored.
    pub fn ingest(&mut self, event: &TraceEvent) {
        if event.kind != SPAN_KIND {
            return;
        }
        let detail = event.detail.as_str();
        // GASS transfer annotation: attribute via the stdout-path convention
        // (`/condor_g/out/gj<job>`).
        if field(detail, "phase") == Some("transfer") {
            let Some(path) = field(detail, "path") else {
                return;
            };
            let job: u64 = match path
                .strip_prefix("/condor_g/out/gj")
                .and_then(|s| s.parse().ok())
            {
                Some(job) => job,
                // Stage-in and unrelated transfers carry no job id.
                None => return,
            };
            let bytes: u64 = field(detail, "bytes")
                .and_then(|s| s.parse().ok())
                .unwrap_or(0);
            if let Some(attempt) = self.jobs.get_mut(&job).and_then(|j| j.attempts.last_mut()) {
                attempt.staged_out_bytes += bytes;
            }
            return;
        }
        let Some(milestone) = field(detail, "phase").map(str::to_string) else {
            self.orphans += 1;
            return;
        };
        let seq: Option<u64> = field(detail, "seq").and_then(|s| s.parse().ok());
        let contact: Option<u64> = field(detail, "contact").and_then(|s| s.parse().ok());
        // Resolve the job: directly, via seq, or via contact.
        let job: Option<u64> = field(detail, "job")
            .and_then(|s| s.parse().ok())
            .or_else(|| seq.and_then(|s| self.seq_to_job.get(&s).copied()))
            .or_else(|| contact.and_then(|c| self.contact_to_job.get(&c).copied()));
        let Some(job) = job else {
            self.orphans += 1;
            return;
        };
        let span = self.jobs.entry(job).or_insert_with(|| JobSpan {
            job,
            ..JobSpan::default()
        });
        if milestone == "submit" {
            // A new attempt begins.
            let mut attempt = AttemptSpan {
                seq,
                site: field(detail, "site").map(str::to_string),
                ..AttemptSpan::default()
            };
            attempt.milestones.push((milestone, event.time));
            span.attempts.push(attempt);
            if let Some(seq) = seq {
                self.seq_to_job.insert(seq, job);
            }
            return;
        }
        let Some(attempt) = span.attempts.last_mut() else {
            self.orphans += 1;
            return;
        };
        if milestone == "auth" {
            if let Some(contact) = contact {
                attempt.contact = Some(contact);
                self.contact_to_job.insert(contact, job);
            }
        }
        attempt.milestones.push((milestone, event.time));
    }

    /// Record per-phase duration histograms (`span.phase.<name>`, seconds)
    /// and pipeline counters into `metrics`.
    pub fn report_metrics(&self, metrics: &mut Metrics) {
        for span in self.jobs.values() {
            metrics.incr("span.jobs", 1);
            metrics.incr("span.attempts", span.attempts.len() as u64);
            if span.completed() {
                metrics.incr("span.jobs_completed", 1);
            }
            for attempt in &span.attempts {
                for (phase, d) in attempt.phase_durations() {
                    metrics.observe_duration(&format!("span.phase.{}", phase.name()), d);
                }
                // End-to-end: submit to terminal, when both exist.
                if let (Some((_, start)), Some(term)) =
                    (attempt.milestones.first(), attempt.terminal())
                {
                    if let Some(end) = attempt.at(term) {
                        metrics.observe_duration("span.end_to_end", end - *start);
                    }
                }
            }
        }
    }

    /// Render the reconstructed timelines as a ladder, one job per block —
    /// the generalization of the Figure-1/Figure-2 protocol ladder printer.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for span in self.jobs.values() {
            let _ = writeln!(
                out,
                "gj{} ({} attempt{})",
                span.job,
                span.attempts.len(),
                if span.attempts.len() == 1 { "" } else { "s" }
            );
            for (i, attempt) in span.attempts.iter().enumerate() {
                let site = attempt.site.as_deref().unwrap_or("?");
                let _ = write!(out, "  attempt {} via {site}", i + 1);
                if let Some(seq) = attempt.seq {
                    let _ = write!(out, " (seq {seq}");
                    if let Some(c) = attempt.contact {
                        let _ = write!(out, ", contact jc{c}");
                    }
                    out.push(')');
                }
                out.push('\n');
                let mut prev: Option<SimTime> = None;
                for (name, t) in &attempt.milestones {
                    let _ = write!(out, "    {name:<14} at {t}");
                    if let Some(p) = prev {
                        let _ = write!(out, "  (+{})", *t - p);
                    }
                    out.push('\n');
                    prev = Some(*t);
                }
                if attempt.staged_out_bytes > 0 {
                    let _ = writeln!(out, "    staged out {} bytes", attempt.staged_out_bytes);
                }
            }
        }
        out
    }

    /// A per-phase summary table: `(phase name, samples, mean seconds)`.
    pub fn phase_summary(&self) -> Vec<(&'static str, usize, f64)> {
        let mut acc: BTreeMap<SpanPhase, (usize, f64)> = BTreeMap::new();
        for span in self.jobs.values() {
            for attempt in &span.attempts {
                for (phase, d) in attempt.phase_durations() {
                    let e = acc.entry(phase).or_insert((0, 0.0));
                    e.0 += 1;
                    e.1 += d.as_secs_f64();
                }
            }
        }
        PHASES
            .iter()
            .filter_map(|p| {
                let &(n, sum) = acc.get(p)?;
                Some((p.name(), n, sum / n as f64))
            })
            .collect()
    }
}

impl TraceSubscriber for SpanCollector {
    fn on_event(&mut self, event: &TraceEvent) {
        self.ingest(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{Addr, CompId, NodeId};

    fn span_ev(t: u64, detail: &str) -> TraceEvent {
        TraceEvent {
            time: SimTime(t),
            addr: Addr {
                node: NodeId(0),
                comp: CompId(0),
            },
            kind: SPAN_KIND,
            detail: detail.to_string(),
            id: t,
            cause: crate::event::NO_CAUSE,
        }
    }

    fn full_pipeline() -> Vec<TraceEvent> {
        vec![
            span_ev(1_000_000, "job=0 seq=5 phase=submit site=anl"),
            span_ev(2_000_000, "seq=5 contact=77 phase=auth"),
            span_ev(3_000_000, "contact=77 phase=commit"),
            span_ev(5_000_000, "contact=77 phase=stage_in_done"),
            span_ev(9_000_000, "contact=77 phase=active"),
            span_ev(20_000_000, "contact=77 phase=stage_out"),
            span_ev(
                21_000_000,
                "phase=transfer op=put path=/condor_g/out/gj0 bytes=250000",
            ),
            span_ev(22_000_000, "job=0 phase=done"),
        ]
    }

    #[test]
    fn reconstructs_full_pipeline() {
        let c = SpanCollector::from_events(&full_pipeline());
        assert_eq!(c.orphans, 0);
        let span = &c.jobs()[&0];
        assert!(span.completed());
        assert_eq!(span.attempts.len(), 1);
        let a = &span.attempts[0];
        assert_eq!(a.seq, Some(5));
        assert_eq!(a.contact, Some(77));
        assert_eq!(a.site.as_deref(), Some("anl"));
        assert_eq!(a.staged_out_bytes, 250_000);
        let phases: Vec<(SpanPhase, Duration)> = a.phase_durations();
        assert_eq!(
            phases,
            vec![
                (SpanPhase::Auth, Duration::from_secs(1)),
                (SpanPhase::Commit, Duration::from_secs(1)),
                (SpanPhase::StageIn, Duration::from_secs(2)),
                (SpanPhase::Queue, Duration::from_secs(4)),
                (SpanPhase::Execute, Duration::from_secs(11)),
                (SpanPhase::StageOut, Duration::from_secs(2)),
            ]
        );
        assert_eq!(a.terminal(), Some("done"));
    }

    #[test]
    fn resubmission_opens_a_new_attempt() {
        let events = vec![
            span_ev(1_000_000, "job=3 seq=0 phase=submit site=a"),
            span_ev(2_000_000, "seq=0 contact=10 phase=auth"),
            span_ev(60_000_000, "job=3 seq=1 phase=submit site=b"),
            span_ev(61_000_000, "seq=1 contact=11 phase=auth"),
            span_ev(90_000_000, "job=3 phase=done"),
        ];
        let c = SpanCollector::from_events(&events);
        let span = &c.jobs()[&3];
        assert_eq!(span.attempts.len(), 2);
        assert_eq!(span.attempts[0].site.as_deref(), Some("a"));
        assert_eq!(span.attempts[1].site.as_deref(), Some("b"));
        assert_eq!(span.attempts[1].contact, Some(11));
        assert!(span.completed());
    }

    #[test]
    fn unattributable_events_counted_not_crashed() {
        let events = vec![
            span_ev(1, "contact=999 phase=active"),
            span_ev(2, "nonsense"),
        ];
        let c = SpanCollector::from_events(&events);
        assert!(c.jobs().is_empty());
        assert_eq!(c.orphans, 2);
    }

    #[test]
    fn metrics_report_phase_histograms() {
        let mut m = Metrics::new();
        SpanCollector::from_events(&full_pipeline()).report_metrics(&mut m);
        assert_eq!(m.counter("span.jobs"), 1);
        assert_eq!(m.counter("span.jobs_completed"), 1);
        let h = m
            .histogram("span.phase.queue")
            .expect("queue phase observed");
        assert_eq!(h.count(), 1);
        assert!((h.mean() - 4.0).abs() < 1e-9);
        let e2e = m.histogram("span.end_to_end").expect("end-to-end observed");
        assert!((e2e.mean() - 21.0).abs() < 1e-9);
    }

    #[test]
    fn render_shows_ladder() {
        let c = SpanCollector::from_events(&full_pipeline());
        let text = c.render();
        assert!(text.contains("gj0 (1 attempt)"));
        assert!(text.contains("attempt 1 via anl (seq 5, contact jc77)"));
        assert!(text.contains("submit"));
        assert!(text.contains("staged out 250000 bytes"));
        let summary = c.phase_summary();
        assert_eq!(summary.len(), 6, "all six pipeline phases completed");
        assert_eq!(summary[0].0, "auth");
    }
}
