//! Per-site "grid weather": the MDS-style resource health summary the
//! paper's users relied on to pick sites.
//!
//! The protocol components publish per-site metrics under `site.<name>.*`
//! as they run — the gatekeeper counts submissions and auth rejections,
//! the JobManager counts two-phase commits and commit timeouts, the LRM
//! tracks queue depth, queue-wait distribution, and a rolling success
//! rate over its most recent job outcomes. Everything flows through the
//! ordinary [`Metrics`] sink (so the Prometheus/JSON exporters pick it up
//! unchanged); this module aggregates the raw metrics into one row per
//! site for reports and the `condor-g-sim` epilogue.
//!
//! [`SiteHealthTracker`] closes the loop: fed successive weather
//! snapshots, it runs a per-site quarantine state machine (Healthy →
//! Quarantined → Probation → Healthy) whose transitions the brokers use
//! to steer work away from sick sites and re-probe them later.

use crate::metrics::Metrics;
use crate::obs::export::json_string;
use crate::time::{Duration, SimTime};
use std::collections::BTreeMap;

/// Metric suffixes that identify a site under the `site.<name>.` prefix.
/// Site names may themselves contain dots (`cluster.site.edu`), so site
/// discovery strips a known suffix rather than splitting on `.`.
const SITE_SUFFIXES: &[&str] = &[
    ".submits",
    ".rejected",
    ".completed",
    ".wall_killed",
    ".queue_wait",
    ".queue_depth",
    ".success_rate",
    ".commits",
    ".commit_timeouts",
    ".busy",
    ".attempt_failures",
];

/// One site's current weather.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteWeather {
    /// Site name as registered with the gatekeeper/LRM.
    pub site: String,
    /// GRAM submissions accepted by the gatekeeper.
    pub submits: u64,
    /// Submissions rejected (GSI auth / gridmap failures).
    pub rejected: u64,
    /// Jobs the LRM ran to completion.
    pub completed: u64,
    /// Rolling success rate over the LRM's recent terminal outcomes
    /// (`None` until the first outcome).
    pub success_rate: Option<f64>,
    /// Current LRM queue depth (queued, not yet running).
    pub queue_depth: Option<f64>,
    /// Median LRM queue wait in seconds (`None` until a job started).
    pub median_wait_secs: Option<f64>,
    /// Two-phase commit timeouts per commit attempt (`None` before any
    /// commit attempt).
    pub commit_timeout_rate: Option<f64>,
    /// Submission attempts the GridManager gave up on and rerouted. This
    /// is charged by the *client* side, so a site whose gatekeeper never
    /// answered a single request — zero successful submits — still gets a
    /// weather row (exactly the site an operator needs to see).
    pub attempt_failures: u64,
}

/// Extract the site name from a `site.<name>.<suffix>` metric, if it is one.
fn site_of(name: &str) -> Option<&str> {
    let rest = name.strip_prefix("site.")?;
    SITE_SUFFIXES
        .iter()
        .find_map(|s| rest.strip_suffix(s))
        .filter(|site| !site.is_empty())
}

/// Aggregate the `site.<name>.*` metrics into one weather row per site,
/// sorted by site name.
pub fn grid_weather(m: &Metrics) -> Vec<SiteWeather> {
    let mut sites: Vec<String> = Vec::new();
    let names = m
        .counter_names()
        .chain(m.histograms().map(|(k, _)| k))
        .chain(m.all_series().map(|(k, _)| k));
    for name in names {
        if let Some(site) = site_of(name) {
            if !sites.iter().any(|s| s == site) {
                sites.push(site.to_string());
            }
        }
    }
    sites.sort();
    sites
        .into_iter()
        .map(|site| {
            let c = |suffix: &str| m.counter(&format!("site.{site}.{suffix}"));
            let last = |suffix: &str| {
                m.series(&format!("site.{site}.{suffix}"))
                    .filter(|s| !s.points().is_empty())
                    .map(|s| s.last())
            };
            let commits = c("commits");
            SiteWeather {
                submits: c("submits"),
                rejected: c("rejected"),
                completed: c("completed"),
                success_rate: last("success_rate"),
                queue_depth: last("queue_depth"),
                median_wait_secs: m
                    .histogram(&format!("site.{site}.queue_wait"))
                    .map(|h| median(h.samples())),
                commit_timeout_rate: (commits > 0)
                    .then(|| c("commit_timeouts") as f64 / commits as f64),
                attempt_failures: c("attempt_failures"),
                site,
            }
        })
        .collect()
}

/// Median without mutating the shared histogram (its lazy-sorting
/// [`quantile`](crate::metrics::Histogram::quantile) needs `&mut`).
fn median(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut v = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    v[(v.len() - 1) / 2]
}

/// Render the weather rows as the fixed-width table the CLI prints.
pub fn render(rows: &[SiteWeather]) -> String {
    let mut out = String::from(
        "site                      submits  reject  done  success  queue  med-wait  commit-to  failed\n",
    );
    let opt = |v: Option<f64>, unit: &str| match v {
        Some(x) => format!("{x:.2}{unit}"),
        None => "-".to_string(),
    };
    for r in rows {
        out.push_str(&format!(
            "{:<25} {:>7} {:>7} {:>5}  {:>7} {:>6}  {:>8}  {:>9}  {:>6}\n",
            r.site,
            r.submits,
            r.rejected,
            r.completed,
            opt(r.success_rate.map(|v| v * 100.0), "%"),
            opt(r.queue_depth, ""),
            opt(r.median_wait_secs, "s"),
            opt(r.commit_timeout_rate.map(|v| v * 100.0), "%"),
            r.attempt_failures,
        ));
    }
    out
}

/// Render at most the `n` busiest sites (by submits + client-side attempt
/// failures, the two counters that make a site worth an operator's
/// glance), with a trailer noting how many rows were elided. On a
/// hundreds-of-sites campaign the full table drowns the epilogue; the
/// complete data is still available via `--weather-out`.
pub fn render_top(rows: &[SiteWeather], n: usize) -> String {
    if rows.len() <= n {
        return render(rows);
    }
    let mut busiest: Vec<&SiteWeather> = rows.iter().collect();
    // Busiest first; sites with equal counts order by name so same-seed
    // runs always render the identical table.
    busiest.sort_by(|a, b| {
        let ka = a.submits + a.attempt_failures;
        let kb = b.submits + b.attempt_failures;
        kb.cmp(&ka).then_with(|| a.site.cmp(&b.site))
    });
    busiest.truncate(n);
    let top: Vec<SiteWeather> = busiest.into_iter().cloned().collect();
    let mut out = render(&top);
    out.push_str(&format!(
        "... {} more sites (full table: --weather-out)\n",
        rows.len() - n
    ));
    out
}

/// Serialize the weather rows as a JSON array (one object per site), for
/// `--weather-out` sweeps that assert on site health without scraping the
/// CLI epilogue.
pub fn weather_json(rows: &[SiteWeather]) -> String {
    let num = |v: Option<f64>| match v {
        Some(x) if x.is_finite() => format!("{x}"),
        _ => "null".to_string(),
    };
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"site\": {}, \"submits\": {}, \"rejected\": {}, \"completed\": {}, \
             \"attempt_failures\": {}, \"success_rate\": {}, \"queue_depth\": {}, \
             \"median_wait_secs\": {}, \"commit_timeout_rate\": {}}}{}\n",
            json_string(&r.site),
            r.submits,
            r.rejected,
            r.completed,
            r.attempt_failures,
            num(r.success_rate),
            num(r.queue_depth),
            num(r.median_wait_secs),
            num(r.commit_timeout_rate),
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("]\n");
    out
}

// ---- site health: the quarantine state machine -------------------------

/// Thresholds for demoting and recovering sites.
#[derive(Debug, Clone)]
pub struct HealthPolicy {
    /// New attempt failures in one observation window that quarantine a
    /// healthy site.
    pub strike_failures: u64,
    /// A rolling LRM success rate below this quarantines a healthy site.
    pub min_success_rate: f64,
    /// A commit-timeout rate above this quarantines a healthy site.
    pub max_commit_timeout_rate: f64,
    /// How long a quarantined site is avoided before it is re-probed.
    pub quarantine_for: Duration,
    /// Completions during probation that restore a site to healthy.
    pub probation_successes: u64,
}

impl Default for HealthPolicy {
    fn default() -> HealthPolicy {
        HealthPolicy {
            strike_failures: 1,
            min_success_rate: 0.25,
            max_commit_timeout_rate: 0.5,
            quarantine_for: Duration::from_mins(20),
            probation_successes: 1,
        }
    }
}

/// Where a site is in the quarantine lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteState {
    /// Full participation in brokering.
    Healthy,
    /// Excluded from brokering until the deadline passes.
    Quarantined {
        /// When the quarantine lapses into probation.
        until: SimTime,
    },
    /// Eligible again, but one failure re-quarantines; enough successes
    /// restore full health.
    Probation,
}

/// A state-machine transition, for tracing and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthEvent {
    /// The site that changed state.
    pub site: String,
    /// What happened.
    pub action: HealthAction,
    /// Why (threshold that tripped, or the lapsed quarantine).
    pub reason: String,
}

/// The three observable transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthAction {
    /// Healthy/Probation → Quarantined.
    Quarantine,
    /// Quarantined → Probation (site may be tried again).
    Probe,
    /// Probation → Healthy.
    Recover,
}

impl HealthAction {
    /// Trace kind for this transition (`broker.quarantine` etc.).
    pub fn kind(self) -> &'static str {
        match self {
            HealthAction::Quarantine => "broker.quarantine",
            HealthAction::Probe => "broker.probe",
            HealthAction::Recover => "broker.recover",
        }
    }
}

#[derive(Debug, Clone, Default)]
struct SiteTrack {
    state: Option<SiteState>,
    /// Counter snapshots from the previous observation, for windowed deltas.
    seen_failures: u64,
    seen_completed: u64,
    /// Completions accumulated while on probation.
    probation_completed: u64,
}

/// Runs the [`SiteState`] machine over successive weather snapshots.
///
/// Deliberately deterministic: transitions depend only on the snapshots
/// and the virtual clock, so adaptive runs replay exactly under a fixed
/// seed.
#[derive(Debug, Clone, Default)]
pub struct SiteHealthTracker {
    policy: HealthPolicy,
    sites: BTreeMap<String, SiteTrack>,
}

impl SiteHealthTracker {
    /// A tracker with the given thresholds.
    pub fn new(policy: HealthPolicy) -> SiteHealthTracker {
        SiteHealthTracker {
            policy,
            sites: BTreeMap::new(),
        }
    }

    /// Is the site currently excluded from brokering?
    pub fn is_quarantined(&self, site: &str) -> bool {
        matches!(
            self.sites.get(site).and_then(|t| t.state),
            Some(SiteState::Quarantined { .. })
        )
    }

    /// Current state of a site, if it has ever been observed.
    pub fn state(&self, site: &str) -> Option<SiteState> {
        self.sites.get(site).and_then(|t| t.state)
    }

    /// Sites currently quarantined, sorted.
    pub fn quarantined_sites(&self) -> Vec<String> {
        self.sites
            .iter()
            .filter(|(_, t)| matches!(t.state, Some(SiteState::Quarantined { .. })))
            .map(|(s, _)| s.clone())
            .collect()
    }

    /// Feed one weather snapshot; returns the transitions it caused.
    pub fn observe(&mut self, rows: &[SiteWeather], now: SimTime) -> Vec<HealthEvent> {
        let mut events = Vec::new();
        for r in rows {
            let t = self.sites.entry(r.site.clone()).or_default();
            let new_failures = r.attempt_failures.saturating_sub(t.seen_failures);
            let new_completed = r.completed.saturating_sub(t.seen_completed);
            t.seen_failures = r.attempt_failures;
            t.seen_completed = r.completed;
            let state = t.state.unwrap_or(SiteState::Healthy);
            let sick = sickness(&self.policy, r, new_failures);
            let next = match state {
                SiteState::Healthy => sick.map(|why| {
                    events.push(ev(r, HealthAction::Quarantine, why));
                    SiteState::Quarantined {
                        until: now + self.policy.quarantine_for,
                    }
                }),
                SiteState::Quarantined { until } => (now >= until).then(|| {
                    events.push(ev(r, HealthAction::Probe, "quarantine lapsed".into()));
                    t.probation_completed = 0;
                    SiteState::Probation
                }),
                SiteState::Probation => {
                    if new_failures > 0 {
                        events.push(ev(
                            r,
                            HealthAction::Quarantine,
                            format!("probe failed ({new_failures} new attempt failures)"),
                        ));
                        Some(SiteState::Quarantined {
                            until: now + self.policy.quarantine_for,
                        })
                    } else {
                        t.probation_completed += new_completed;
                        (t.probation_completed >= self.policy.probation_successes).then(|| {
                            events.push(ev(
                                r,
                                HealthAction::Recover,
                                format!("{} completions on probation", t.probation_completed),
                            ));
                            SiteState::Healthy
                        })
                    }
                }
            };
            t.state = Some(next.unwrap_or(state));
        }
        events
    }
}

/// Why a site looks sick under `policy`, if it does.
fn sickness(policy: &HealthPolicy, r: &SiteWeather, new_failures: u64) -> Option<String> {
    if new_failures >= policy.strike_failures.max(1) {
        return Some(format!("{new_failures} new attempt failures"));
    }
    if let Some(rate) = r.success_rate {
        if rate < policy.min_success_rate {
            return Some(format!("success rate {:.0}%", rate * 100.0));
        }
    }
    if let Some(rate) = r.commit_timeout_rate {
        if rate > policy.max_commit_timeout_rate {
            return Some(format!("commit-timeout rate {:.0}%", rate * 100.0));
        }
    }
    None
}

fn ev(r: &SiteWeather, action: HealthAction, reason: String) -> HealthEvent {
    HealthEvent {
        site: r.site.clone(),
        action,
        reason,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn site_names_with_dots_survive_discovery() {
        assert_eq!(
            site_of("site.cluster.site.edu.queue_wait"),
            Some("cluster.site.edu")
        );
        assert_eq!(site_of("site.anl.submits"), Some("anl"));
        assert_eq!(site_of("site.queue_wait"), None, "empty site name");
        assert_eq!(site_of("grid.busy_cpus"), None);
        assert_eq!(site_of("site.anl.unrelated"), None);
    }

    #[test]
    fn aggregates_one_row_per_site() {
        let mut m = Metrics::new();
        m.incr("site.anl.submits", 10);
        m.incr("site.anl.rejected", 1);
        m.incr("site.anl.completed", 8);
        m.incr("site.anl.commits", 10);
        m.incr("site.anl.commit_timeouts", 2);
        m.gauge("site.anl.queue_depth", SimTime(5), 3.0);
        m.gauge("site.anl.success_rate", SimTime(5), 0.75);
        for w in [10.0, 30.0, 20.0] {
            m.observe("site.anl.queue_wait", w);
        }
        m.incr("site.nrl.submits", 4);
        m.incr("unrelated.counter", 9);

        let rows = grid_weather(&m);
        assert_eq!(rows.len(), 2);
        let anl = &rows[0];
        assert_eq!(anl.site, "anl");
        assert_eq!((anl.submits, anl.rejected, anl.completed), (10, 1, 8));
        assert_eq!(anl.success_rate, Some(0.75));
        assert_eq!(anl.queue_depth, Some(3.0));
        assert_eq!(anl.median_wait_secs, Some(20.0));
        assert_eq!(anl.commit_timeout_rate, Some(0.2));
        let nrl = &rows[1];
        assert_eq!(nrl.site, "nrl");
        assert_eq!(nrl.success_rate, None, "no outcomes yet");
        assert_eq!(nrl.commit_timeout_rate, None, "no commits yet");
    }

    #[test]
    fn render_top_caps_at_busiest_sites() {
        let mut m = Metrics::new();
        for i in 0..30u64 {
            // site00 busiest, site29 quietest.
            m.incr(&format!("site.site{i:02}.submits"), 60 - i);
        }
        m.incr("site.site29.attempt_failures", 100); // failures count as traffic
        let rows = grid_weather(&m);
        let table = render_top(&rows, 5);
        let body: Vec<&str> = table.lines().collect();
        // Header + 5 rows + elision trailer.
        assert_eq!(body.len(), 7);
        assert!(body[1].starts_with("site29"), "failing site floats up");
        assert!(body[2].starts_with("site00"));
        assert!(body[6].contains("25 more sites"));
        // Under the cap, render_top is exactly render.
        assert_eq!(render_top(&rows[..3], 5), render(&rows[..3]));
    }

    #[test]
    fn render_top_breaks_ties_by_site_name() {
        // Every site equally busy: the cut must fall deterministically on
        // lexicographic order, whatever order the rows arrive in.
        let mut m = Metrics::new();
        for name in ["zeta", "alpha", "mu", "beta", "omega", "kappa"] {
            m.incr(&format!("site.{name}.submits"), 7);
        }
        let mut rows = grid_weather(&m);
        let table = render_top(&rows, 3);
        rows.reverse();
        assert_eq!(render_top(&rows, 3), table, "row order must not matter");
        let names: Vec<&str> = table
            .lines()
            .skip(1)
            .take(3)
            .filter_map(|l| l.split_whitespace().next())
            .collect();
        assert_eq!(names, vec!["alpha", "beta", "kappa"]);
    }

    #[test]
    fn renders_a_row_per_site() {
        let mut m = Metrics::new();
        m.incr("site.anl.submits", 2);
        let text = render(&grid_weather(&m));
        assert!(text.lines().count() == 2, "{text}");
        assert!(text.contains("anl"));
        assert!(text.contains("med-wait"));
        assert!(text.contains("failed"));
    }

    #[test]
    fn a_site_with_only_failures_still_gets_a_row() {
        // An unreachable gatekeeper accepts nothing, so the only signal is
        // the client-side attempt-failure counter. It must be enough.
        let mut m = Metrics::new();
        m.incr("site.dead.attempt_failures", 3);
        let rows = grid_weather(&m);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].site, "dead");
        assert_eq!(rows[0].attempt_failures, 3);
        assert_eq!(rows[0].submits, 0);
    }

    #[test]
    fn weather_json_is_valid_and_complete() {
        let mut m = Metrics::new();
        m.incr("site.anl.submits", 10);
        m.incr("site.anl.completed", 8);
        m.incr("site.nrl.attempt_failures", 2);
        let text = weather_json(&grid_weather(&m));
        assert!(text.starts_with("[\n") && text.ends_with("]\n"), "{text}");
        assert!(text.contains("\"site\": \"anl\""));
        assert!(text.contains("\"completed\": 8"));
        assert!(text.contains("\"attempt_failures\": 2"));
        assert!(text.contains("\"success_rate\": null"));
        // One object per line, comma-separated except the last.
        let objects: Vec<&str> = text
            .lines()
            .filter(|l| l.trim_start().starts_with('{'))
            .collect();
        assert_eq!(objects.len(), 2);
        assert!(objects[0].ends_with(','));
        assert!(objects[1].ends_with('}'));
    }

    fn row(site: &str, failures: u64, completed: u64) -> SiteWeather {
        SiteWeather {
            site: site.to_string(),
            submits: 0,
            rejected: 0,
            completed,
            success_rate: None,
            queue_depth: None,
            median_wait_secs: None,
            commit_timeout_rate: None,
            attempt_failures: failures,
        }
    }

    const MIN: u64 = 60 * 1_000_000;

    #[test]
    fn quarantine_probe_recover_lifecycle() {
        let mut t = SiteHealthTracker::new(HealthPolicy::default());
        // Healthy until a failure shows up.
        assert!(t.observe(&[row("anl", 0, 0)], SimTime(0)).is_empty());
        assert!(!t.is_quarantined("anl"));
        // One new failure → quarantined for 20 minutes.
        let evs = t.observe(&[row("anl", 1, 0)], SimTime(MIN));
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].action, HealthAction::Quarantine);
        assert_eq!(evs[0].site, "anl");
        assert!(t.is_quarantined("anl"));
        assert_eq!(t.quarantined_sites(), ["anl"]);
        // Still quarantined halfway through; *no* repeat events.
        assert!(t.observe(&[row("anl", 1, 0)], SimTime(10 * MIN)).is_empty());
        assert!(t.is_quarantined("anl"));
        // Deadline passes → probation (eligible again).
        let evs = t.observe(&[row("anl", 1, 0)], SimTime(22 * MIN));
        assert_eq!(evs[0].action, HealthAction::Probe);
        assert!(!t.is_quarantined("anl"));
        assert_eq!(t.state("anl"), Some(SiteState::Probation));
        // A completion on probation restores full health.
        let evs = t.observe(&[row("anl", 1, 1)], SimTime(30 * MIN));
        assert_eq!(evs[0].action, HealthAction::Recover);
        assert_eq!(t.state("anl"), Some(SiteState::Healthy));
    }

    #[test]
    fn failed_probe_requarantines() {
        let mut t = SiteHealthTracker::new(HealthPolicy::default());
        t.observe(&[row("anl", 1, 0)], SimTime(0));
        t.observe(&[row("anl", 1, 0)], SimTime(21 * MIN)); // probe
        let evs = t.observe(&[row("anl", 2, 0)], SimTime(25 * MIN));
        assert_eq!(evs[0].action, HealthAction::Quarantine);
        assert!(evs[0].reason.contains("probe failed"), "{}", evs[0].reason);
        assert!(t.is_quarantined("anl"));
    }

    #[test]
    fn rate_thresholds_also_quarantine() {
        let mut t = SiteHealthTracker::new(HealthPolicy::default());
        let mut bad = row("lsf", 0, 5);
        bad.success_rate = Some(0.1);
        let evs = t.observe(&[bad], SimTime(0));
        assert_eq!(evs[0].action, HealthAction::Quarantine);
        assert!(evs[0].reason.contains("success rate"), "{}", evs[0].reason);

        let mut t = SiteHealthTracker::new(HealthPolicy::default());
        let mut bad = row("pbs", 0, 5);
        bad.commit_timeout_rate = Some(0.8);
        let evs = t.observe(&[bad], SimTime(0));
        assert!(
            evs[0].reason.contains("commit-timeout"),
            "{}",
            evs[0].reason
        );
        // A healthy sibling observed in the same snapshot is untouched.
        assert!(t.state("other").is_none());
    }

    #[test]
    fn transitions_map_to_trace_kinds() {
        assert_eq!(HealthAction::Quarantine.kind(), "broker.quarantine");
        assert_eq!(HealthAction::Probe.kind(), "broker.probe");
        assert_eq!(HealthAction::Recover.kind(), "broker.recover");
    }
}
