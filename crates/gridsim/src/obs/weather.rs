//! Per-site "grid weather": the MDS-style resource health summary the
//! paper's users relied on to pick sites.
//!
//! The protocol components publish per-site metrics under `site.<name>.*`
//! as they run — the gatekeeper counts submissions and auth rejections,
//! the JobManager counts two-phase commits and commit timeouts, the LRM
//! tracks queue depth, queue-wait distribution, and a rolling success
//! rate over its most recent job outcomes. Everything flows through the
//! ordinary [`Metrics`] sink (so the Prometheus/JSON exporters pick it up
//! unchanged); this module aggregates the raw metrics into one row per
//! site for reports and the `condor-g-sim` epilogue.

use crate::metrics::Metrics;

/// Metric suffixes that identify a site under the `site.<name>.` prefix.
/// Site names may themselves contain dots (`cluster.site.edu`), so site
/// discovery strips a known suffix rather than splitting on `.`.
const SITE_SUFFIXES: &[&str] = &[
    ".submits",
    ".rejected",
    ".completed",
    ".wall_killed",
    ".queue_wait",
    ".queue_depth",
    ".success_rate",
    ".commits",
    ".commit_timeouts",
    ".busy",
];

/// One site's current weather.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteWeather {
    /// Site name as registered with the gatekeeper/LRM.
    pub site: String,
    /// GRAM submissions accepted by the gatekeeper.
    pub submits: u64,
    /// Submissions rejected (GSI auth / gridmap failures).
    pub rejected: u64,
    /// Jobs the LRM ran to completion.
    pub completed: u64,
    /// Rolling success rate over the LRM's recent terminal outcomes
    /// (`None` until the first outcome).
    pub success_rate: Option<f64>,
    /// Current LRM queue depth (queued, not yet running).
    pub queue_depth: Option<f64>,
    /// Median LRM queue wait in seconds (`None` until a job started).
    pub median_wait_secs: Option<f64>,
    /// Two-phase commit timeouts per commit attempt (`None` before any
    /// commit attempt).
    pub commit_timeout_rate: Option<f64>,
}

/// Extract the site name from a `site.<name>.<suffix>` metric, if it is one.
fn site_of(name: &str) -> Option<&str> {
    let rest = name.strip_prefix("site.")?;
    SITE_SUFFIXES
        .iter()
        .find_map(|s| rest.strip_suffix(s))
        .filter(|site| !site.is_empty())
}

/// Aggregate the `site.<name>.*` metrics into one weather row per site,
/// sorted by site name.
pub fn grid_weather(m: &Metrics) -> Vec<SiteWeather> {
    let mut sites: Vec<String> = Vec::new();
    let names = m
        .counter_names()
        .chain(m.histograms().map(|(k, _)| k))
        .chain(m.all_series().map(|(k, _)| k));
    for name in names {
        if let Some(site) = site_of(name) {
            if !sites.iter().any(|s| s == site) {
                sites.push(site.to_string());
            }
        }
    }
    sites.sort();
    sites
        .into_iter()
        .map(|site| {
            let c = |suffix: &str| m.counter(&format!("site.{site}.{suffix}"));
            let last = |suffix: &str| {
                m.series(&format!("site.{site}.{suffix}"))
                    .filter(|s| !s.points().is_empty())
                    .map(|s| s.last())
            };
            let commits = c("commits");
            SiteWeather {
                submits: c("submits"),
                rejected: c("rejected"),
                completed: c("completed"),
                success_rate: last("success_rate"),
                queue_depth: last("queue_depth"),
                median_wait_secs: m
                    .histogram(&format!("site.{site}.queue_wait"))
                    .map(|h| median(h.samples())),
                commit_timeout_rate: (commits > 0)
                    .then(|| c("commit_timeouts") as f64 / commits as f64),
                site,
            }
        })
        .collect()
}

/// Median without mutating the shared histogram (its lazy-sorting
/// [`quantile`](crate::metrics::Histogram::quantile) needs `&mut`).
fn median(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut v = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    v[(v.len() - 1) / 2]
}

/// Render the weather rows as the fixed-width table the CLI prints.
pub fn render(rows: &[SiteWeather]) -> String {
    let mut out = String::from(
        "site                      submits  reject  done  success  queue  med-wait  commit-to\n",
    );
    let opt = |v: Option<f64>, unit: &str| match v {
        Some(x) => format!("{x:.2}{unit}"),
        None => "-".to_string(),
    };
    for r in rows {
        out.push_str(&format!(
            "{:<25} {:>7} {:>7} {:>5}  {:>7} {:>6}  {:>8}  {:>9}\n",
            r.site,
            r.submits,
            r.rejected,
            r.completed,
            opt(r.success_rate.map(|v| v * 100.0), "%"),
            opt(r.queue_depth, ""),
            opt(r.median_wait_secs, "s"),
            opt(r.commit_timeout_rate.map(|v| v * 100.0), "%"),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn site_names_with_dots_survive_discovery() {
        assert_eq!(
            site_of("site.cluster.site.edu.queue_wait"),
            Some("cluster.site.edu")
        );
        assert_eq!(site_of("site.anl.submits"), Some("anl"));
        assert_eq!(site_of("site.queue_wait"), None, "empty site name");
        assert_eq!(site_of("grid.busy_cpus"), None);
        assert_eq!(site_of("site.anl.unrelated"), None);
    }

    #[test]
    fn aggregates_one_row_per_site() {
        let mut m = Metrics::new();
        m.incr("site.anl.submits", 10);
        m.incr("site.anl.rejected", 1);
        m.incr("site.anl.completed", 8);
        m.incr("site.anl.commits", 10);
        m.incr("site.anl.commit_timeouts", 2);
        m.gauge("site.anl.queue_depth", SimTime(5), 3.0);
        m.gauge("site.anl.success_rate", SimTime(5), 0.75);
        for w in [10.0, 30.0, 20.0] {
            m.observe("site.anl.queue_wait", w);
        }
        m.incr("site.nrl.submits", 4);
        m.incr("unrelated.counter", 9);

        let rows = grid_weather(&m);
        assert_eq!(rows.len(), 2);
        let anl = &rows[0];
        assert_eq!(anl.site, "anl");
        assert_eq!((anl.submits, anl.rejected, anl.completed), (10, 1, 8));
        assert_eq!(anl.success_rate, Some(0.75));
        assert_eq!(anl.queue_depth, Some(3.0));
        assert_eq!(anl.median_wait_secs, Some(20.0));
        assert_eq!(anl.commit_timeout_rate, Some(0.2));
        let nrl = &rows[1];
        assert_eq!(nrl.site, "nrl");
        assert_eq!(nrl.success_rate, None, "no outcomes yet");
        assert_eq!(nrl.commit_timeout_rate, None, "no commits yet");
    }

    #[test]
    fn renders_a_row_per_site() {
        let mut m = Metrics::new();
        m.incr("site.anl.submits", 2);
        let text = render(&grid_weather(&m));
        assert!(text.lines().count() == 2, "{text}");
        assert!(text.contains("anl"));
        assert!(text.contains("med-wait"));
    }
}
