//! Metrics export: Prometheus-style text snapshots and JSON snapshots.
//!
//! Both formats are pure functions of the [`Metrics`] sink plus the clock,
//! so same-seed runs export byte-identical snapshots. Counters export as
//! Prometheus counters; histograms as summaries (quantiles, sum, count);
//! time series as gauges (last value) plus their time integral over
//! `[0, now]` — the paper's "CPU-hours delivered" style numbers.

use crate::metrics::Metrics;
use crate::time::SimTime;
use std::fmt::Write as _;

/// Quantiles exported for every histogram.
const QUANTILES: [(f64, &str); 3] = [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")];

/// Sanitize a metric name for Prometheus: `[a-zA-Z0-9_:]` only.
fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Render `s` as a JSON string literal (quotes included).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render an `f64` for export: finite values as shortest round-trip
/// decimal, non-finite as Prometheus/JSON-friendly spellings.
fn num(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 {
            "+Inf".to_string()
        } else {
            "-Inf".to_string()
        }
    } else {
        format!("{v}")
    }
}

/// JSON has no NaN/Inf literals; map them to null.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A Prometheus text-format snapshot of every counter, histogram and time
/// series in `metrics`, taken at virtual time `now`.
pub fn prometheus_snapshot(metrics: &Metrics, now: SimTime) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Condor-G simulation metrics snapshot at t={}us",
        now.micros()
    );
    for (name, value) in metrics.counters() {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, hist) in metrics.histograms() {
        let n = prom_name(name);
        // Quantiles need a sorted copy; the export must not mutate state.
        let mut sorted = hist.clone();
        let _ = writeln!(out, "# TYPE {n} summary");
        for (q, label) in QUANTILES {
            let _ = writeln!(
                out,
                "{n}{{quantile=\"{label}\"}} {}",
                num(sorted.quantile(q))
            );
        }
        let _ = writeln!(out, "{n}_sum {}", num(hist.sum()));
        let _ = writeln!(out, "{n}_count {}", hist.count());
        let _ = writeln!(out, "{n}_min {}", num(hist.min()));
        let _ = writeln!(out, "{n}_max {}", num(hist.max()));
    }
    for (name, series) in metrics.all_series() {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {}", num(series.last()));
        let _ = writeln!(out, "{n}_max {}", num(series.max()));
        // The time-weighted mean is the load signal heartbeat scrapers
        // want: `last` is an instant, `avg` is the interval's truth.
        let _ = writeln!(
            out,
            "{n}_avg {}",
            num(series.time_weighted_mean(SimTime::ZERO, now))
        );
        let _ = writeln!(
            out,
            "{n}_integral {}",
            num(series.integral(SimTime::ZERO, now))
        );
    }
    out
}

/// A JSON snapshot of every counter, histogram and time series, taken at
/// virtual time `now`. Keys are sorted (the sink stores them in BTreeMaps),
/// so the output is stable across runs.
pub fn json_snapshot(metrics: &Metrics, now: SimTime) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"sim_time_us\": {},", now.micros());

    out.push_str("  \"counters\": {");
    let mut first = true;
    for (name, value) in metrics.counters() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n    {}: {value}", json_string(name));
    }
    out.push_str(if first { "},\n" } else { "\n  },\n" });

    out.push_str("  \"histograms\": {");
    first = true;
    for (name, hist) in metrics.histograms() {
        if !first {
            out.push(',');
        }
        first = false;
        let mut sorted = hist.clone();
        let _ = write!(
            out,
            "\n    {}: {{\"count\": {}, \"sum\": {}, \"mean\": {}, \"min\": {}, \
             \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
            json_string(name),
            hist.count(),
            json_num(hist.sum()),
            json_num(hist.mean()),
            json_num(hist.min()),
            json_num(hist.max()),
            json_num(sorted.quantile(0.5)),
            json_num(sorted.quantile(0.9)),
            json_num(sorted.quantile(0.99)),
        );
    }
    out.push_str(if first { "},\n" } else { "\n  },\n" });

    out.push_str("  \"series\": {");
    first = true;
    for (name, series) in metrics.all_series() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "\n    {}: {{\"points\": {}, \"last\": {}, \"max\": {}, \
             \"time_weighted_mean\": {}, \"integral\": {}}}",
            json_string(name),
            series.points().len(),
            json_num(series.last()),
            json_num(series.max()),
            json_num(series.time_weighted_mean(SimTime::ZERO, now)),
            json_num(series.integral(SimTime::ZERO, now)),
        );
    }
    out.push_str(if first { "}\n" } else { "\n  }\n" });
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_metrics() -> Metrics {
        let mut m = Metrics::new();
        m.incr("gram.submits", 3);
        m.incr("net.sent", 120);
        for v in [1.0, 2.0, 3.0, 4.0] {
            m.observe("gm.submit latency", v);
        }
        m.gauge("site.busy_cpus", SimTime(0), 0.0);
        m.gauge("site.busy_cpus", SimTime(10_000_000), 4.0);
        m
    }

    #[test]
    fn prometheus_snapshot_golden() {
        let m = sample_metrics();
        let snap = prometheus_snapshot(&m, SimTime(20_000_000));
        let expected = "\
# Condor-G simulation metrics snapshot at t=20000000us
# TYPE gram_submits counter
gram_submits 3
# TYPE net_sent counter
net_sent 120
# TYPE gm_submit_latency summary
gm_submit_latency{quantile=\"0.5\"} 3
gm_submit_latency{quantile=\"0.9\"} 4
gm_submit_latency{quantile=\"0.99\"} 4
gm_submit_latency_sum 10
gm_submit_latency_count 4
gm_submit_latency_min 1
gm_submit_latency_max 4
# TYPE site_busy_cpus gauge
site_busy_cpus 4
site_busy_cpus_max 4
site_busy_cpus_avg 2
site_busy_cpus_integral 40
";
        assert_eq!(snap, expected);
    }

    #[test]
    fn json_snapshot_golden() {
        let m = sample_metrics();
        let snap = json_snapshot(&m, SimTime(20_000_000));
        let expected = "\
{
  \"sim_time_us\": 20000000,
  \"counters\": {
    \"gram.submits\": 3,
    \"net.sent\": 120
  },
  \"histograms\": {
    \"gm.submit latency\": {\"count\": 4, \"sum\": 10, \"mean\": 2.5, \"min\": 1, \
\"max\": 4, \"p50\": 3, \"p90\": 4, \"p99\": 4}
  },
  \"series\": {
    \"site.busy_cpus\": {\"points\": 2, \"last\": 4, \"max\": 4, \
\"time_weighted_mean\": 2, \"integral\": 40}
  }
}
";
        assert_eq!(snap, expected);
    }

    #[test]
    fn empty_metrics_export_cleanly() {
        let m = Metrics::new();
        let prom = prometheus_snapshot(&m, SimTime(0));
        assert!(prom.starts_with("# Condor-G"));
        let json = json_snapshot(&m, SimTime(0));
        assert!(json.contains("\"counters\": {}"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn names_are_sanitized() {
        assert_eq!(prom_name("gm.submit latency"), "gm_submit_latency");
        assert_eq!(prom_name("9lives"), "_9lives");
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
