//! Trace subscribers: bounded ring buffer, kind/node filters, and a JSONL
//! exporter.
//!
//! Each subscriber plugs into [`crate::trace::TraceSink::subscribe`] and
//! observes every emitted [`TraceEvent`]; composition is by wrapping
//! ([`Filtered`] around any inner subscriber).

use crate::component::NodeId;
use crate::trace::{TraceEvent, TraceSubscriber};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::Write;
use std::rc::Rc;

/// A predicate over trace events: which kinds (by prefix) and which nodes to
/// keep. An empty filter matches everything.
#[derive(Debug, Clone, Default)]
pub struct TraceFilter {
    kind_prefixes: Vec<String>,
    nodes: Vec<NodeId>,
}

impl TraceFilter {
    /// A filter matching every event.
    pub fn any() -> TraceFilter {
        TraceFilter::default()
    }

    /// Keep events whose kind starts with `prefix` (e.g. `"gram."` keeps
    /// `gram.submit`, `gram.dedup`, ...). Multiple prefixes OR together.
    pub fn kind_prefix(mut self, prefix: &str) -> TraceFilter {
        self.kind_prefixes.push(prefix.to_string());
        self
    }

    /// Keep only events attributed to components on `node`. Multiple nodes
    /// OR together.
    pub fn node(mut self, node: NodeId) -> TraceFilter {
        self.nodes.push(node);
        self
    }

    /// Whether `event` passes the filter.
    pub fn matches(&self, event: &TraceEvent) -> bool {
        let kind_ok = self.kind_prefixes.is_empty()
            || self
                .kind_prefixes
                .iter()
                .any(|p| event.kind.starts_with(p.as_str()));
        let node_ok = self.nodes.is_empty() || self.nodes.contains(&event.addr.node);
        kind_ok && node_ok
    }
}

/// Wraps another subscriber, forwarding only events that pass a
/// [`TraceFilter`].
pub struct Filtered<S> {
    filter: TraceFilter,
    inner: S,
}

impl<S: TraceSubscriber> Filtered<S> {
    /// Forward events matching `filter` to `inner`.
    pub fn new(filter: TraceFilter, inner: S) -> Filtered<S> {
        Filtered { filter, inner }
    }
}

impl<S: TraceSubscriber> TraceSubscriber for Filtered<S> {
    fn on_event(&mut self, event: &TraceEvent) {
        if self.filter.matches(event) {
            self.inner.on_event(event);
        }
    }

    fn flush(&mut self) {
        self.inner.flush();
    }
}

struct RingInner {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    evicted: u64,
}

/// A bounded buffer of the most recent events: memory stays `O(capacity)`
/// no matter how long the campaign runs.
///
/// Cloning yields a handle onto the same buffer, so the caller can keep one
/// handle for inspection after boxing the other into the
/// [`crate::trace::TraceSink`]:
///
/// ```
/// use gridsim::obs::RingBuffer;
/// let ring = RingBuffer::new(1000);
/// let handle = ring.clone();
/// // world.trace_mut().subscribe(Box::new(ring));
/// // ... after the run: handle.snapshot()
/// # let _ = handle.len();
/// ```
#[derive(Clone)]
pub struct RingBuffer {
    inner: Rc<RefCell<RingInner>>,
}

impl RingBuffer {
    /// A ring holding at most `capacity` events (capacity 0 keeps nothing).
    pub fn new(capacity: usize) -> RingBuffer {
        RingBuffer {
            inner: Rc::new(RefCell::new(RingInner {
                capacity,
                events: VecDeque::with_capacity(capacity.min(4096)),
                evicted: 0,
            })),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.inner.borrow().capacity
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.inner.borrow().events.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().events.is_empty()
    }

    /// How many events were evicted to stay within capacity.
    pub fn evicted(&self) -> u64 {
        self.inner.borrow().evicted
    }

    /// Copy of the buffered events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.inner.borrow().events.iter().cloned().collect()
    }
}

impl TraceSubscriber for RingBuffer {
    fn on_event(&mut self, event: &TraceEvent) {
        let mut inner = self.inner.borrow_mut();
        if inner.capacity == 0 {
            inner.evicted += 1;
            return;
        }
        while inner.events.len() >= inner.capacity {
            inner.events.pop_front();
            inner.evicted += 1;
        }
        inner.events.push_back(event.clone());
    }
}

/// Streams every event as one JSON object per line (JSONL) to a writer.
///
/// The encoding is fully determined by the event stream — same seed, same
/// bytes — which is what the trace-determinism tests assert.
pub struct JsonlWriter<W: Write> {
    writer: W,
    lines: u64,
    errored: bool,
}

impl<W: Write> JsonlWriter<W> {
    /// Export events to `writer`.
    pub fn new(writer: W) -> JsonlWriter<W> {
        JsonlWriter {
            writer,
            lines: 0,
            errored: false,
        }
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// True if any write failed (export is best-effort; the simulation
    /// never aborts on trace I/O errors).
    pub fn errored(&self) -> bool {
        self.errored
    }
}

impl JsonlWriter<std::io::BufWriter<std::fs::File>> {
    /// Create (truncate) `path` and stream to it through a [`BufWriter`]
    /// (one `write(2)` per ~8 KiB instead of per event — a trace-heavy
    /// campaign emits millions of lines). The subscriber's `flush` hook
    /// drains the buffer once when the world finishes.
    ///
    /// [`BufWriter`]: std::io::BufWriter
    pub fn create(path: &str) -> std::io::Result<Self> {
        Ok(JsonlWriter::new(std::io::BufWriter::new(
            std::fs::File::create(path)?,
        )))
    }
}

/// Render `id`/`cause` for JSONL: the [`NO_CAUSE`](crate::event::NO_CAUSE)
/// sentinel becomes `null`, everything else a plain integer.
fn jsonl_event_ref(v: u64) -> String {
    if v == crate::event::NO_CAUSE {
        "null".to_string()
    } else {
        v.to_string()
    }
}

/// Render one event as a single JSONL line (without trailing newline).
/// `id` is the kernel event the record was emitted under and `cause` its
/// nearest observable causal ancestor (`null` for DAG roots); together
/// they let `condor-g-trace` rebuild the happens-before DAG offline.
pub fn jsonl_line(event: &TraceEvent) -> String {
    format!(
        "{{\"t\":{},\"node\":{},\"comp\":{},\"kind\":{},\"detail\":{},\"id\":{},\"cause\":{}}}",
        event.time.micros(),
        event.addr.node.0,
        event.addr.comp.0,
        crate::obs::export::json_string(event.kind),
        crate::obs::export::json_string(&event.detail),
        jsonl_event_ref(event.id),
        jsonl_event_ref(event.cause),
    )
}

impl<W: Write> TraceSubscriber for JsonlWriter<W> {
    fn on_event(&mut self, event: &TraceEvent) {
        if self.errored {
            return;
        }
        let line = jsonl_line(event);
        if writeln!(self.writer, "{line}").is_err() {
            self.errored = true;
            return;
        }
        self.lines += 1;
    }

    fn flush(&mut self) {
        if self.writer.flush().is_err() {
            self.errored = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{Addr, CompId};
    use crate::time::SimTime;

    fn ev(t: u64, node: u32, kind: &'static str, detail: &str) -> TraceEvent {
        TraceEvent {
            time: SimTime(t),
            addr: Addr {
                node: NodeId(node),
                comp: CompId(0),
            },
            kind,
            detail: detail.to_string(),
            id: 42,
            cause: crate::event::NO_CAUSE,
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts() {
        let mut ring = RingBuffer::new(3);
        let handle = ring.clone();
        for i in 0..10u64 {
            ring.on_event(&ev(i, 0, "k", &i.to_string()));
        }
        assert_eq!(handle.len(), 3);
        assert_eq!(handle.evicted(), 7);
        let details: Vec<String> = handle.snapshot().into_iter().map(|e| e.detail).collect();
        assert_eq!(details, vec!["7", "8", "9"]);
    }

    #[test]
    fn zero_capacity_ring_holds_nothing() {
        let mut ring = RingBuffer::new(0);
        ring.on_event(&ev(1, 0, "k", "x"));
        assert!(ring.is_empty());
        assert_eq!(ring.evicted(), 1);
    }

    #[test]
    fn filter_by_kind_prefix_and_node() {
        let f = TraceFilter::any().kind_prefix("gram.").node(NodeId(1));
        assert!(f.matches(&ev(0, 1, "gram.submit", "")));
        assert!(!f.matches(&ev(0, 2, "gram.submit", "")), "wrong node");
        assert!(!f.matches(&ev(0, 1, "gass.get", "")), "wrong kind");
        assert!(TraceFilter::any().matches(&ev(0, 9, "anything", "")));
    }

    #[test]
    fn filtered_forwards_matching_only() {
        let ring = RingBuffer::new(100);
        let handle = ring.clone();
        let mut sub = Filtered::new(TraceFilter::any().kind_prefix("a"), ring);
        sub.on_event(&ev(1, 0, "abc", "yes"));
        sub.on_event(&ev(2, 0, "xyz", "no"));
        assert_eq!(handle.len(), 1);
        assert_eq!(handle.snapshot()[0].detail, "yes");
    }

    #[test]
    fn jsonl_escapes_and_counts_lines() {
        let mut out = Vec::new();
        {
            let mut w = JsonlWriter::new(&mut out);
            w.on_event(&ev(1_500_000, 3, "k", "say \"hi\"\nplease"));
            w.flush();
            assert_eq!(w.lines(), 1);
            assert!(!w.errored());
        }
        let text = String::from_utf8(out).unwrap();
        assert_eq!(
            text,
            "{\"t\":1500000,\"node\":3,\"comp\":0,\"kind\":\"k\",\
             \"detail\":\"say \\\"hi\\\"\\nplease\",\"id\":42,\"cause\":null}\n"
        );
    }
}
