//! Happens-before DAG reconstruction from `(id, cause)` trace pairs.
//!
//! The kernel stamps every scheduled event with the sequence number of its
//! nearest *observable* causal ancestor — the most recent event on its
//! trigger chain during whose processing a trace record was emitted (see
//! [`crate::event::Event::cause`]). Each [`TraceEvent`] carries the id of
//! the kernel event it was emitted under plus that event's cause, so the
//! full happens-before DAG of everything observable can be rebuilt from a
//! trace alone — in memory here, or offline by `condor-g-trace` from a
//! `--trace-out` JSONL file.
//!
//! Nodes are kernel event ids; a node aggregates every trace record emitted
//! while that event was processed. Edges point from effect to cause.
//! Causes always have smaller sequence numbers than the events they
//! trigger (an event's effects are scheduled after it was popped), so the
//! structure is acyclic by construction; the walkers still guard against
//! malformed input.

use crate::event::NO_CAUSE;
use crate::time::SimTime;
use crate::trace::TraceEvent;
use std::collections::BTreeMap;

/// One node of the happens-before DAG: a kernel event that emitted at
/// least one trace record.
#[derive(Debug, Clone)]
pub struct DagNode {
    /// Kernel event sequence number.
    pub id: u64,
    /// Virtual time of the event (time of its first record).
    pub time: SimTime,
    /// Causal parent event id, if any.
    pub cause: Option<u64>,
    /// Indices into the source record slice, in emission order.
    pub records: Vec<usize>,
    /// Event ids this node causally triggered (ascending).
    pub children: Vec<u64>,
}

/// The reconstructed happens-before DAG.
#[derive(Debug, Default)]
pub struct CausalDag {
    nodes: BTreeMap<u64, DagNode>,
}

impl CausalDag {
    /// An empty DAG; populate with [`CausalDag::insert`].
    pub fn new() -> CausalDag {
        CausalDag::default()
    }

    /// Add one record: the trace record at `record_idx` (caller-defined
    /// indexing) was emitted under kernel event `id`, whose causal parent
    /// is `cause` ([`NO_CAUSE`] for roots), at virtual time `time`.
    pub fn insert(&mut self, id: u64, cause: u64, time: SimTime, record_idx: usize) {
        let node = self.nodes.entry(id).or_insert_with(|| DagNode {
            id,
            time,
            cause: (cause != NO_CAUSE).then_some(cause),
            records: Vec::new(),
            children: Vec::new(),
        });
        node.records.push(record_idx);
        // All records under one event share its provenance; keep the
        // earliest time in case of out-of-order ingestion.
        node.time = node.time.min(time);
    }

    /// Build from an in-memory trace; record indices point into `events`.
    pub fn from_events(events: &[TraceEvent]) -> CausalDag {
        let mut dag = CausalDag::new();
        for (i, e) in events.iter().enumerate() {
            if e.id == NO_CAUSE {
                // Emitted outside event processing (setup code): not part
                // of the causal structure.
                continue;
            }
            dag.insert(e.id, e.cause, e.time, i);
        }
        dag.link();
        dag
    }

    /// Populate child lists from the cause edges. Call once after the last
    /// [`CausalDag::insert`].
    pub fn link(&mut self) {
        let edges: Vec<(u64, u64)> = self
            .nodes
            .values()
            .filter_map(|n| n.cause.map(|c| (c, n.id)))
            .collect();
        for (parent, child) in edges {
            if let Some(p) = self.nodes.get_mut(&parent) {
                p.children.push(child);
            }
        }
    }

    /// Number of nodes (observable kernel events).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing was observable.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node for event `id`, if it was observable.
    pub fn node(&self, id: u64) -> Option<&DagNode> {
        self.nodes.get(&id)
    }

    /// All nodes in event order.
    pub fn nodes(&self) -> impl Iterator<Item = &DagNode> {
        self.nodes.values()
    }

    /// Root nodes: no cause, or a cause that never became observable
    /// (its records were filtered out of this trace).
    pub fn roots(&self) -> impl Iterator<Item = &DagNode> {
        self.nodes
            .values()
            .filter(|n| n.cause.is_none_or(|c| !self.nodes.contains_key(&c)))
    }

    /// The causal chain from `id` back to its root, inclusive: the actual
    /// trigger chain of the event, which for a terminal milestone is the
    /// job's critical path (at every join the cause is the last-arriving
    /// input). Returns `[]` for an unknown id.
    pub fn chain_to_root(&self, id: u64) -> Vec<&DagNode> {
        let mut chain = Vec::new();
        let mut cur = self.nodes.get(&id);
        while let Some(node) = cur {
            // Causes precede effects, so monotone ids guard against any
            // malformed cycle in hand-edited traces.
            if chain
                .last()
                .is_some_and(|prev: &&DagNode| node.id >= prev.id)
            {
                break;
            }
            chain.push(node);
            cur = node.cause.and_then(|c| self.nodes.get(&c));
        }
        chain.reverse();
        chain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{Addr, CompId, NodeId};

    fn rec(t: u64, id: u64, cause: u64) -> TraceEvent {
        TraceEvent {
            time: SimTime(t),
            addr: Addr {
                node: NodeId(0),
                comp: CompId(0),
            },
            kind: "k",
            detail: String::new(),
            id,
            cause,
        }
    }

    #[test]
    fn reconstructs_chain_and_roots() {
        // 1 <- 4 <- 9, and 2 a lone root; two records under event 4.
        let events = vec![
            rec(10, 1, NO_CAUSE),
            rec(20, 4, 1),
            rec(21, 4, 1),
            rec(30, 9, 4),
            rec(15, 2, NO_CAUSE),
        ];
        let dag = CausalDag::from_events(&events);
        assert_eq!(dag.len(), 4);
        let roots: Vec<u64> = dag.roots().map(|n| n.id).collect();
        assert_eq!(roots, vec![1, 2]);
        assert_eq!(dag.node(4).unwrap().records, vec![1, 2]);
        assert_eq!(dag.node(1).unwrap().children, vec![4]);
        let chain: Vec<u64> = dag.chain_to_root(9).iter().map(|n| n.id).collect();
        assert_eq!(chain, vec![1, 4, 9]);
    }

    #[test]
    fn missing_parent_makes_a_root() {
        // Cause 3 emitted nothing that survived into this trace.
        let events = vec![rec(5, 7, 3)];
        let dag = CausalDag::from_events(&events);
        assert_eq!(dag.roots().count(), 1);
        let chain: Vec<u64> = dag.chain_to_root(7).iter().map(|n| n.id).collect();
        assert_eq!(chain, vec![7]);
    }

    #[test]
    fn setup_records_are_excluded() {
        let events = vec![rec(0, NO_CAUSE, NO_CAUSE), rec(1, 0, NO_CAUSE)];
        let dag = CausalDag::from_events(&events);
        assert_eq!(dag.len(), 1);
        assert!(dag.node(0).is_some());
    }
}
