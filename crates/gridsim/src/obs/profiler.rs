//! Kernel profiler: where does the simulator spend its (real) time?
//!
//! Hooked into [`crate::World`]'s event loop when enabled, it records per
//! event-kind counts, per-component handler counts and wall-clock handler
//! time, and samples the event-queue depth into a [`TimeSeries`] keyed by
//! virtual time. Wall-clock measurements are observational only — they never
//! feed back into the simulation, so determinism is unaffected.

use crate::metrics::TimeSeries;
use crate::time::SimTime;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::{Duration as WallDuration, Instant};

/// How often (in events) the queue depth is sampled: cheap enough to leave
/// on for week-long campaigns, fine enough to see backlog build-ups.
const DEPTH_SAMPLE_STRIDE: u64 = 256;

/// Per-component-group profile.
#[derive(Debug, Default, Clone)]
pub struct CompProfile {
    /// Handler invocations (messages + timers + starts/stops).
    pub events: u64,
    /// Total wall-clock time spent inside this group's handlers.
    pub busy: WallDuration,
}

/// The profiler state; obtain via [`crate::World::profiler`].
#[derive(Debug)]
pub struct Profiler {
    started: Instant,
    events_seen: u64,
    handler_busy: WallDuration,
    /// Keyed by component *group*: the registered name with any numeric
    /// instance suffix stripped, so ten thousand `jm-jc…` JobManagers
    /// aggregate into one row.
    per_comp: BTreeMap<String, CompProfile>,
    per_kind: BTreeMap<&'static str, u64>,
    queue_depth: TimeSeries,
    last_depth_sample_at: Option<SimTime>,
}

/// Group key for a component name: everything before the first digit, with
/// trailing separators trimmed (`jm-jc8589934593` → `jm-jc`, `site0-gris`
/// → `site`). Keeps the profile table bounded by component *kinds*.
pub fn comp_group(name: &str) -> &str {
    let cut = name
        .find(|c: char| c.is_ascii_digit())
        .unwrap_or(name.len());
    name[..cut].trim_end_matches(['-', '_', '.'])
}

impl Profiler {
    pub(crate) fn new() -> Profiler {
        Profiler {
            started: Instant::now(),
            events_seen: 0,
            handler_busy: WallDuration::ZERO,
            per_comp: BTreeMap::new(),
            per_kind: BTreeMap::new(),
            queue_depth: TimeSeries::default(),
            last_depth_sample_at: None,
        }
    }

    pub(crate) fn note_event(&mut self, kind: &'static str, now: SimTime, queue_len: usize) {
        self.events_seen += 1;
        *self.per_kind.entry(kind).or_insert(0) += 1;
        if self.events_seen % DEPTH_SAMPLE_STRIDE == 1 {
            // TimeSeries requires monotone timestamps; multiple samples can
            // land on one instant, so only the first per instant is kept.
            if self.last_depth_sample_at != Some(now) {
                self.queue_depth.record(now, queue_len as f64);
                self.last_depth_sample_at = Some(now);
            }
        }
    }

    pub(crate) fn note_handler(&mut self, comp_name: &str, elapsed: WallDuration) {
        self.handler_busy += elapsed;
        // The group almost always exists: look up by borrowed key first and
        // only allocate the String on a group's first event.
        let group = comp_group(comp_name);
        let entry = if let Some(entry) = self.per_comp.get_mut(group) {
            entry
        } else {
            self.per_comp.entry(group.to_string()).or_default()
        };
        entry.events += 1;
        entry.busy += elapsed;
    }

    /// Kernel events observed while profiling.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// Wall-clock time spent inside component handlers.
    pub fn handler_busy(&self) -> WallDuration {
        self.handler_busy
    }

    /// Per-component-group profiles, keyed by group name.
    pub fn components(&self) -> &BTreeMap<String, CompProfile> {
        &self.per_comp
    }

    /// Event counts by kernel event kind (`deliver`, `timer`, ...).
    pub fn event_kinds(&self) -> &BTreeMap<&'static str, u64> {
        &self.per_kind
    }

    /// Event-queue depth sampled over virtual time.
    pub fn queue_depth(&self) -> &TimeSeries {
        &self.queue_depth
    }

    /// Human-readable end-of-run summary: totals, events/sec, the event-kind
    /// mix, and the costliest component groups.
    pub fn summary(&self) -> String {
        let elapsed = self.started.elapsed();
        let rate = self.events_seen as f64 / elapsed.as_secs_f64().max(1e-9);
        let mut out = String::new();
        let _ = writeln!(out, "kernel profile:");
        let _ = writeln!(
            out,
            "  {} events in {:.3}s wall ({:.0} events/s), {:.3}s in handlers",
            self.events_seen,
            elapsed.as_secs_f64(),
            rate,
            self.handler_busy.as_secs_f64(),
        );
        let _ = writeln!(
            out,
            "  queue depth: max {:.0}, {} samples",
            self.queue_depth.max(),
            self.queue_depth.points().len(),
        );
        let _ = writeln!(out, "  by event kind:");
        for (kind, count) in &self.per_kind {
            let _ = writeln!(out, "    {kind:<14} {count}");
        }
        let _ = writeln!(out, "  by component group (top 12 by handler time):");
        let mut groups: Vec<(&String, &CompProfile)> = self.per_comp.iter().collect();
        groups.sort_by(|a, b| b.1.busy.cmp(&a.1.busy).then_with(|| a.0.cmp(b.0)));
        for (name, p) in groups.into_iter().take(12) {
            let _ = writeln!(
                out,
                "    {name:<14} {:>9} handlers  {:>9.3}ms",
                p.events,
                p.busy.as_secs_f64() * 1e3,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comp_groups_strip_instance_suffixes() {
        assert_eq!(comp_group("jm-jc8589934593"), "jm-jc");
        assert_eq!(comp_group("shadow-5"), "shadow");
        assert_eq!(comp_group("gatekeeper"), "gatekeeper");
        assert_eq!(comp_group("site0-gris"), "site");
        assert_eq!(comp_group(""), "");
    }

    #[test]
    fn profiler_counts_and_samples() {
        let mut p = Profiler::new();
        for i in 0..1000u64 {
            p.note_event("deliver", SimTime(i * 10), i as usize % 7);
        }
        p.note_event("timer", SimTime(10_000), 3);
        assert_eq!(p.events_seen(), 1001);
        assert_eq!(p.event_kinds()["deliver"], 1000);
        assert_eq!(p.event_kinds()["timer"], 1);
        // Stride 256 → samples at events 1, 257, 513, 769 (and 1025 not hit).
        assert_eq!(p.queue_depth().points().len(), 4);
        p.note_handler("jm-jc12", WallDuration::from_micros(50));
        p.note_handler("jm-jc13", WallDuration::from_micros(70));
        let comp = &p.components()["jm-jc"];
        assert_eq!(comp.events, 2);
        assert_eq!(comp.busy, WallDuration::from_micros(120));
        let s = p.summary();
        assert!(s.contains("kernel profile:"));
        assert!(s.contains("deliver"));
        assert!(s.contains("jm-jc"));
    }

    #[test]
    fn depth_samples_stay_monotone_on_same_instant() {
        let mut p = Profiler::new();
        for _ in 0..600u64 {
            p.note_event("deliver", SimTime(5), 1);
        }
        // Two stride hits at the same instant collapse to one point.
        assert_eq!(p.queue_depth().points().len(), 1);
    }
}
