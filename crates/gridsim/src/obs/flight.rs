//! The black-box flight recorder: always-on, bounded, campaign-cheap.
//!
//! Full JSONL tracing is superb for forensics but prohibitively expensive
//! at campaign scale — a million-job run emits tens of millions of
//! records, and streaming them to disk (or keeping [`TraceEvent`] clones
//! in a [`crate::obs::RingBuffer`]) costs an allocation per event. This
//! module is the alternative an aircraft uses: a bounded ring of compact
//! fixed-size records that is cheap enough to leave on for the whole
//! flight, paired with a low-rate telemetry heartbeat and anomaly
//! detectors that dump the ring's causal window when something breaks.
//!
//! * [`FlightRecorder`] — a [`TraceSubscriber`] writing fixed-size binary
//!   slots into a preallocated ring. Kinds (always `&'static str`) are
//!   interned into a small table; detail strings are copied into a
//!   circular byte arena. After warm-up the steady state performs **no
//!   per-event heap allocation**; cause ids are preserved so a dumped
//!   window still rebuilds its happens-before DAG. `fault.*`,
//!   `broker.*`, and `gm.attempt_failed` records are *pinned* outside
//!   the ring (bounded separately)
//!   because they are the ground truth every post-mortem needs, however
//!   long ago they happened.
//! * [`TelemetrySample`] / [`TelemetryWriter`] — one JSONL heartbeat line
//!   per sim-time interval: throughput, inflight/pending backpressure,
//!   event-queue depth, per-site weather aggregates, ring occupancy.
//! * [`AnomalyDetector`] — stuck-job horizon, throughput collapse against
//!   a trailing window, quarantine storm, and backpressure stall. Each
//!   detector fires at most once; the driver dumps the causal window
//!   around the offending job/site on the first trigger.
//! * [`encode_dump`] — the binary dump format `condor-g-trace flight`
//!   decodes back into the offline record model, so critical-path blame,
//!   stuck-job reports, root-cause attribution, and Perfetto conversion
//!   all work on dumps unchanged.

use crate::event::NO_CAUSE;
use crate::metrics::Metrics;
use crate::time::{Duration, SimTime};
use crate::trace::{TraceEvent, TraceSubscriber};
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::io::Write;
use std::rc::Rc;

/// First bytes of every flight dump.
pub const DUMP_MAGIC: [u8; 4] = *b"CGFR";
/// Current dump format version.
pub const DUMP_VERSION: u16 = 1;
/// Default ring capacity (records).
pub const DEFAULT_RING: usize = 65_536;
/// Pinned `fault.*` / `broker.*` / `gm.attempt_failed` records kept
/// outside the ring.
const PIN_CAP: usize = 4_096;

/// One decoded flight record: the owned mirror of [`TraceEvent`], produced
/// when the ring is inspected or dumped (never on the hot emit path).
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecord {
    /// Virtual time of emission.
    pub time: SimTime,
    /// Node id of the emitting component.
    pub node: u32,
    /// Component id within the node.
    pub comp: u32,
    /// Machine-matchable kind.
    pub kind: String,
    /// Human-readable detail.
    pub detail: String,
    /// Kernel event the record was emitted under.
    pub id: u64,
    /// Nearest observable causal ancestor ([`NO_CAUSE`] for roots).
    pub cause: u64,
}

/// Metadata stamped on a dump: why it was taken, around what, and when.
#[derive(Debug, Clone, PartialEq)]
pub struct DumpMeta {
    /// Human-readable trigger reason (detector name + threshold).
    pub reason: String,
    /// The offending job/site the window is anchored on (empty = whole
    /// ring).
    pub anchor: String,
    /// Virtual time of the trigger.
    pub time: SimTime,
}

/// One fixed-size ring slot. Details live in the byte arena; `detail_off`
/// is a *monotone* offset (physical position is `off % arena.len()`), so
/// reclaiming evicted slots is a single pointer bump.
#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    time_us: u64,
    node: u32,
    comp: u32,
    kind: u32,
    id: u64,
    cause: u64,
    detail_off: u64,
    detail_len: u32,
}

/// One bounded ring: fixed-size slots plus a circular detail arena. The
/// recorder holds one per kernel shard so a sharded world's hot path
/// writes into its own ring; every read path (records, causal window,
/// dump) merges the rings by `(time, id)` — the kernel's global commit
/// order — so downstream consumers never see the split.
struct Ring {
    slots: Box<[Slot]>,
    /// Index of the oldest live slot.
    head: usize,
    len: usize,
    arena: Box<[u8]>,
    /// Total detail bytes ever written (monotone).
    write_off: u64,
    /// Detail bytes reclaimed from evicted slots (monotone).
    release_off: u64,
    evicted: u64,
}

impl Ring {
    fn new(capacity: usize, arena_bytes: usize) -> Ring {
        Ring {
            slots: vec![Slot::default(); capacity].into_boxed_slice(),
            head: 0,
            len: 0,
            arena: vec![0u8; arena_bytes.max(1)].into_boxed_slice(),
            write_off: 0,
            release_off: 0,
            evicted: 0,
        }
    }

    fn evict_oldest(&mut self) {
        debug_assert!(self.len > 0);
        let s = self.slots[self.head];
        self.release_off = s.detail_off + u64::from(s.detail_len);
        self.head = (self.head + 1) % self.slots.len();
        self.len -= 1;
        self.evicted += 1;
    }

    fn push_slot(&mut self, event: &TraceEvent, kind: u32) {
        if self.slots.is_empty() {
            self.evicted += 1;
            return;
        }
        let bytes = event.detail.as_bytes();
        // A detail larger than the whole arena cannot be stored whole;
        // clip at a char boundary (details are short in practice — the
        // default arena is megabytes).
        let mut dlen = bytes.len().min(self.arena.len());
        while !event.detail.is_char_boundary(dlen) {
            dlen -= 1;
        }
        if self.len == self.slots.len() {
            self.evict_oldest();
        }
        while self.write_off - self.release_off + dlen as u64 > self.arena.len() as u64 {
            self.evict_oldest();
        }
        // Copy the detail into the circular arena (possibly wrapping).
        let cap = self.arena.len();
        let off = self.write_off;
        let pos = (off % cap as u64) as usize;
        let first = dlen.min(cap - pos);
        self.arena[pos..pos + first].copy_from_slice(&bytes[..first]);
        self.arena[..dlen - first].copy_from_slice(&bytes[first..dlen]);
        self.write_off += dlen as u64;
        let tail = (self.head + self.len) % self.slots.len();
        self.slots[tail] = Slot {
            time_us: event.time.micros(),
            node: event.addr.node.0,
            comp: event.addr.comp.0,
            kind,
            id: event.id,
            cause: event.cause,
            detail_off: off,
            detail_len: dlen as u32,
        };
        self.len += 1;
    }

    fn detail_of(&self, s: &Slot) -> String {
        let cap = self.arena.len();
        let dlen = s.detail_len as usize;
        let pos = (s.detail_off % cap as u64) as usize;
        let first = dlen.min(cap - pos);
        let mut bytes = Vec::with_capacity(dlen);
        bytes.extend_from_slice(&self.arena[pos..pos + first]);
        bytes.extend_from_slice(&self.arena[..dlen - first]);
        String::from_utf8(bytes).expect("arena holds whole UTF-8 details")
    }

    fn record_at(&self, i: usize, kinds: &[&'static str]) -> FlightRecord {
        let s = &self.slots[(self.head + i) % self.slots.len()];
        FlightRecord {
            time: SimTime(s.time_us),
            node: s.node,
            comp: s.comp,
            kind: kinds[s.kind as usize].to_string(),
            detail: self.detail_of(s),
            id: s.id,
            cause: s.cause,
        }
    }
}

struct Inner {
    /// One ring per kernel shard. Never empty; a single-shard recorder is
    /// exactly the old flat ring.
    rings: Vec<Ring>,
    /// Node → shard routing, mirrored from the world (unlisted nodes and
    /// the external address route to ring 0).
    node_shard: Vec<u32>,
    /// Kind intern table, shared across rings (kinds are `&'static str`
    /// so the table is tiny and merge needs no translation).
    kinds: Vec<&'static str>,
    kind_index: HashMap<&'static str, u32>,
    pinned: VecDeque<FlightRecord>,
    pinned_dropped: u64,
    seen: u64,
    quarantines: u64,
    last_quarantine_site: Option<String>,
}

impl Inner {
    fn intern(&mut self, kind: &'static str) -> u32 {
        if let Some(&idx) = self.kind_index.get(kind) {
            return idx;
        }
        let idx = self.kinds.len() as u32;
        self.kinds.push(kind);
        self.kind_index.insert(kind, idx);
        idx
    }

    /// The ring `node`'s records go to.
    fn ring_of(&self, node: u32) -> usize {
        let s = self.node_shard.get(node as usize).copied().unwrap_or(0) as usize;
        s.min(self.rings.len() - 1)
    }

    fn push(&mut self, event: &TraceEvent) {
        self.seen += 1;
        // Faults, broker transitions, and failed submit attempts are the
        // ground truth of every post-mortem; pin them so they survive
        // however far the ring has rotated by the time an anomaly fires.
        // (A busy campaign evicts a 50-minute-old `gm.attempt_failed`
        // long before the detector's next interval.)
        if event.kind.starts_with("fault.")
            || event.kind.starts_with("broker.")
            || event.kind == "gm.attempt_failed"
        {
            if event.kind == "broker.quarantine" {
                self.quarantines += 1;
                self.last_quarantine_site = event
                    .detail
                    .split_whitespace()
                    .find_map(|w| w.strip_prefix("site="))
                    .map(str::to_string);
            }
            if self.pinned.len() >= PIN_CAP {
                self.pinned.pop_front();
                self.pinned_dropped += 1;
            }
            self.pinned.push_back(FlightRecord {
                time: event.time,
                node: event.addr.node.0,
                comp: event.addr.comp.0,
                kind: event.kind.to_string(),
                detail: event.detail.clone(),
                id: event.id,
                cause: event.cause,
            });
            return;
        }
        let kind = self.intern(event.kind);
        let r = self.ring_of(event.addr.node.0);
        self.rings[r].push_slot(event, kind);
    }
}

/// The flight-recorder subscriber. Cloning yields a handle onto the same
/// ring (the [`crate::obs::RingBuffer`] idiom), so the caller keeps one
/// handle for dumps after boxing the other into the
/// [`crate::trace::TraceSink`]:
///
/// ```
/// use gridsim::obs::FlightRecorder;
/// let rec = FlightRecorder::new(1024);
/// let handle = rec.clone();
/// // world.trace_mut().subscribe(Box::new(rec));
/// // ... on anomaly: handle.dump("stuck job", "", now)
/// # let _ = handle.len();
/// ```
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Rc<RefCell<Inner>>,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` records, with a detail arena
    /// of 64 bytes per slot.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder::with_arena(capacity, (capacity * 64).max(4096))
    }

    /// A recorder with an explicit detail-arena size in bytes (tests use
    /// tiny arenas to exercise wraparound).
    pub fn with_arena(capacity: usize, arena_bytes: usize) -> FlightRecorder {
        FlightRecorder {
            inner: Rc::new(RefCell::new(Inner {
                rings: vec![Ring::new(capacity, arena_bytes)],
                node_shard: Vec::new(),
                kinds: Vec::new(),
                kind_index: HashMap::new(),
                pinned: VecDeque::new(),
                pinned_dropped: 0,
                seen: 0,
                quarantines: 0,
                last_quarantine_site: None,
            })),
        }
    }

    /// A recorder with `capacity` total records split evenly across
    /// `shards` per-shard rings. Call [`assign_node_shards`] with the
    /// world's node→shard table so each push lands in its shard's ring;
    /// with one shard this is exactly [`FlightRecorder::new`].
    ///
    /// [`assign_node_shards`]: FlightRecorder::assign_node_shards
    pub fn with_shards(capacity: usize, shards: usize) -> FlightRecorder {
        let shards = shards.max(1);
        let per = capacity.div_ceil(shards);
        FlightRecorder {
            inner: Rc::new(RefCell::new(Inner {
                rings: (0..shards)
                    .map(|_| Ring::new(per, (per * 64).max(4096)))
                    .collect(),
                node_shard: Vec::new(),
                kinds: Vec::new(),
                kind_index: HashMap::new(),
                pinned: VecDeque::new(),
                pinned_dropped: 0,
                seen: 0,
                quarantines: 0,
                last_quarantine_site: None,
            })),
        }
    }

    /// Install the node→shard routing table (index = node id, value =
    /// shard). Unlisted nodes, and shards beyond the ring count, route to
    /// ring 0 / the last ring respectively.
    pub fn assign_node_shards(&self, map: &[u32]) {
        self.inner.borrow_mut().node_shard = map.to_vec();
    }

    /// Number of per-shard rings (1 unless built with
    /// [`FlightRecorder::with_shards`]).
    pub fn ring_count(&self) -> usize {
        self.inner.borrow().rings.len()
    }

    /// Records currently held, summed across rings (≤ capacity).
    pub fn len(&self) -> usize {
        self.inner.borrow().rings.iter().map(|r| r.len).sum()
    }

    /// True when the ring holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events offered to the recorder.
    pub fn seen(&self) -> u64 {
        self.inner.borrow().seen
    }

    /// Ring records evicted to stay within capacity (all rings).
    pub fn evicted(&self) -> u64 {
        self.inner.borrow().rings.iter().map(|r| r.evicted).sum()
    }

    /// Pinned fault/broker records dropped because the pin buffer filled.
    pub fn pinned_dropped(&self) -> u64 {
        self.inner.borrow().pinned_dropped
    }

    /// Distinct kinds interned so far.
    pub fn kind_count(&self) -> usize {
        self.inner.borrow().kinds.len()
    }

    /// `broker.quarantine` records observed (cumulative).
    pub fn quarantines(&self) -> u64 {
        self.inner.borrow().quarantines
    }

    /// Site named by the most recent `broker.quarantine` record.
    pub fn last_quarantine_site(&self) -> Option<String> {
        self.inner.borrow().last_quarantine_site.clone()
    }

    /// Decode the live rings merged into global `(time, id)` order —
    /// the kernel's commit order, so cross-shard cause links stay
    /// consistent — oldest first (pinned records not included).
    pub fn records(&self) -> Vec<FlightRecord> {
        let inner = self.inner.borrow();
        let mut out: Vec<FlightRecord> = inner
            .rings
            .iter()
            .flat_map(|r| (0..r.len).map(|i| r.record_at(i, &inner.kinds)))
            .collect();
        out.sort_by_key(|r| (r.time, r.id));
        out
    }

    /// The pinned records (faults, broker verdicts, failed attempts),
    /// oldest first.
    pub fn pinned(&self) -> Vec<FlightRecord> {
        self.inner.borrow().pinned.iter().cloned().collect()
    }

    /// The causal window around `anchor`: every ring record whose detail
    /// mentions the anchor, closed over the happens-before relation in
    /// *both* directions (ancestors via `cause` links, descendants via
    /// records that name a kept record's event as their cause), plus all
    /// pinned fault/broker records — merged in time order. The two-sided
    /// cone is what forensics needs: the stall's ancestors explain *why*,
    /// its descendants (retries, failures, resubmits) show the *blast
    /// radius*. An empty anchor selects the whole ring.
    pub fn causal_window(&self, anchor: &str) -> Vec<FlightRecord> {
        let ring = self.records();
        let mut out = self.pinned();
        if anchor.is_empty() {
            out.extend(ring);
        } else {
            let mut by_id: HashMap<u64, Vec<usize>> = HashMap::new();
            let mut by_cause: HashMap<u64, Vec<usize>> = HashMap::new();
            for (i, r) in ring.iter().enumerate() {
                if r.id != NO_CAUSE {
                    by_id.entry(r.id).or_default().push(i);
                }
                if r.cause != NO_CAUSE {
                    by_cause.entry(r.cause).or_default().push(i);
                }
            }
            let mut keep = vec![false; ring.len()];
            let mut stack: Vec<usize> = Vec::new();
            for (i, r) in ring.iter().enumerate() {
                if r.detail.contains(anchor) {
                    keep[i] = true;
                    stack.push(i);
                }
            }
            while let Some(i) = stack.pop() {
                let r = &ring[i];
                let up = by_id.get(&r.cause).into_iter().flatten();
                let down = by_cause.get(&r.id).into_iter().flatten();
                for &j in up.chain(down) {
                    if !keep[j] {
                        keep[j] = true;
                        stack.push(j);
                    }
                }
            }
            out.extend(
                ring.into_iter()
                    .zip(&keep)
                    .filter(|(_, &k)| k)
                    .map(|(r, _)| r),
            );
        }
        out.sort_by_key(|r| (r.time, r.id));
        out
    }

    /// Encode the causal window around `anchor` as a binary dump.
    pub fn dump(&self, reason: &str, anchor: &str, now: SimTime) -> Vec<u8> {
        let meta = DumpMeta {
            reason: reason.to_string(),
            anchor: anchor.to_string(),
            time: now,
        };
        encode_dump(&meta, &self.causal_window(anchor))
    }
}

impl TraceSubscriber for FlightRecorder {
    fn on_event(&mut self, event: &TraceEvent) {
        self.inner.borrow_mut().push(event);
    }
}

// ---- binary dump format ------------------------------------------------
//
//   magic "CGFR" | version u16 | reason str | anchor str | time u64
//   | kind count u32 | kinds (str)* | record count u64
//   | records (time u64, node u32, comp u32, kind u32, id u64, cause u64,
//              detail str)*
//
// All integers little-endian; `str` is a u32 byte length + UTF-8 bytes.

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Encode `records` (with `meta`) into the flight dump format decoded by
/// `condor-g-trace flight` (crates/trace `flight::decode`).
pub fn encode_dump(meta: &DumpMeta, records: &[FlightRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + records.len() * 48);
    out.extend_from_slice(&DUMP_MAGIC);
    out.extend_from_slice(&DUMP_VERSION.to_le_bytes());
    put_str(&mut out, &meta.reason);
    put_str(&mut out, &meta.anchor);
    out.extend_from_slice(&meta.time.micros().to_le_bytes());
    // Dump-local kind table, in first-appearance order.
    let mut kinds: Vec<&str> = Vec::new();
    let mut index: HashMap<&str, u32> = HashMap::new();
    for r in records {
        index.entry(&r.kind).or_insert_with(|| {
            kinds.push(&r.kind);
            (kinds.len() - 1) as u32
        });
    }
    out.extend_from_slice(&(kinds.len() as u32).to_le_bytes());
    for k in &kinds {
        put_str(&mut out, k);
    }
    out.extend_from_slice(&(records.len() as u64).to_le_bytes());
    for r in records {
        out.extend_from_slice(&r.time.micros().to_le_bytes());
        out.extend_from_slice(&r.node.to_le_bytes());
        out.extend_from_slice(&r.comp.to_le_bytes());
        out.extend_from_slice(&index[r.kind.as_str()].to_le_bytes());
        out.extend_from_slice(&r.id.to_le_bytes());
        out.extend_from_slice(&r.cause.to_le_bytes());
        put_str(&mut out, &r.detail);
    }
    out
}

// ---- streaming telemetry -----------------------------------------------

/// One heartbeat: the campaign's vitals at a sim-time instant. Drivers
/// fill what they know; fields they cannot observe stay zero.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySample {
    /// Virtual time, microseconds.
    pub t_us: u64,
    /// Kernel events processed so far.
    pub events: u64,
    /// Event-queue depth at sampling time.
    pub queue_depth: u64,
    /// Jobs finished successfully (cumulative).
    pub done: u64,
    /// Jobs failed/removed (cumulative).
    pub failed: u64,
    /// Jobs submitted so far (cumulative).
    pub dispatched: u64,
    /// Jobs submitted but not yet terminal.
    pub inflight: u64,
    /// Due arrivals buffered behind the in-flight window.
    pub pending: u64,
    /// The in-flight window bound (0 = unbounded/unknown).
    pub window: u64,
    /// Age of the oldest in-flight job, seconds.
    pub oldest_wait_secs: f64,
    /// Sites with weather counters.
    pub sites: u64,
    /// Sum of per-site gatekeeper submits.
    pub site_submits: u64,
    /// Sum of per-site client-side attempt failures.
    pub site_attempt_failures: u64,
    /// `broker.quarantine` transitions observed (cumulative).
    pub quarantines: u64,
    /// Flight-ring occupancy.
    pub ring_len: u64,
    /// Flight-ring records evicted so far.
    pub ring_evicted: u64,
    /// Kernel shard count (0 = unknown/unsharded driver).
    pub shards: u64,
    /// Events committed per shard, in shard order (empty if unknown).
    pub shard_events: Vec<u64>,
}

/// Sum the per-site weather counters without building full weather rows
/// (no histogram sorting on the heartbeat path).
pub fn site_aggregates(m: &Metrics) -> (u64, u64, u64) {
    let mut sites: BTreeSet<&str> = BTreeSet::new();
    let (mut submits, mut failures) = (0u64, 0u64);
    for (name, v) in m.counters() {
        let Some(rest) = name.strip_prefix("site.") else {
            continue;
        };
        if let Some(site) = rest.strip_suffix(".submits") {
            if !site.is_empty() {
                sites.insert(site);
                submits += v;
            }
        } else if let Some(site) = rest.strip_suffix(".attempt_failures") {
            if !site.is_empty() {
                sites.insert(site);
                failures += v;
            }
        }
    }
    (sites.len() as u64, submits, failures)
}

/// Render one heartbeat as a single JSONL line (no trailing newline).
pub fn telemetry_line(s: &TelemetrySample) -> String {
    let shard_events = s
        .shard_events
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"t\":{},\"events\":{},\"queue\":{},\"done\":{},\"failed\":{},\"dispatched\":{},\
         \"inflight\":{},\"pending\":{},\"window\":{},\"oldest_wait_secs\":{:.1},\"sites\":{},\
         \"site_submits\":{},\"site_attempt_failures\":{},\"quarantines\":{},\"ring\":{},\
         \"ring_evicted\":{},\"shards\":{},\"shard_events\":[{}]}}",
        s.t_us,
        s.events,
        s.queue_depth,
        s.done,
        s.failed,
        s.dispatched,
        s.inflight,
        s.pending,
        s.window,
        s.oldest_wait_secs,
        s.sites,
        s.site_submits,
        s.site_attempt_failures,
        s.quarantines,
        s.ring_len,
        s.ring_evicted,
        s.shards,
        shard_events,
    )
}

/// Streams heartbeat (and anomaly) lines to a writer, best-effort like the
/// JSONL trace exporter: the simulation never aborts on telemetry I/O.
pub struct TelemetryWriter<W: Write> {
    writer: W,
    lines: u64,
    errored: bool,
}

impl<W: Write> TelemetryWriter<W> {
    /// Stream heartbeats to `writer`.
    pub fn new(writer: W) -> TelemetryWriter<W> {
        TelemetryWriter {
            writer,
            lines: 0,
            errored: false,
        }
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// True if any write failed.
    pub fn errored(&self) -> bool {
        self.errored
    }

    fn line(&mut self, line: &str) {
        if self.errored {
            return;
        }
        if writeln!(self.writer, "{line}").is_err() {
            self.errored = true;
            return;
        }
        self.lines += 1;
    }

    /// Write one heartbeat line.
    pub fn emit(&mut self, s: &TelemetrySample) {
        self.line(&telemetry_line(s));
    }

    /// Write one anomaly line (interleaved with heartbeats, distinguished
    /// by the `"anomaly"` key).
    pub fn anomaly(&mut self, t_us: u64, a: &Anomaly) {
        let line = format!(
            "{{\"t\":{},\"anomaly\":{},\"reason\":{},\"anchor\":{}}}",
            t_us,
            crate::obs::export::json_string(a.kind.name()),
            crate::obs::export::json_string(&a.reason),
            crate::obs::export::json_string(a.anchor.as_deref().unwrap_or("")),
        );
        self.line(&line);
    }

    /// Flush buffered output.
    pub fn flush(&mut self) {
        if self.writer.flush().is_err() {
            self.errored = true;
        }
    }
}

impl TelemetryWriter<std::io::BufWriter<std::fs::File>> {
    /// Create (truncate) `path` and stream heartbeats through a buffer.
    pub fn create(path: &str) -> std::io::Result<Self> {
        Ok(TelemetryWriter::new(std::io::BufWriter::new(
            std::fs::File::create(path)?,
        )))
    }
}

// ---- anomaly detectors -------------------------------------------------

/// Thresholds for the four detectors. Zeroing a threshold disables its
/// detector (`quarantine_storm: 0` etc.).
#[derive(Debug, Clone)]
pub struct DetectorConfig {
    /// Oldest in-flight job older than this is a stuck-job anomaly.
    pub stuck_horizon: Duration,
    /// Interval completions below this fraction of the trailing mean is a
    /// throughput collapse.
    pub collapse_fraction: f64,
    /// Trailing mean must be at least this many completions/interval
    /// before the collapse detector arms (quiet starts are not collapses).
    pub collapse_min_mean: f64,
    /// Intervals in the trailing window.
    pub trailing_intervals: usize,
    /// New quarantines within one interval that count as a storm.
    pub quarantine_storm: u64,
    /// Consecutive full-window zero-completion intervals that count as a
    /// backpressure stall.
    pub stall_intervals: u32,
}

impl Default for DetectorConfig {
    fn default() -> DetectorConfig {
        DetectorConfig {
            stuck_horizon: Duration::from_hours(4),
            collapse_fraction: 0.2,
            collapse_min_mean: 100.0,
            trailing_intervals: 8,
            quarantine_storm: 3,
            stall_intervals: 3,
        }
    }
}

/// What tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalyKind {
    /// Oldest in-flight job exceeded the horizon.
    StuckJob,
    /// Completions collapsed against the trailing window.
    ThroughputCollapse,
    /// A burst of site quarantines in one interval.
    QuarantineStorm,
    /// In-flight window full with zero completions, repeatedly.
    BackpressureStall,
}

impl AnomalyKind {
    /// Stable snake-case name (telemetry key, dump reason prefix).
    pub fn name(self) -> &'static str {
        match self {
            AnomalyKind::StuckJob => "stuck_job",
            AnomalyKind::ThroughputCollapse => "throughput_collapse",
            AnomalyKind::QuarantineStorm => "quarantine_storm",
            AnomalyKind::BackpressureStall => "backpressure_stall",
        }
    }
}

/// A detector verdict: what tripped, why, and (when known) the job/site
/// the dump window should anchor on.
#[derive(Debug, Clone)]
pub struct Anomaly {
    /// Which detector.
    pub kind: AnomalyKind,
    /// Threshold arithmetic, human-readable.
    pub reason: String,
    /// Dump anchor (`None` = dump the whole ring).
    pub anchor: Option<String>,
}

/// Runs the four detectors over successive [`TelemetrySample`]s. Each
/// detector fires at most once per run — a black box records the incident,
/// it does not spam dumps while the incident persists.
#[derive(Debug, Default)]
pub struct AnomalyDetector {
    config: DetectorConfig,
    history: VecDeque<u64>,
    prev_settled: u64,
    prev_quarantines: u64,
    stall_run: u32,
    fired: Vec<AnomalyKind>,
}

impl AnomalyDetector {
    /// A detector with the given thresholds.
    pub fn new(config: DetectorConfig) -> AnomalyDetector {
        AnomalyDetector {
            config,
            ..AnomalyDetector::default()
        }
    }

    fn fire(
        &mut self,
        out: &mut Vec<Anomaly>,
        kind: AnomalyKind,
        reason: String,
        anchor: Option<String>,
    ) {
        if self.fired.contains(&kind) {
            return;
        }
        self.fired.push(kind);
        out.push(Anomaly {
            kind,
            reason,
            anchor,
        });
    }

    /// Feed one heartbeat; `quarantine_site` names the most recently
    /// quarantined site (the storm anchor), if any. Returns newly fired
    /// anomalies.
    pub fn observe(&mut self, s: &TelemetrySample, quarantine_site: Option<&str>) -> Vec<Anomaly> {
        let mut out = Vec::new();
        let settled = s.done + s.failed;
        let delta = settled.saturating_sub(self.prev_settled);
        let new_quarantines = s.quarantines.saturating_sub(self.prev_quarantines);
        self.prev_settled = settled;
        self.prev_quarantines = s.quarantines;

        let horizon = self.config.stuck_horizon.as_secs_f64();
        if horizon > 0.0 && s.inflight > 0 && s.oldest_wait_secs > horizon {
            self.fire(
                &mut out,
                AnomalyKind::StuckJob,
                format!(
                    "oldest in-flight job waited {:.0}s (> {horizon:.0}s horizon)",
                    s.oldest_wait_secs
                ),
                None,
            );
        }
        if self.config.quarantine_storm > 0 && new_quarantines >= self.config.quarantine_storm {
            self.fire(
                &mut out,
                AnomalyKind::QuarantineStorm,
                format!(
                    "{new_quarantines} quarantines in one interval (>= {})",
                    self.config.quarantine_storm
                ),
                quarantine_site.map(str::to_string),
            );
        }
        if self.history.len() == self.config.trailing_intervals
            && self.config.trailing_intervals > 0
        {
            let mean =
                self.history.iter().sum::<u64>() as f64 / self.config.trailing_intervals as f64;
            if mean >= self.config.collapse_min_mean
                && (delta as f64) < self.config.collapse_fraction * mean
            {
                self.fire(
                    &mut out,
                    AnomalyKind::ThroughputCollapse,
                    format!(
                        "{delta} completions this interval vs trailing mean {mean:.0} \
                         (< {:.0}%)",
                        self.config.collapse_fraction * 100.0
                    ),
                    None,
                );
            }
        }
        self.history.push_back(delta);
        while self.history.len() > self.config.trailing_intervals {
            self.history.pop_front();
        }
        if self.config.stall_intervals > 0 {
            if s.window > 0 && s.inflight >= s.window && delta == 0 {
                self.stall_run += 1;
                if self.stall_run >= self.config.stall_intervals {
                    self.fire(
                        &mut out,
                        AnomalyKind::BackpressureStall,
                        format!(
                            "in-flight window full ({}) with 0 completions for {} intervals",
                            s.window, self.stall_run
                        ),
                        None,
                    );
                }
            } else {
                self.stall_run = 0;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{Addr, CompId, NodeId};

    fn ev(time_us: u64, kind: &'static str, detail: &str, id: u64, cause: u64) -> TraceEvent {
        TraceEvent {
            time: SimTime(time_us),
            addr: Addr {
                node: NodeId(1),
                comp: CompId(2),
            },
            kind,
            detail: detail.to_string(),
            id,
            cause,
        }
    }

    fn feed(rec: &FlightRecorder, events: &[TraceEvent]) {
        let mut sub = rec.clone();
        for e in events {
            sub.on_event(e);
        }
    }

    #[test]
    fn ring_fills_to_capacity_without_eviction() {
        let rec = FlightRecorder::new(4);
        feed(
            &rec,
            &(0..4)
                .map(|i| ev(i, "k.a", &format!("d{i}"), i, NO_CAUSE))
                .collect::<Vec<_>>(),
        );
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.evicted(), 0);
        let details: Vec<_> = rec.records().into_iter().map(|r| r.detail).collect();
        assert_eq!(details, vec!["d0", "d1", "d2", "d3"]);
    }

    #[test]
    fn ring_wraps_at_capacity_boundary() {
        let rec = FlightRecorder::new(4);
        feed(
            &rec,
            &(0..7)
                .map(|i| ev(i, "k.a", &format!("d{i}"), i, NO_CAUSE))
                .collect::<Vec<_>>(),
        );
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.seen(), 7);
        assert_eq!(rec.evicted(), 3);
        let details: Vec<_> = rec.records().into_iter().map(|r| r.detail).collect();
        assert_eq!(
            details,
            vec!["d3", "d4", "d5", "d6"],
            "oldest evicted first"
        );
        // Exactly one more: boundary eviction stays consistent.
        feed(&rec, &[ev(7, "k.a", "d7", 7, NO_CAUSE)]);
        let details: Vec<_> = rec.records().into_iter().map(|r| r.detail).collect();
        assert_eq!(details, vec!["d4", "d5", "d6", "d7"]);
    }

    #[test]
    fn arena_wraps_and_details_survive() {
        // 10-byte details in a 16-byte arena: at most one fits whole, so
        // the circular byte buffer wraps on nearly every push and eviction
        // is driven by arena pressure, not slot count.
        let rec = FlightRecorder::with_arena(3, 16);
        for i in 0..50u64 {
            feed(
                &rec,
                &[ev(i, "k.a", &format!("detail-{i:03}"), i, NO_CAUSE)],
            );
        }
        let details: Vec<_> = rec.records().into_iter().map(|r| r.detail).collect();
        assert!(!details.is_empty() && details.len() <= 3);
        assert_eq!(details.last().map(String::as_str), Some("detail-049"));
        for (i, d) in details.iter().enumerate() {
            assert_eq!(d, &format!("detail-{:03}", 50 - details.len() + i));
        }
        assert_eq!(rec.seen(), 50);
        assert_eq!(rec.evicted() as usize, 50 - details.len());
    }

    #[test]
    fn capacity_zero_only_counts() {
        let rec = FlightRecorder::new(0);
        feed(&rec, &[ev(0, "k.a", "x", 0, NO_CAUSE)]);
        assert_eq!(rec.len(), 0);
        assert_eq!(rec.seen(), 1);
        assert_eq!(rec.evicted(), 1);
        assert!(rec.records().is_empty());
    }

    #[test]
    fn oversized_detail_clips_at_char_boundary() {
        let rec = FlightRecorder::with_arena(2, 8);
        // 3-byte chars: 4 of them = 12 bytes > 8-byte arena; clip must not
        // split the third character.
        feed(&rec, &[ev(0, "k.a", "€€€€", 0, NO_CAUSE)]);
        let r = rec.records();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].detail, "€€");
    }

    #[test]
    fn pinned_records_survive_ring_churn() {
        let rec = FlightRecorder::new(4);
        feed(&rec, &[ev(5, "fault.crash", "node=gk.siteA", 1, NO_CAUSE)]);
        feed(
            &rec,
            &(0..100)
                .map(|i| ev(10 + i, "k.a", &format!("d{i}"), 10 + i, NO_CAUSE))
                .collect::<Vec<_>>(),
        );
        let pinned = rec.pinned();
        assert_eq!(pinned.len(), 1);
        assert_eq!(pinned[0].kind, "fault.crash");
        assert_eq!(pinned[0].detail, "node=gk.siteA");
        // Pinned records do not occupy ring slots.
        assert_eq!(rec.len(), 4);
        // And every dump window carries them.
        let window = rec.causal_window("d99");
        assert!(window.iter().any(|r| r.kind == "fault.crash"));
    }

    #[test]
    fn quarantine_counter_and_site() {
        let rec = FlightRecorder::new(4);
        feed(
            &rec,
            &[
                ev(
                    1,
                    "broker.quarantine",
                    "site=alpha reason=failures",
                    1,
                    NO_CAUSE,
                ),
                ev(
                    2,
                    "broker.quarantine",
                    "site=beta reason=failures",
                    2,
                    NO_CAUSE,
                ),
            ],
        );
        assert_eq!(rec.quarantines(), 2);
        assert_eq!(rec.last_quarantine_site().as_deref(), Some("beta"));
        assert_eq!(rec.pinned().len(), 2);
    }

    #[test]
    fn causal_window_follows_cause_links_both_ways() {
        let rec = FlightRecorder::new(16);
        feed(
            &rec,
            &[
                ev(1, "k.root", "origin", 1, NO_CAUSE),
                ev(2, "k.mid", "relay", 2, 1),
                ev(3, "k.leaf", "job=42 stuck", 3, 2),
                ev(4, "k.retry", "resubmit after stall", 4, 3),
                ev(5, "k.other", "unrelated", 5, NO_CAUSE),
            ],
        );
        let window = rec.causal_window("job=42");
        let kinds: Vec<_> = window.iter().map(|r| r.kind.as_str()).collect();
        // Ancestors (why) and descendants (blast radius), not bystanders.
        assert_eq!(kinds, vec!["k.root", "k.mid", "k.leaf", "k.retry"]);
        // Empty anchor selects everything.
        assert_eq!(rec.causal_window("").len(), 5);
    }

    #[test]
    fn dump_starts_with_magic_and_version() {
        let rec = FlightRecorder::new(4);
        feed(&rec, &[ev(1, "k.a", "x", 1, NO_CAUSE)]);
        let bytes = rec.dump("test", "", SimTime(9));
        assert_eq!(&bytes[..4], &DUMP_MAGIC);
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), DUMP_VERSION);
    }

    #[test]
    fn site_aggregates_sums_counters() {
        let mut m = Metrics::default();
        m.incr("site.alpha.submits", 10);
        m.incr("site.alpha.attempt_failures", 2);
        m.incr("site.beta.submits", 5);
        m.incr("unrelated.counter", 99);
        let (sites, submits, failures) = site_aggregates(&m);
        assert_eq!(sites, 2);
        assert_eq!(submits, 15);
        assert_eq!(failures, 2);
    }

    #[test]
    fn telemetry_line_is_stable_json() {
        let s = TelemetrySample {
            t_us: 1_000_000,
            events: 10,
            done: 3,
            oldest_wait_secs: 1.25,
            ..TelemetrySample::default()
        };
        let line = telemetry_line(&s);
        assert!(line.starts_with("{\"t\":1000000,"));
        assert!(line.contains("\"done\":3"));
        assert!(line.contains("\"oldest_wait_secs\":1.2"));
        assert!(line.contains("\"shards\":0,\"shard_events\":[]"));
        assert!(line.ends_with('}'));
    }

    #[test]
    fn telemetry_line_renders_shard_events() {
        let s = TelemetrySample {
            shards: 3,
            shard_events: vec![10, 20, 30],
            ..TelemetrySample::default()
        };
        let line = telemetry_line(&s);
        assert!(line.contains("\"shards\":3,\"shard_events\":[10,20,30]"));
    }

    #[test]
    fn telemetry_writer_counts_lines() {
        let mut w = TelemetryWriter::new(Vec::new());
        w.emit(&TelemetrySample::default());
        w.anomaly(
            5,
            &Anomaly {
                kind: AnomalyKind::StuckJob,
                reason: "r".into(),
                anchor: Some("gj1".into()),
            },
        );
        w.flush();
        assert_eq!(w.lines(), 2);
        assert!(!w.errored());
    }

    fn sample(done: u64, inflight: u64, window: u64, oldest: f64, q: u64) -> TelemetrySample {
        TelemetrySample {
            done,
            inflight,
            window,
            oldest_wait_secs: oldest,
            quarantines: q,
            ..TelemetrySample::default()
        }
    }

    #[test]
    fn stuck_job_detector_fires_once() {
        let mut d = AnomalyDetector::new(DetectorConfig::default());
        let horizon = DetectorConfig::default().stuck_horizon.as_secs_f64();
        assert!(d
            .observe(&sample(0, 1, 0, horizon - 1.0, 0), None)
            .is_empty());
        let fired = d.observe(&sample(0, 1, 0, horizon + 1.0, 0), None);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, AnomalyKind::StuckJob);
        // Still stuck next interval: no re-fire.
        assert!(d
            .observe(&sample(0, 1, 0, horizon + 2.0, 0), None)
            .is_empty());
    }

    #[test]
    fn quarantine_storm_detector_anchors_on_site() {
        let mut d = AnomalyDetector::new(DetectorConfig {
            quarantine_storm: 2,
            ..DetectorConfig::default()
        });
        assert!(d
            .observe(&sample(0, 0, 0, 0.0, 1), Some("alpha"))
            .is_empty());
        let fired = d.observe(&sample(0, 0, 0, 0.0, 3), Some("beta"));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, AnomalyKind::QuarantineStorm);
        assert_eq!(fired[0].anchor.as_deref(), Some("beta"));
    }

    #[test]
    fn throughput_collapse_needs_full_trailing_window() {
        let config = DetectorConfig {
            trailing_intervals: 3,
            collapse_min_mean: 10.0,
            ..DetectorConfig::default()
        };
        let mut d = AnomalyDetector::new(config);
        let mut done = 0;
        for _ in 0..3 {
            done += 100;
            assert!(d.observe(&sample(done, 0, 0, 0.0, 0), None).is_empty());
        }
        // Now the window is full with mean 100; one dead interval collapses.
        let fired = d.observe(&sample(done, 0, 0, 0.0, 0), None);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, AnomalyKind::ThroughputCollapse);
    }

    #[test]
    fn collapse_does_not_arm_on_quiet_start() {
        let mut d = AnomalyDetector::new(DetectorConfig {
            trailing_intervals: 2,
            ..DetectorConfig::default()
        });
        // Mean stays below collapse_min_mean: never fires.
        for _ in 0..10 {
            assert!(d.observe(&sample(0, 0, 0, 0.0, 0), None).is_empty());
        }
    }

    #[test]
    fn backpressure_stall_needs_consecutive_full_window_zeroes() {
        let mut d = AnomalyDetector::new(DetectorConfig {
            stall_intervals: 2,
            ..DetectorConfig::default()
        });
        assert!(d.observe(&sample(0, 8, 8, 0.0, 0), None).is_empty());
        let fired = d.observe(&sample(0, 8, 8, 0.0, 0), None);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, AnomalyKind::BackpressureStall);
        // A completing interval resets the run for other detectors, but
        // this one already fired once and stays quiet.
        assert!(d.observe(&sample(5, 8, 8, 0.0, 0), None).is_empty());
        assert!(d.observe(&sample(5, 8, 8, 0.0, 0), None).is_empty());
    }

    #[test]
    fn sharded_rings_route_by_node_and_merge_in_commit_order() {
        // Node 1 → ring 0, node 2 → ring 1. Events arrive at the recorder
        // in kernel commit order but land in different rings; the read
        // path must merge them back into (time, id) order.
        let rec = FlightRecorder::with_shards(16, 2);
        rec.assign_node_shards(&[0, 0, 1]);
        assert_eq!(rec.ring_count(), 2);
        let mk =
            |node: u32, t: u64, kind: &'static str, detail: &str, id: u64, cause: u64| TraceEvent {
                time: SimTime(t),
                addr: Addr {
                    node: NodeId(node),
                    comp: CompId(1),
                },
                kind,
                detail: detail.to_string(),
                id,
                cause,
            };
        feed(
            &rec,
            &[
                mk(1, 1, "k.send", "job=7 submit", 1, NO_CAUSE),
                mk(2, 2, "k.recv", "job=7 arrived", 2, 1),
                mk(2, 3, "k.exec", "job=7 running", 3, 2),
                mk(1, 4, "k.ack", "job=7 done", 4, 3),
                mk(1, 5, "k.noise", "unrelated", 5, NO_CAUSE),
            ],
        );
        let merged = rec.records();
        let ids: Vec<u64> = merged.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5], "merged in (time, id) order");
        // The causal chain crosses shards twice (1→2, 2→1); the window
        // must follow the cause ids through the merge.
        let window = rec.causal_window("job=7");
        let kinds: Vec<&str> = window.iter().map(|r| r.kind.as_str()).collect();
        assert_eq!(kinds, vec!["k.send", "k.recv", "k.exec", "k.ack"]);
        // Cause links survive intact.
        assert_eq!(window[1].cause, window[0].id);
        assert_eq!(window[3].cause, window[2].id);
    }

    #[test]
    fn kind_interning_is_deduplicated() {
        let rec = FlightRecorder::new(8);
        for i in 0..8u64 {
            let kind = if i % 2 == 0 { "k.even" } else { "k.odd" };
            feed(&rec, &[ev(i, kind, "d", i, NO_CAUSE)]);
        }
        assert_eq!(rec.kind_count(), 2);
    }
}
