//! Observability: trace subscribers, job-lifecycle spans, metrics export,
//! and the kernel profiler.
//!
//! The paper's results are observations — protocol ladders (Figures 1–2),
//! CPU-hour integrals, failure/retry counts from week-long campaigns. This
//! module family turns the kernel's raw trace and metrics sinks into those
//! artifacts:
//!
//! * [`subscriber`] — pluggable [`crate::trace::TraceSubscriber`]s: a
//!   bounded [`RingBuffer`], kind/node [`TraceFilter`]s, and a streaming
//!   [`JsonlWriter`], so tracing stays on for long campaigns with bounded
//!   memory.
//! * [`span`] — the [`SpanCollector`] stitches `"span"` milestone events
//!   into per-job submit → auth → commit → stage-in → queue → execute →
//!   stage-out → terminal timelines, renders the generalized Figure-1
//!   ladder, and reports per-phase duration histograms into
//!   [`crate::metrics::Metrics`].
//! * [`export`] — Prometheus-text and JSON snapshots of the metrics sink.
//! * [`profiler`] — per-component event counts and handler wall time,
//!   event-queue depth as a time series, events/sec summary.
//! * [`causality`] — rebuilds the happens-before DAG from the `(id,
//!   cause)` pairs the kernel stamps on every trace record; the offline
//!   `condor-g-trace` forensics analyzer runs the same reconstruction on
//!   exported JSONL.
//! * [`weather`] — aggregates the `site.<name>.*` metrics the protocol
//!   components publish into a per-site grid-weather table (success rate,
//!   queue depth, median LRM wait, commit-timeout rate), and runs the
//!   [`SiteHealthTracker`] quarantine state machine brokers consult to
//!   steer work away from sick sites.

pub mod causality;
pub mod export;
pub mod flight;
pub mod profiler;
pub mod span;
pub mod subscriber;
pub mod weather;

pub use causality::{CausalDag, DagNode};
pub use export::{json_snapshot, json_string, prometheus_snapshot};
pub use flight::{
    encode_dump, site_aggregates, telemetry_line, Anomaly, AnomalyDetector, AnomalyKind,
    DetectorConfig, DumpMeta, FlightRecord, FlightRecorder, TelemetrySample, TelemetryWriter,
    DUMP_MAGIC, DUMP_VERSION,
};
pub use profiler::{CompProfile, Profiler};
pub use span::{AttemptSpan, JobSpan, SpanCollector, SpanPhase, PHASES, SPAN_KIND};
pub use subscriber::{Filtered, JsonlWriter, RingBuffer, TraceFilter};
pub use weather::{
    grid_weather, render_top, weather_json, HealthAction, HealthEvent, HealthPolicy,
    SiteHealthTracker, SiteState, SiteWeather,
};
