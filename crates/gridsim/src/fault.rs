//! Failure injection.
//!
//! A [`FaultPlan`] is a declarative schedule of crashes, restarts,
//! partitions and loss-rate changes. Plans are either scripted (the
//! fault-tolerance experiments crash exactly the machine the paper's §4.2
//! names, at a known instant) or sampled from MTBF/MTTR processes (the
//! week-long QAP campaign runs under "realistic background failures").

use crate::component::NodeId;
use crate::rng::SimRng;
use crate::time::{Duration, SimTime};

/// One scheduled fault action.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAction {
    /// Crash a node (all component memory lost).
    Crash(NodeId),
    /// Restart a crashed node (its boot hook runs).
    Restart(NodeId),
    /// Partition two groups of nodes from each other.
    Partition(Vec<NodeId>, Vec<NodeId>),
    /// Heal a partition previously installed between the two groups.
    Heal(Vec<NodeId>, Vec<NodeId>),
    /// Set the global message loss rate (`None` restores the configured rate).
    SetLoss(Option<f64>),
    /// Take a named flow-mode topology link down (crossing flows abort).
    LinkDown(String),
    /// Bring a downed link back up.
    LinkUp(String),
    /// Override a link's capacity in bytes/s (`None` restores the
    /// configured capacity); active flows rescale, an override of `0.0`
    /// stalls them without aborting.
    LinkBandwidth(String, Option<f64>),
}

/// A time-ordered schedule of fault actions.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    actions: Vec<(SimTime, FaultAction)>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Add an action at an absolute time.
    pub fn at(mut self, time: SimTime, action: FaultAction) -> FaultPlan {
        self.actions.push((time, action));
        self
    }

    /// Crash `node` at `time` and restart it after `downtime`.
    pub fn crash_restart(self, node: NodeId, time: SimTime, downtime: Duration) -> FaultPlan {
        self.at(time, FaultAction::Crash(node))
            .at(time + downtime, FaultAction::Restart(node))
    }

    /// Partition the two groups over `[start, start+length]`.
    pub fn partition_window(
        self,
        group_a: Vec<NodeId>,
        group_b: Vec<NodeId>,
        start: SimTime,
        length: Duration,
    ) -> FaultPlan {
        self.at(
            start,
            FaultAction::Partition(group_a.clone(), group_b.clone()),
        )
        .at(start + length, FaultAction::Heal(group_a, group_b))
    }

    /// Take link `name` down over `[start, start+length]`.
    pub fn link_down_window(self, name: &str, start: SimTime, length: Duration) -> FaultPlan {
        self.at(start, FaultAction::LinkDown(name.to_string()))
            .at(start + length, FaultAction::LinkUp(name.to_string()))
    }

    /// Override link `name`'s capacity to `bytes_per_sec` over
    /// `[start, start+length]`, then restore the configured capacity.
    pub fn link_bandwidth_window(
        self,
        name: &str,
        bytes_per_sec: f64,
        start: SimTime,
        length: Duration,
    ) -> FaultPlan {
        self.at(
            start,
            FaultAction::LinkBandwidth(name.to_string(), Some(bytes_per_sec)),
        )
        .at(
            start + length,
            FaultAction::LinkBandwidth(name.to_string(), None),
        )
    }

    /// Generate exponential crash/repair cycles for each node over
    /// `[0, horizon]`: time-to-failure ~ Exp(`mtbf`), repair ~ Exp(`mttr`).
    pub fn random_crashes(
        rng: &mut SimRng,
        nodes: &[NodeId],
        mtbf: Duration,
        mttr: Duration,
        horizon: SimTime,
    ) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for &node in nodes {
            let mut t = SimTime::ZERO;
            loop {
                let up_for = Duration::from_secs_f64(rng.exp_f64(mtbf.as_secs_f64()));
                let down_for = Duration::from_secs_f64(rng.exp_f64(mttr.as_secs_f64()));
                let crash_at = t + up_for;
                if crash_at >= horizon {
                    break;
                }
                let restart_at = crash_at + down_for;
                plan = plan.crash_restart(node, crash_at, down_for);
                t = restart_at;
            }
        }
        plan.sorted()
    }

    /// Return the plan with actions sorted by time (stable, so same-time
    /// actions keep insertion order).
    pub fn sorted(mut self) -> FaultPlan {
        self.actions.sort_by_key(|&(t, _)| t);
        self
    }

    /// Iterate the schedule.
    pub fn actions(&self) -> &[(SimTime, FaultAction)] {
        &self.actions
    }

    /// Number of scheduled actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// True if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_restart_pairs() {
        let plan =
            FaultPlan::new().crash_restart(NodeId(3), SimTime(100), Duration::from_micros(50));
        assert_eq!(plan.len(), 2);
        assert_eq!(
            plan.actions()[0],
            (SimTime(100), FaultAction::Crash(NodeId(3)))
        );
        assert_eq!(
            plan.actions()[1],
            (SimTime(150), FaultAction::Restart(NodeId(3)))
        );
    }

    #[test]
    fn random_plan_alternates_and_sorts() {
        let mut rng = SimRng::new(8);
        let nodes = [NodeId(0), NodeId(1), NodeId(2)];
        let plan = FaultPlan::random_crashes(
            &mut rng,
            &nodes,
            Duration::from_hours(4),
            Duration::from_mins(20),
            SimTime::ZERO + Duration::from_days(2),
        );
        assert!(!plan.is_empty());
        // Sorted by time.
        let times: Vec<_> = plan.actions().iter().map(|&(t, _)| t).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted);
        // Per node: strictly alternating crash/restart starting with crash.
        for &node in &nodes {
            let mut expect_crash = true;
            for (_, a) in plan.actions() {
                match a {
                    FaultAction::Crash(n) if *n == node => {
                        assert!(expect_crash, "double crash for {node:?}");
                        expect_crash = false;
                    }
                    FaultAction::Restart(n) if *n == node => {
                        assert!(!expect_crash, "restart before crash for {node:?}");
                        expect_crash = true;
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn partition_window_heals() {
        let plan = FaultPlan::new().partition_window(
            vec![NodeId(0)],
            vec![NodeId(1)],
            SimTime(10),
            Duration::from_micros(5),
        );
        assert!(matches!(plan.actions()[0].1, FaultAction::Partition(..)));
        assert!(matches!(plan.actions()[1].1, FaultAction::Heal(..)));
        assert_eq!(plan.actions()[1].0, SimTime(15));
    }
}
