//! A compact binary serde codec for stable storage.
//!
//! The simulated "disk" ([`crate::store::StableStore`]) holds byte strings,
//! so crash-recovery genuinely round-trips component state through a
//! serialized form rather than cheating with in-memory clones. The format is
//! bincode-like: fixed-width little-endian integers, `u64` length prefixes
//! for sequences/strings, a one-byte tag for `Option`, and a `u32` variant
//! index for enums. It is positional (not self-describing), which is fine
//! because readers always know the schema.

use serde::de::{self, DeserializeOwned, IntoDeserializer, Visitor};
use serde::ser::{self, Serialize};
use std::fmt;

/// Errors produced by the codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

impl ser::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        CodecError(msg.to_string())
    }
}

impl de::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        CodecError(msg.to_string())
    }
}

/// Serialize `value` into bytes.
pub fn to_bytes<T: Serialize>(value: &T) -> Result<Vec<u8>, CodecError> {
    let mut ser = Encoder { out: Vec::new() };
    value.serialize(&mut ser)?;
    Ok(ser.out)
}

/// Deserialize a `T` from bytes produced by [`to_bytes`].
pub fn from_bytes<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut de = Decoder {
        input: bytes,
        pos: 0,
    };
    let value = T::deserialize(&mut de)?;
    if de.pos != bytes.len() {
        return Err(CodecError(format!(
            "{} trailing bytes after value",
            bytes.len() - de.pos
        )));
    }
    Ok(value)
}

struct Encoder {
    out: Vec<u8>,
}

impl Encoder {
    fn put_len(&mut self, n: usize) {
        self.out.extend_from_slice(&(n as u64).to_le_bytes());
    }
}

impl ser::Serializer for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, v: bool) -> Result<(), CodecError> {
        self.out.push(v as u8);
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i16(self, v: i16) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i32(self, v: i32) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i64(self, v: i64) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), CodecError> {
        self.out.push(v);
        Ok(())
    }
    fn serialize_u16(self, v: u16) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u32(self, v: u32) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u64(self, v: u64) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), CodecError> {
        self.serialize_u32(v as u32)
    }
    fn serialize_str(self, v: &str) -> Result<(), CodecError> {
        self.put_len(v.len());
        self.out.extend_from_slice(v.as_bytes());
        Ok(())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<(), CodecError> {
        self.put_len(v.len());
        self.out.extend_from_slice(v);
        Ok(())
    }
    fn serialize_none(self) -> Result<(), CodecError> {
        self.out.push(0);
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), CodecError> {
        self.out.push(1);
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), CodecError> {
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), CodecError> {
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), CodecError> {
        self.serialize_u32(variant_index)
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        self.serialize_u32(variant_index)?;
        value.serialize(self)
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<Self, CodecError> {
        let len = len.ok_or_else(|| CodecError("seq without length".into()))?;
        self.put_len(len);
        Ok(self)
    }
    fn serialize_tuple(self, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }
    fn serialize_tuple_struct(self, _name: &'static str, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, CodecError> {
        self.serialize_u32(variant_index)?;
        Ok(self)
    }
    fn serialize_map(self, len: Option<usize>) -> Result<Self, CodecError> {
        let len = len.ok_or_else(|| CodecError("map without length".into()))?;
        self.put_len(len);
        Ok(self)
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, CodecError> {
        self.serialize_u32(variant_index)?;
        Ok(self)
    }
}

macro_rules! forward_compound {
    ($trait:ident, $method:ident) => {
        impl<'a> ser::$trait for &'a mut Encoder {
            type Ok = ();
            type Error = CodecError;
            fn $method<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
                value.serialize(&mut **self)
            }
            fn end(self) -> Result<(), CodecError> {
                Ok(())
            }
        }
    };
}

forward_compound!(SerializeSeq, serialize_element);
forward_compound!(SerializeTuple, serialize_element);
forward_compound!(SerializeTupleStruct, serialize_field);
forward_compound!(SerializeTupleVariant, serialize_field);

impl ser::SerializeMap for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), CodecError> {
        key.serialize(&mut **self)
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeStruct for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

struct Decoder<'de> {
    input: &'de [u8],
    pos: usize,
}

impl<'de> Decoder<'de> {
    fn take(&mut self, n: usize) -> Result<&'de [u8], CodecError> {
        if self.pos + n > self.input.len() {
            return Err(CodecError(format!(
                "unexpected end of input (want {n} at {})",
                self.pos
            )));
        }
        let s = &self.input[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn take_len(&mut self) -> Result<usize, CodecError> {
        let b = self.take(8)?;
        let n = u64::from_le_bytes(b.try_into().unwrap());
        usize::try_from(n).map_err(|_| CodecError("length overflow".into()))
    }

    fn take_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
}

macro_rules! de_num {
    ($method:ident, $visit:ident, $ty:ty, $n:expr) => {
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
            let b = self.take($n)?;
            visitor.$visit(<$ty>::from_le_bytes(b.try_into().unwrap()))
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut Decoder<'de> {
    type Error = CodecError;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError("format is not self-describing".into()))
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        match self.take(1)?[0] {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            b => Err(CodecError(format!("invalid bool byte {b}"))),
        }
    }

    de_num!(deserialize_i8, visit_i8, i8, 1);
    de_num!(deserialize_i16, visit_i16, i16, 2);
    de_num!(deserialize_i32, visit_i32, i32, 4);
    de_num!(deserialize_i64, visit_i64, i64, 8);
    de_num!(deserialize_u16, visit_u16, u16, 2);
    de_num!(deserialize_u32, visit_u32, u32, 4);
    de_num!(deserialize_u64, visit_u64, u64, 8);
    de_num!(deserialize_f32, visit_f32, f32, 4);
    de_num!(deserialize_f64, visit_f64, f64, 8);

    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        visitor.visit_u8(self.take(1)?[0])
    }

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let v = self.take_u32()?;
        let c = char::from_u32(v).ok_or_else(|| CodecError(format!("invalid char {v}")))?;
        visitor.visit_char(c)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let n = self.take_len()?;
        let bytes = self.take(n)?;
        let s = std::str::from_utf8(bytes).map_err(|e| CodecError(e.to_string()))?;
        visitor.visit_borrowed_str(s)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let n = self.take_len()?;
        visitor.visit_borrowed_bytes(self.take(n)?)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        match self.take(1)?[0] {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            b => Err(CodecError(format!("invalid option tag {b}"))),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.take_len()?;
        visitor.visit_seq(Counted {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_seq(Counted {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_tuple(len, visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.take_len()?;
        visitor.visit_map(Counted {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_tuple(fields.len(), visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_enum(EnumAccess { de: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError("identifiers are not encoded".into()))
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError(
            "cannot skip values in a positional format".into(),
        ))
    }
}

struct Counted<'a, 'de> {
    de: &'a mut Decoder<'de>,
    remaining: usize,
}

impl<'a, 'de> de::SeqAccess<'de> for Counted<'a, 'de> {
    type Error = CodecError;
    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, CodecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

impl<'a, 'de> de::MapAccess<'de> for Counted<'a, 'de> {
    type Error = CodecError;
    fn next_key_seed<K: de::DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, CodecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }
    fn next_value_seed<V: de::DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, CodecError> {
        seed.deserialize(&mut *self.de)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct EnumAccess<'a, 'de> {
    de: &'a mut Decoder<'de>,
}

impl<'a, 'de> de::EnumAccess<'de> for EnumAccess<'a, 'de> {
    type Error = CodecError;
    type Variant = Self;
    fn variant_seed<V: de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self), CodecError> {
        let idx = self.de.take_u32()?;
        let val = seed.deserialize(IntoDeserializer::<CodecError>::into_deserializer(idx))?;
        Ok((val, self))
    }
}

impl<'a, 'de> de::VariantAccess<'de> for EnumAccess<'a, 'de> {
    type Error = CodecError;
    fn unit_variant(self) -> Result<(), CodecError> {
        Ok(())
    }
    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, CodecError> {
        seed.deserialize(self.de)
    }
    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        de::Deserializer::deserialize_tuple(self.de, len, visitor)
    }
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        de::Deserializer::deserialize_tuple(self.de, fields.len(), visitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    fn round_trip<T: Serialize + DeserializeOwned + PartialEq + fmt::Debug>(v: T) {
        let bytes = to_bytes(&v).unwrap();
        let back: T = from_bytes(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum JobState {
        Idle,
        Running { on: String, cpus: u32 },
        Held(String),
        Done(i32, bool),
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Record {
        id: u64,
        state: JobState,
        attempts: Vec<u32>,
        note: Option<String>,
        env: BTreeMap<String, String>,
        ratio: f64,
    }

    #[test]
    fn primitives() {
        round_trip(true);
        round_trip(false);
        round_trip(0u8);
        round_trip(-12345i64);
        round_trip(u64::MAX);
        round_trip(3.5f64);
        round_trip('λ');
        round_trip(String::from("hello grid"));
        round_trip(String::new());
        round_trip(());
    }

    #[test]
    fn containers() {
        round_trip(vec![1u32, 2, 3]);
        round_trip(Vec::<u32>::new());
        round_trip(Some(9u8));
        round_trip(Option::<u8>::None);
        round_trip((1u8, String::from("x"), -2i32));
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u32);
        m.insert("b".to_string(), 2);
        round_trip(m);
    }

    #[test]
    fn structs_and_enums() {
        round_trip(JobState::Idle);
        round_trip(JobState::Running {
            on: "gatekeeper.wisc.edu".into(),
            cpus: 64,
        });
        round_trip(JobState::Held("credential expired".into()));
        round_trip(JobState::Done(-1, true));
        let mut env = BTreeMap::new();
        env.insert("GASS_URL".to_string(), "gass://n0:9000".to_string());
        round_trip(Record {
            id: 42,
            state: JobState::Running {
                on: "pbs".into(),
                cpus: 8,
            },
            attempts: vec![1, 2, 3],
            note: None,
            env,
            ratio: 0.25,
        });
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&7u32).unwrap();
        bytes.push(0);
        assert!(from_bytes::<u32>(&bytes).is_err());
    }

    #[test]
    fn truncated_input_rejected() {
        let bytes = to_bytes(&String::from("hello")).unwrap();
        assert!(from_bytes::<String>(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn invalid_bool_rejected() {
        assert!(from_bytes::<bool>(&[7]).is_err());
    }

    #[test]
    fn bad_utf8_rejected() {
        // length=1, byte 0xFF — not valid UTF-8.
        let mut bytes = 1u64.to_le_bytes().to_vec();
        bytes.push(0xFF);
        assert!(from_bytes::<String>(&bytes).is_err());
    }
}
