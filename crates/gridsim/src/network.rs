//! The wide-area network model.
//!
//! Condor-G's protocols are exercised by *orderings, delays, losses and
//! partitions*, not by byte-level wire formats. The model therefore provides:
//!
//! * per-pair (or default) one-way latency distributions,
//! * a global plus per-link message loss probability,
//! * named partitions (pairwise unreachability between node groups), and
//! * per-link bandwidth used by the bulk-transfer helpers in the `gass`
//!   crate to compute transfer durations.
//!
//! Control messages (everything sent with `Ctx::send`) are "small": they pay
//! latency and may be lost, but don't consume bandwidth. Bulk data (GASS /
//! GridFTP staging) is modelled explicitly by `gass` on top of
//! [`Network::transfer_duration`].

pub mod flow;

use crate::component::{Addr, AnyMsg, NodeId};
use crate::rng::{Dist, SimRng};
use crate::time::{Duration, SimTime};
use flow::{AbortedFlow, FlowNet, LinkId};

/// Updated `(flow id, completion deadline)` schedule after a rescale.
pub(crate) type FlowResched = Vec<(u64, SimTime)>;
/// A completed flow: sender, receiver, payload, survivors' new schedule.
pub(crate) type FlowDelivery = (Addr, Addr, AnyMsg, FlowResched);
use std::collections::{HashMap, HashSet};

/// Static configuration of the network model.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Default one-way latency for node pairs without an override (seconds).
    pub default_latency: Dist,
    /// Latency for messages between components on the same node (seconds).
    pub loopback_latency: Dist,
    /// Global probability that an inter-node message is silently dropped.
    pub loss_rate: f64,
    /// Default link bandwidth in bytes/second (for bulk transfers).
    pub default_bandwidth: f64,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            // Wide-area RTT ~60 ms in 2001 => ~30 ms one-way, with jitter.
            default_latency: Dist::Uniform {
                lo: 0.020,
                hi: 0.040,
            },
            loopback_latency: Dist::Constant(0.000_1),
            loss_rate: 0.0,
            // ~10 Mbit/s effective wide-area throughput, a fair match for
            // the paper's era.
            default_bandwidth: 1.25e6,
        }
    }
}

/// Per-directed-link overrides.
#[derive(Clone, Debug)]
struct LinkOverride {
    latency: Option<Dist>,
    loss_rate: Option<f64>,
    bandwidth: Option<f64>,
}

/// The live network state: configuration plus dynamic partitions/loss.
#[derive(Debug)]
pub struct Network {
    config: NetConfig,
    overrides: HashMap<(NodeId, NodeId), LinkOverride>,
    /// Unordered pairs currently partitioned from each other.
    partitioned: HashSet<(NodeId, NodeId)>,
    /// Dynamic loss rate override (set by fault plans); falls back to config.
    dynamic_loss: Option<f64>,
    /// Shared-bandwidth topology + active flows; `Some` iff flow mode is
    /// enabled (by declaring at least one link). See [`flow`].
    flow: Option<FlowNet>,
    /// Messages dropped so far (for reporting).
    pub dropped: u64,
}

fn pair_key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl Network {
    /// Build a network from configuration.
    pub fn new(config: NetConfig) -> Network {
        Network {
            config,
            overrides: HashMap::new(),
            partitioned: HashSet::new(),
            dynamic_loss: None,
            flow: None,
            dropped: 0,
        }
    }

    /// Override the latency distribution for the directed link `from → to`.
    pub fn set_link_latency(&mut self, from: NodeId, to: NodeId, latency: Dist) {
        self.overrides
            .entry((from, to))
            .or_insert(LinkOverride {
                latency: None,
                loss_rate: None,
                bandwidth: None,
            })
            .latency = Some(latency);
    }

    /// Override the loss probability for the directed link `from → to`.
    pub fn set_link_loss(&mut self, from: NodeId, to: NodeId, loss: f64) {
        self.overrides
            .entry((from, to))
            .or_insert(LinkOverride {
                latency: None,
                loss_rate: None,
                bandwidth: None,
            })
            .loss_rate = Some(loss);
    }

    /// Override the bandwidth for the directed link `from → to` (bytes/s).
    pub fn set_link_bandwidth(&mut self, from: NodeId, to: NodeId, bw: f64) {
        self.overrides
            .entry((from, to))
            .or_insert(LinkOverride {
                latency: None,
                loss_rate: None,
                bandwidth: None,
            })
            .bandwidth = Some(bw);
    }

    /// Set (or with `None`, clear) the dynamic global loss rate.
    pub fn set_global_loss(&mut self, rate: Option<f64>) {
        self.dynamic_loss = rate;
    }

    /// Partition every node in `group_a` from every node in `group_b`.
    pub fn partition(&mut self, group_a: &[NodeId], group_b: &[NodeId]) {
        for &a in group_a {
            for &b in group_b {
                if a != b {
                    self.partitioned.insert(pair_key(a, b));
                }
            }
        }
    }

    /// Heal a previously installed partition.
    pub fn heal(&mut self, group_a: &[NodeId], group_b: &[NodeId]) {
        for &a in group_a {
            for &b in group_b {
                self.partitioned.remove(&pair_key(a, b));
            }
        }
    }

    /// True if `a` and `b` can currently exchange messages.
    pub fn reachable(&self, a: NodeId, b: NodeId) -> bool {
        a == b || !self.partitioned.contains(&pair_key(a, b))
    }

    /// Decide the fate of a message on `from → to`: `Some(latency)` if it
    /// will be delivered, `None` if dropped (loss or partition).
    ///
    /// Note that a *partitioned* link drops deterministically, modelling an
    /// unreachable route, while *loss* is sampled.
    pub fn route(&mut self, rng: &mut SimRng, from: NodeId, to: NodeId) -> Option<Duration> {
        if from == to {
            return Some(rng.duration(&self.config.loopback_latency));
        }
        if !self.reachable(from, to) {
            self.dropped += 1;
            return None;
        }
        let loss = self.loss_for(from, to);
        if rng.chance(loss) {
            self.dropped += 1;
            return None;
        }
        let dist = self
            .overrides
            .get(&(from, to))
            .and_then(|l| l.latency)
            .unwrap_or(self.config.default_latency);
        Some(rng.duration(&dist))
    }

    /// Effective loss probability on `from → to`. A per-link override and a
    /// fault-plan dynamic loss *combine as the max* — a chaos plan that
    /// raises global loss to 1.0 must black out overridden links too, not
    /// be silently shadowed by them.
    fn loss_for(&self, from: NodeId, to: NodeId) -> f64 {
        let link = self.overrides.get(&(from, to)).and_then(|l| l.loss_rate);
        match (link, self.dynamic_loss) {
            (Some(l), Some(d)) => l.max(d),
            (Some(l), None) => l,
            (None, Some(d)) => d,
            (None, None) => self.config.loss_rate,
        }
    }

    /// The WAN lookahead: a lower bound on the latency of *any* message
    /// under the current configuration — the minimum over the default
    /// latency distribution, the loopback floor, every per-link override,
    /// and (in flow mode) every declared topology link's propagation
    /// latency. The sharded kernel uses it as the conservative
    /// null-message bound: a message sent at `t` can never be delivered
    /// before `t + lookahead()`, so `shard::safe_horizon` must stay a true
    /// lower bound no matter which latency path a message takes.
    pub fn lookahead(&self) -> Duration {
        let mut lo = self
            .config
            .default_latency
            .min_bound()
            .min(self.config.loopback_latency.min_bound());
        for link in self.overrides.values() {
            if let Some(d) = &link.latency {
                lo = lo.min(d.min_bound());
            }
        }
        if let Some(flow) = &self.flow {
            lo = flow.min_latency(lo);
        }
        Duration::from_secs_f64(lo)
    }

    /// Bandwidth of the directed link in bytes/second.
    pub fn bandwidth(&self, from: NodeId, to: NodeId) -> f64 {
        if from == to {
            // Loopback: effectively memory speed; use a large constant.
            return 1e9;
        }
        self.overrides
            .get(&(from, to))
            .and_then(|l| l.bandwidth)
            .unwrap_or(self.config.default_bandwidth)
    }

    /// Time to move `bytes` across `from → to` at the link bandwidth plus
    /// one latency sample. Used by the `gass` bulk-transfer model.
    ///
    /// **Legacy (uncontended) model.** The pipe is private — concurrent
    /// transfers don't slow each other down — and loss is sampled exactly
    /// *once* via [`Network::route`] regardless of size, so a 10 GB
    /// stage-in and a 200-byte control message share a drop probability.
    /// Both simplifications are deliberate (and keep historical traces
    /// byte-identical); scenarios that care opt into flow mode, where
    /// transfers contend on declared links and loss is per-volume
    /// ([`Network::flow_start`]).
    pub fn transfer_duration(
        &mut self,
        rng: &mut SimRng,
        from: NodeId,
        to: NodeId,
        bytes: u64,
    ) -> Option<Duration> {
        let latency = self.route(rng, from, to)?;
        let bw = self.bandwidth(from, to);
        Some(latency + Duration::from_secs_f64(bytes as f64 / bw))
    }

    // ---- flow mode (shared-bandwidth topology) ----------------------

    /// True once a topology link has been declared: bulk transfers are
    /// then scheduled by the fair-share flow model instead of
    /// [`Network::transfer_duration`].
    pub fn flow_enabled(&self) -> bool {
        self.flow.is_some()
    }

    /// Number of in-flight flows (0 when flow mode is off).
    pub fn flows_active(&self) -> usize {
        self.flow.as_ref().map_or(0, FlowNet::active)
    }

    /// Declare (or re-declare) a capacitated topology link, enabling flow
    /// mode. `latency_secs` is the link's propagation delay, paid once per
    /// flow on top of the sampled end-to-end latency.
    pub fn add_flow_link(&mut self, name: &str, capacity: f64, latency_secs: f64) -> LinkId {
        self.flow
            .get_or_insert_with(FlowNet::default)
            .add_link(name, capacity, latency_secs)
    }

    /// Route every bulk transfer between `a` and `b` (both directions)
    /// over `links`. Pairs without a route use an empty route: scheduled
    /// as flows (per-pair cap, per-volume loss) but link-unconstrained.
    pub fn set_flow_route(&mut self, a: NodeId, b: NodeId, links: &[LinkId]) {
        self.flow
            .get_or_insert_with(FlowNet::default)
            .set_route(a, b, links);
    }

    /// Mark a link up/down without touching in-flight flows (static setup;
    /// fault-driven changes go through the kernel's `LinkDown`/`LinkUp`
    /// events so crossing flows abort/rescale). False for unknown names.
    pub fn set_flow_link_up(&mut self, name: &str, up: bool) -> bool {
        self.flow.as_mut().is_some_and(|f| f.set_link_up(name, up))
    }

    /// Set (or with `None`, clear) a link's capacity override. False for
    /// unknown names.
    pub fn set_flow_link_capacity(&mut self, name: &str, cap: Option<f64>) -> bool {
        self.flow
            .as_mut()
            .is_some_and(|f| f.set_link_override(name, cap))
    }

    /// Decide the fate of a bulk transfer in flow mode and, if it goes
    /// through, register the flow. Returns `None` (payload dropped, after
    /// `dropped` is bumped) on partition, a down link on the route, or a
    /// per-volume loss draw; otherwise the updated completion schedule to
    /// install ([`flow::FlowNet::refresh`]).
    ///
    /// Unlike the legacy model, loss here compounds per MB of payload: a
    /// transfer of `n` chunks survives with probability `(1 - p)^n` (still
    /// a single RNG draw, so the draw count per transfer is fixed).
    pub(crate) fn flow_start(
        &mut self,
        rng: &mut SimRng,
        from: Addr,
        to: Addr,
        bytes: u64,
        msg: AnyMsg,
        now: SimTime,
    ) -> Option<Vec<(u64, SimTime)>> {
        debug_assert!(from.node != to.node, "loopback stays on the legacy path");
        if !self.reachable(from.node, to.node) {
            self.dropped += 1;
            return None;
        }
        let p = volume_loss(self.loss_for(from.node, to.node), bytes);
        if rng.chance(p) {
            self.dropped += 1;
            return None;
        }
        let dist = self
            .overrides
            .get(&(from.node, to.node))
            .and_then(|l| l.latency)
            .unwrap_or(self.config.default_latency);
        let mut latency = rng.duration(&dist);
        let cap = self.bandwidth(from.node, to.node);
        let flow = self.flow.as_mut().expect("flow_start requires flow mode");
        let route = flow.route_for(from.node, to.node);
        if route.iter().any(|&l| !flow.link_is_up(l)) {
            self.dropped += 1;
            return None;
        }
        for &l in &route {
            latency += Duration::from_secs_f64(flow.link_latency(l));
        }
        flow.start(from, to, bytes, route, latency, cap, now, msg);
        Some(flow.refresh(now))
    }

    /// Complete flow `id` if `now` matches its current deadline (stale
    /// events return `None`). On success: `(from, to, payload, updated
    /// completion schedule)`.
    pub(crate) fn flow_complete(&mut self, id: u64, now: SimTime) -> Option<FlowDelivery> {
        let flow = self.flow.as_mut()?;
        let (from, to, msg) = flow.complete(id, now)?;
        let resched = flow.refresh(now);
        Some((from, to, msg, resched))
    }

    /// Abort every flow whose endpoints are no longer mutually reachable
    /// (call after installing a partition). Returns the aborted flows and
    /// the survivors' updated completion schedule.
    pub(crate) fn flow_abort_unreachable(
        &mut self,
        now: SimTime,
    ) -> (Vec<AbortedFlow>, Vec<(u64, SimTime)>) {
        let Some(flow) = self.flow.as_mut() else {
            return (Vec::new(), Vec::new());
        };
        let partitioned = &self.partitioned;
        let aborted = flow.abort_where(|a, b, _| a != b && partitioned.contains(&pair_key(a, b)));
        let resched = flow.refresh(now);
        (aborted, resched)
    }

    /// Abort every flow with an endpoint on `node` (call on node crash).
    pub(crate) fn flow_abort_node(
        &mut self,
        node: NodeId,
        now: SimTime,
    ) -> (Vec<AbortedFlow>, Vec<(u64, SimTime)>) {
        let Some(flow) = self.flow.as_mut() else {
            return (Vec::new(), Vec::new());
        };
        let aborted = flow.abort_where(|a, b, _| a == node || b == node);
        let resched = flow.refresh(now);
        (aborted, resched)
    }

    /// Take link `name` down: crossing flows abort, the rest rescale.
    /// `None` for unknown names or flow mode off.
    pub(crate) fn flow_link_down(
        &mut self,
        name: &str,
        now: SimTime,
    ) -> Option<(Vec<AbortedFlow>, FlowResched)> {
        let flow = self.flow.as_mut()?;
        let id = flow.link_id(name)?;
        flow.set_link_up(name, false);
        let aborted = flow.abort_where(|_, _, route| route.contains(&id));
        let resched = flow.refresh(now);
        Some((aborted, resched))
    }

    /// Bring link `name` back up and rescale active flows.
    pub(crate) fn flow_link_up(&mut self, name: &str, now: SimTime) -> Option<Vec<(u64, SimTime)>> {
        let flow = self.flow.as_mut()?;
        flow.link_id(name)?;
        flow.set_link_up(name, true);
        Some(flow.refresh(now))
    }

    /// Apply (or with `None`, clear) a capacity override on link `name`
    /// and rescale active flows — an override of `0.0` stalls them
    /// without aborting.
    pub(crate) fn flow_link_bandwidth(
        &mut self,
        name: &str,
        cap: Option<f64>,
        now: SimTime,
    ) -> Option<Vec<(u64, SimTime)>> {
        let flow = self.flow.as_mut()?;
        flow.link_id(name)?;
        flow.set_link_override(name, cap);
        Some(flow.refresh(now))
    }
}

/// Per-volume loss: the probability that a transfer of `bytes` survives
/// compounds per 1 MB chunk, `1 - (1 - p)^ceil(bytes / 1 MB)`.
fn volume_loss(p: f64, bytes: u64) -> f64 {
    if p <= 0.0 {
        return 0.0;
    }
    if p >= 1.0 {
        return 1.0;
    }
    const CHUNK: u64 = 1_000_000;
    let chunks = (bytes.div_ceil(CHUNK)).max(1).min(i32::MAX as u64);
    if chunks == 1 {
        // Single chunk: exactly the configured rate (matches legacy).
        return p;
    }
    1.0 - (1.0 - p).powi(chunks as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(11)
    }

    #[test]
    fn loopback_is_fast_and_reliable() {
        let mut net = Network::new(NetConfig {
            loss_rate: 1.0,
            ..NetConfig::default()
        });
        let mut r = rng();
        for _ in 0..100 {
            let d = net
                .route(&mut r, NodeId(1), NodeId(1))
                .expect("loopback lost");
            assert!(d <= Duration::from_millis(1));
        }
        assert_eq!(net.dropped, 0);
    }

    #[test]
    fn partition_blocks_both_directions() {
        let mut net = Network::new(NetConfig::default());
        let mut r = rng();
        net.partition(&[NodeId(1)], &[NodeId(2), NodeId(3)]);
        assert!(net.route(&mut r, NodeId(1), NodeId(2)).is_none());
        assert!(net.route(&mut r, NodeId(2), NodeId(1)).is_none());
        assert!(net.route(&mut r, NodeId(1), NodeId(3)).is_none());
        // Unrelated pair still connected.
        assert!(net.route(&mut r, NodeId(2), NodeId(3)).is_some());
        net.heal(&[NodeId(1)], &[NodeId(2), NodeId(3)]);
        assert!(net.route(&mut r, NodeId(1), NodeId(2)).is_some());
    }

    #[test]
    fn loss_rate_approximated() {
        let cfg = NetConfig {
            loss_rate: 0.25,
            ..NetConfig::default()
        };
        let mut net = Network::new(cfg);
        let mut r = rng();
        let n = 20_000;
        let delivered = (0..n)
            .filter(|_| net.route(&mut r, NodeId(0), NodeId(1)).is_some())
            .count();
        let rate = 1.0 - delivered as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "observed loss {rate}");
    }

    #[test]
    fn link_overrides_beat_defaults() {
        let mut net = Network::new(NetConfig::default());
        let mut r = rng();
        net.set_link_loss(NodeId(0), NodeId(1), 1.0);
        assert!(net.route(&mut r, NodeId(0), NodeId(1)).is_none());
        // Reverse direction unaffected.
        assert!(net.route(&mut r, NodeId(1), NodeId(0)).is_some());
        net.set_link_latency(NodeId(2), NodeId(3), Dist::Constant(5.0));
        let d = net.route(&mut r, NodeId(2), NodeId(3)).unwrap();
        assert_eq!(d, Duration::from_secs(5));
    }

    #[test]
    fn transfer_duration_scales_with_size() {
        let mut net = Network::new(NetConfig {
            default_latency: Dist::Constant(0.0),
            default_bandwidth: 1_000_000.0,
            ..NetConfig::default()
        });
        let mut r = rng();
        let d = net
            .transfer_duration(&mut r, NodeId(0), NodeId(1), 10_000_000)
            .unwrap();
        assert_eq!(d, Duration::from_secs(10));
    }

    #[test]
    fn dynamic_loss_override() {
        let mut net = Network::new(NetConfig::default());
        let mut r = rng();
        net.set_global_loss(Some(1.0));
        assert!(net.route(&mut r, NodeId(0), NodeId(1)).is_none());
        net.set_global_loss(None);
        assert!(net.route(&mut r, NodeId(0), NodeId(1)).is_some());
    }

    #[test]
    fn dynamic_loss_is_not_shadowed_by_link_override() {
        // Regression: a perfect per-link override used to swallow a
        // fault-plan loss of 1.0 — the two must combine as the max.
        let mut net = Network::new(NetConfig::default());
        let mut r = rng();
        net.set_link_loss(NodeId(0), NodeId(1), 0.0);
        net.set_global_loss(Some(1.0));
        assert!(net.route(&mut r, NodeId(0), NodeId(1)).is_none());
        // And the max cuts the other way too: a lossy link stays lossy
        // when the dynamic rate is lower.
        net.set_link_loss(NodeId(2), NodeId(3), 1.0);
        net.set_global_loss(Some(0.0));
        assert!(net.route(&mut r, NodeId(2), NodeId(3)).is_none());
        net.set_global_loss(None);
        assert!(net.route(&mut r, NodeId(0), NodeId(1)).is_some());
    }

    #[test]
    fn heal_of_never_installed_partition_is_a_noop() {
        let mut net = Network::new(NetConfig::default());
        let mut r = rng();
        net.partition(&[NodeId(1)], &[NodeId(2)]);
        // Healing a pair that was never partitioned must not disturb the
        // real partition or the healthy pairs.
        net.heal(&[NodeId(3)], &[NodeId(4)]);
        assert!(net.route(&mut r, NodeId(3), NodeId(4)).is_some());
        assert!(net.route(&mut r, NodeId(1), NodeId(2)).is_none());
        net.heal(&[NodeId(1)], &[NodeId(2)]);
        net.heal(&[NodeId(1)], &[NodeId(2)]); // double-heal: still a no-op
        assert!(net.route(&mut r, NodeId(1), NodeId(2)).is_some());
    }

    #[test]
    fn lookahead_includes_loopback_floor_and_flow_links() {
        let mut net = Network::new(NetConfig::default());
        // Default latency floor is 20 ms but loopback messages arrive in
        // 0.1 ms — the conservative bound must honour the smaller.
        assert_eq!(net.lookahead(), Duration::from_micros(100));
        // A flow link faster than the loopback floor lowers it further.
        net.add_flow_link("lan", 1e9, 0.000_05);
        assert_eq!(net.lookahead(), Duration::from_micros(50));
        // Slower flow links don't raise it back.
        net.add_flow_link("wan", 1e6, 0.030);
        assert_eq!(net.lookahead(), Duration::from_micros(50));
    }

    #[test]
    fn volume_loss_compounds_per_chunk() {
        assert_eq!(volume_loss(0.0, u64::MAX), 0.0);
        assert_eq!(volume_loss(1.0, 1), 1.0);
        // One chunk: unchanged.
        assert_eq!(volume_loss(0.1, 200), 0.1);
        // Ten chunks: 1 - 0.9^10.
        let p = volume_loss(0.1, 10_000_000);
        assert!((p - (1.0 - 0.9f64.powi(10))).abs() < 1e-12);
        // Monotone in volume.
        assert!(volume_loss(0.01, 100_000_000) > volume_loss(0.01, 1_000_000));
    }

    #[test]
    fn flow_start_respects_partitions_and_down_links() {
        let mut net = Network::new(NetConfig::default());
        let mut r = rng();
        let wan = net.add_flow_link("wan", 1e6, 0.0);
        net.set_flow_route(NodeId(1), NodeId(2), &[wan]);
        let from = Addr {
            node: NodeId(1),
            comp: crate::component::CompId(0),
        };
        let to = Addr {
            node: NodeId(2),
            comp: crate::component::CompId(0),
        };
        net.partition(&[NodeId(1)], &[NodeId(2)]);
        assert!(net
            .flow_start(&mut r, from, to, 1_000, Box::new(1u8), SimTime::ZERO)
            .is_none());
        net.heal(&[NodeId(1)], &[NodeId(2)]);
        assert!(net.set_flow_link_up("wan", false));
        assert!(net
            .flow_start(&mut r, from, to, 1_000, Box::new(1u8), SimTime::ZERO)
            .is_none());
        assert_eq!(net.dropped, 2);
        assert!(net.set_flow_link_up("wan", true));
        assert!(net
            .flow_start(&mut r, from, to, 1_000, Box::new(1u8), SimTime::ZERO)
            .is_some());
        assert_eq!(net.flows_active(), 1);
    }
}
