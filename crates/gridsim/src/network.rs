//! The wide-area network model.
//!
//! Condor-G's protocols are exercised by *orderings, delays, losses and
//! partitions*, not by byte-level wire formats. The model therefore provides:
//!
//! * per-pair (or default) one-way latency distributions,
//! * a global plus per-link message loss probability,
//! * named partitions (pairwise unreachability between node groups), and
//! * per-link bandwidth used by the bulk-transfer helpers in the `gass`
//!   crate to compute transfer durations.
//!
//! Control messages (everything sent with `Ctx::send`) are "small": they pay
//! latency and may be lost, but don't consume bandwidth. Bulk data (GASS /
//! GridFTP staging) is modelled explicitly by `gass` on top of
//! [`Network::transfer_duration`].

use crate::component::NodeId;
use crate::rng::{Dist, SimRng};
use crate::time::Duration;
use std::collections::{HashMap, HashSet};

/// Static configuration of the network model.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Default one-way latency for node pairs without an override (seconds).
    pub default_latency: Dist,
    /// Latency for messages between components on the same node (seconds).
    pub loopback_latency: Dist,
    /// Global probability that an inter-node message is silently dropped.
    pub loss_rate: f64,
    /// Default link bandwidth in bytes/second (for bulk transfers).
    pub default_bandwidth: f64,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            // Wide-area RTT ~60 ms in 2001 => ~30 ms one-way, with jitter.
            default_latency: Dist::Uniform {
                lo: 0.020,
                hi: 0.040,
            },
            loopback_latency: Dist::Constant(0.000_1),
            loss_rate: 0.0,
            // ~10 Mbit/s effective wide-area throughput, a fair match for
            // the paper's era.
            default_bandwidth: 1.25e6,
        }
    }
}

/// Per-directed-link overrides.
#[derive(Clone, Debug)]
struct LinkOverride {
    latency: Option<Dist>,
    loss_rate: Option<f64>,
    bandwidth: Option<f64>,
}

/// The live network state: configuration plus dynamic partitions/loss.
#[derive(Debug)]
pub struct Network {
    config: NetConfig,
    overrides: HashMap<(NodeId, NodeId), LinkOverride>,
    /// Unordered pairs currently partitioned from each other.
    partitioned: HashSet<(NodeId, NodeId)>,
    /// Dynamic loss rate override (set by fault plans); falls back to config.
    dynamic_loss: Option<f64>,
    /// Messages dropped so far (for reporting).
    pub dropped: u64,
}

fn pair_key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl Network {
    /// Build a network from configuration.
    pub fn new(config: NetConfig) -> Network {
        Network {
            config,
            overrides: HashMap::new(),
            partitioned: HashSet::new(),
            dynamic_loss: None,
            dropped: 0,
        }
    }

    /// Override the latency distribution for the directed link `from → to`.
    pub fn set_link_latency(&mut self, from: NodeId, to: NodeId, latency: Dist) {
        self.overrides
            .entry((from, to))
            .or_insert(LinkOverride {
                latency: None,
                loss_rate: None,
                bandwidth: None,
            })
            .latency = Some(latency);
    }

    /// Override the loss probability for the directed link `from → to`.
    pub fn set_link_loss(&mut self, from: NodeId, to: NodeId, loss: f64) {
        self.overrides
            .entry((from, to))
            .or_insert(LinkOverride {
                latency: None,
                loss_rate: None,
                bandwidth: None,
            })
            .loss_rate = Some(loss);
    }

    /// Override the bandwidth for the directed link `from → to` (bytes/s).
    pub fn set_link_bandwidth(&mut self, from: NodeId, to: NodeId, bw: f64) {
        self.overrides
            .entry((from, to))
            .or_insert(LinkOverride {
                latency: None,
                loss_rate: None,
                bandwidth: None,
            })
            .bandwidth = Some(bw);
    }

    /// Set (or with `None`, clear) the dynamic global loss rate.
    pub fn set_global_loss(&mut self, rate: Option<f64>) {
        self.dynamic_loss = rate;
    }

    /// Partition every node in `group_a` from every node in `group_b`.
    pub fn partition(&mut self, group_a: &[NodeId], group_b: &[NodeId]) {
        for &a in group_a {
            for &b in group_b {
                if a != b {
                    self.partitioned.insert(pair_key(a, b));
                }
            }
        }
    }

    /// Heal a previously installed partition.
    pub fn heal(&mut self, group_a: &[NodeId], group_b: &[NodeId]) {
        for &a in group_a {
            for &b in group_b {
                self.partitioned.remove(&pair_key(a, b));
            }
        }
    }

    /// True if `a` and `b` can currently exchange messages.
    pub fn reachable(&self, a: NodeId, b: NodeId) -> bool {
        a == b || !self.partitioned.contains(&pair_key(a, b))
    }

    /// Decide the fate of a message on `from → to`: `Some(latency)` if it
    /// will be delivered, `None` if dropped (loss or partition).
    ///
    /// Note that a *partitioned* link drops deterministically, modelling an
    /// unreachable route, while *loss* is sampled.
    pub fn route(&mut self, rng: &mut SimRng, from: NodeId, to: NodeId) -> Option<Duration> {
        if from == to {
            return Some(rng.duration(&self.config.loopback_latency));
        }
        if !self.reachable(from, to) {
            self.dropped += 1;
            return None;
        }
        let link = self.overrides.get(&(from, to));
        let loss = link
            .and_then(|l| l.loss_rate)
            .or(self.dynamic_loss)
            .unwrap_or(self.config.loss_rate);
        if rng.chance(loss) {
            self.dropped += 1;
            return None;
        }
        let dist = link
            .and_then(|l| l.latency)
            .unwrap_or(self.config.default_latency);
        Some(rng.duration(&dist))
    }

    /// The WAN lookahead: a lower bound on the latency of *any* inter-node
    /// message under the current configuration — the minimum over the
    /// default latency distribution and every per-link override. The
    /// sharded kernel uses it as the conservative null-message bound: a
    /// cross-shard message sent at `t` can never be delivered before
    /// `t + lookahead()`.
    pub fn lookahead(&self) -> Duration {
        let mut lo = self.config.default_latency.min_bound();
        for link in self.overrides.values() {
            if let Some(d) = &link.latency {
                lo = lo.min(d.min_bound());
            }
        }
        Duration::from_secs_f64(lo)
    }

    /// Bandwidth of the directed link in bytes/second.
    pub fn bandwidth(&self, from: NodeId, to: NodeId) -> f64 {
        if from == to {
            // Loopback: effectively memory speed; use a large constant.
            return 1e9;
        }
        self.overrides
            .get(&(from, to))
            .and_then(|l| l.bandwidth)
            .unwrap_or(self.config.default_bandwidth)
    }

    /// Time to move `bytes` across `from → to` at the link bandwidth plus
    /// one latency sample. Used by the `gass` bulk-transfer model.
    pub fn transfer_duration(
        &mut self,
        rng: &mut SimRng,
        from: NodeId,
        to: NodeId,
        bytes: u64,
    ) -> Option<Duration> {
        let latency = self.route(rng, from, to)?;
        let bw = self.bandwidth(from, to);
        Some(latency + Duration::from_secs_f64(bytes as f64 / bw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(11)
    }

    #[test]
    fn loopback_is_fast_and_reliable() {
        let mut net = Network::new(NetConfig {
            loss_rate: 1.0,
            ..NetConfig::default()
        });
        let mut r = rng();
        for _ in 0..100 {
            let d = net
                .route(&mut r, NodeId(1), NodeId(1))
                .expect("loopback lost");
            assert!(d <= Duration::from_millis(1));
        }
        assert_eq!(net.dropped, 0);
    }

    #[test]
    fn partition_blocks_both_directions() {
        let mut net = Network::new(NetConfig::default());
        let mut r = rng();
        net.partition(&[NodeId(1)], &[NodeId(2), NodeId(3)]);
        assert!(net.route(&mut r, NodeId(1), NodeId(2)).is_none());
        assert!(net.route(&mut r, NodeId(2), NodeId(1)).is_none());
        assert!(net.route(&mut r, NodeId(1), NodeId(3)).is_none());
        // Unrelated pair still connected.
        assert!(net.route(&mut r, NodeId(2), NodeId(3)).is_some());
        net.heal(&[NodeId(1)], &[NodeId(2), NodeId(3)]);
        assert!(net.route(&mut r, NodeId(1), NodeId(2)).is_some());
    }

    #[test]
    fn loss_rate_approximated() {
        let cfg = NetConfig {
            loss_rate: 0.25,
            ..NetConfig::default()
        };
        let mut net = Network::new(cfg);
        let mut r = rng();
        let n = 20_000;
        let delivered = (0..n)
            .filter(|_| net.route(&mut r, NodeId(0), NodeId(1)).is_some())
            .count();
        let rate = 1.0 - delivered as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "observed loss {rate}");
    }

    #[test]
    fn link_overrides_beat_defaults() {
        let mut net = Network::new(NetConfig::default());
        let mut r = rng();
        net.set_link_loss(NodeId(0), NodeId(1), 1.0);
        assert!(net.route(&mut r, NodeId(0), NodeId(1)).is_none());
        // Reverse direction unaffected.
        assert!(net.route(&mut r, NodeId(1), NodeId(0)).is_some());
        net.set_link_latency(NodeId(2), NodeId(3), Dist::Constant(5.0));
        let d = net.route(&mut r, NodeId(2), NodeId(3)).unwrap();
        assert_eq!(d, Duration::from_secs(5));
    }

    #[test]
    fn transfer_duration_scales_with_size() {
        let mut net = Network::new(NetConfig {
            default_latency: Dist::Constant(0.0),
            default_bandwidth: 1_000_000.0,
            ..NetConfig::default()
        });
        let mut r = rng();
        let d = net
            .transfer_duration(&mut r, NodeId(0), NodeId(1), 10_000_000)
            .unwrap();
        assert_eq!(d, Duration::from_secs(10));
    }

    #[test]
    fn dynamic_loss_override() {
        let mut net = Network::new(NetConfig::default());
        let mut r = rng();
        net.set_global_loss(Some(1.0));
        assert!(net.route(&mut r, NodeId(0), NodeId(1)).is_none());
        net.set_global_loss(None);
        assert!(net.route(&mut r, NodeId(0), NodeId(1)).is_some());
    }
}
