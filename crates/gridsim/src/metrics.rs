//! Metrics collection: counters, time-series gauges, and histograms.
//!
//! The experiment harness reads these to produce the paper's numbers —
//! CPU-hours delivered, concurrent-processor time series, queueing-delay
//! distributions, protocol message counts.

use crate::time::{Duration, SimTime};
use std::collections::BTreeMap;

/// Retained-sample cap for [`Histogram`] and point cap for [`TimeSeries`].
/// Below the cap both containers keep every observation and all statistics
/// are exact (experiments stay well under it); above it they decimate
/// deterministically so a million-job campaign holds O(cap) memory per
/// metric instead of O(jobs).
pub const METRIC_RETAIN_CAP: usize = 16_384;

/// A latency/size histogram. Scalar statistics (count, sum, mean, min, max)
/// are always exact; the explicit sample set backing quantiles is exact up
/// to [`METRIC_RETAIN_CAP`] observations, after which a deterministic
/// stride-doubling reservoir keeps an evenly spaced (by arrival order)
/// subset — quantiles degrade gracefully from exact to approximate.
#[derive(Debug, Clone)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// Keep every `stride`-th observation (1 = keep all).
    stride: u64,
    /// Observations skipped since the last retained one.
    skipped: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            samples: Vec::new(),
            sorted: false,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            stride: 1,
            skipped: 0,
        }
    }
}

impl Histogram {
    /// Record one observation.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        if self.stride > 1 {
            self.skipped += 1;
            if self.skipped < self.stride {
                return;
            }
            self.skipped = 0;
        }
        self.samples.push(v);
        self.sorted = false;
        if self.samples.len() >= METRIC_RETAIN_CAP {
            // Halve the reservoir (keep even arrival ranks) and record half
            // as often from here on. Deterministic: no RNG involved.
            let mut keep = 0;
            for i in (0..self.samples.len()).step_by(2) {
                self.samples[keep] = self.samples[i];
                keep += 1;
            }
            self.samples.truncate(keep);
            self.stride *= 2;
            self.skipped = 0;
        }
    }

    /// Number of observations (exact).
    pub fn count(&self) -> usize {
        self.count as usize
    }

    /// Arithmetic mean (0 when empty; exact).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Sum of all observations (exact).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Largest observation (exact). Empty histograms report 0 by convention
    /// ("no data" reads as zero in experiment tables), so an all-negative
    /// sample set is distinguishable from no samples only via
    /// [`Histogram::count`].
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Smallest observation (exact; 0 when empty, same convention as
    /// [`Histogram::max`]).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank over the retained
    /// samples; 0 when empty. Exact until the retain cap is reached.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            self.sorted = true;
        }
        let idx = ((self.samples.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
        self.samples[idx]
    }

    /// Borrow the retained samples (all of them until the retain cap).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// A step-function time series (e.g. "processors in use"), from which
/// time-weighted statistics like the paper's "average of 653 processors
/// active" are computed.
///
/// Memory is bounded: up to [`METRIC_RETAIN_CAP`] points are kept verbatim
/// (experiments stay under this and see exact statistics); beyond it the
/// series decimates deterministically by doubling its record stride, so a
/// week-long million-job campaign keeps an evenly thinned step function
/// instead of every transition. [`TimeSeries::last`] and
/// [`TimeSeries::max`] stay exact throughout, and time-weighted statistics
/// always account for the true latest value.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
    /// Exact most-recent sample, even when decimation dropped it.
    last: Option<(SimTime, f64)>,
    /// Exact running maximum.
    max: f64,
    /// Keep every `stride`-th point (1 = keep all).
    stride: u64,
    skipped: u64,
}

impl Default for TimeSeries {
    fn default() -> TimeSeries {
        TimeSeries {
            points: Vec::new(),
            last: None,
            max: f64::NEG_INFINITY,
            stride: 1,
            skipped: 0,
        }
    }
}

impl TimeSeries {
    /// Record the series value from `t` onwards.
    pub fn record(&mut self, t: SimTime, v: f64) {
        debug_assert!(
            self.last.is_none_or(|(pt, _)| pt <= t),
            "time series must be appended in order"
        );
        self.last = Some((t, v));
        if v > self.max {
            self.max = v;
        }
        if self.stride > 1 {
            self.skipped += 1;
            if self.skipped < self.stride {
                return;
            }
            self.skipped = 0;
        }
        self.points.push((t, v));
        if self.points.len() >= METRIC_RETAIN_CAP {
            let mut keep = 0;
            for i in (0..self.points.len()).step_by(2) {
                self.points[keep] = self.points[i];
                keep += 1;
            }
            self.points.truncate(keep);
            self.stride *= 2;
            self.skipped = 0;
        }
    }

    /// The retained points (all of them until the retain cap).
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Latest value (0 when empty; exact even after decimation).
    pub fn last(&self) -> f64 {
        self.last.map_or(0.0, |(_, v)| v)
    }

    /// Maximum recorded value (exact). Empty series report 0 by convention
    /// (same as [`Histogram::max`]); an all-negative series returns its
    /// true (negative) maximum.
    pub fn max(&self) -> f64 {
        if self.last.is_none() {
            0.0
        } else {
            self.max
        }
    }

    /// Time-weighted average over `[start, end]`, treating the series as a
    /// step function that holds each value until the next point. The true
    /// latest sample participates even if decimation dropped it from the
    /// retained set.
    pub fn time_weighted_mean(&self, start: SimTime, end: SimTime) -> f64 {
        if end <= start || self.last.is_none() {
            return 0.0;
        }
        let total = (end - start).as_secs_f64();
        let mut acc = 0.0;
        // Value in effect at `start`: last point at or before it (0 if none).
        let mut cur_t = start;
        let mut cur_v = 0.0;
        let tail = self
            .last
            .filter(|lp| self.points.last().is_none_or(|rp| lp.0 > rp.0));
        for &(t, v) in self.points.iter().chain(tail.iter()) {
            if t <= start {
                cur_v = v;
                continue;
            }
            if t >= end {
                break;
            }
            acc += cur_v * (t - cur_t).as_secs_f64();
            cur_t = t;
            cur_v = v;
        }
        acc += cur_v * (end - cur_t).as_secs_f64();
        acc / total
    }

    /// Integral of the series over `[start, end]` in value·seconds (e.g.
    /// CPU-seconds when the series counts busy CPUs).
    pub fn integral(&self, start: SimTime, end: SimTime) -> f64 {
        self.time_weighted_mean(start, end) * (end - start).as_secs_f64()
    }
}

/// The world-wide metrics sink.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    series: BTreeMap<String, TimeSeries>,
}

impl Metrics {
    /// Empty sink.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Add `by` to the named counter.
    pub fn incr(&mut self, name: &str, by: u64) {
        // Hot path: the counter almost always exists already, so look up by
        // borrowed name first and only allocate the key on first use.
        if let Some(c) = self.counters.get_mut(name) {
            *c += by;
        } else {
            self.counters.insert(name.to_string(), by);
        }
    }

    /// Read a counter (0 if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Record a histogram observation.
    pub fn observe(&mut self, name: &str, v: f64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.record(v);
        } else {
            self.histograms
                .entry(name.to_string())
                .or_default()
                .record(v);
        }
    }

    /// Record a duration observation in seconds.
    pub fn observe_duration(&mut self, name: &str, d: Duration) {
        self.observe(name, d.as_secs_f64());
    }

    /// Access a histogram (if any observation was made).
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Mutable access (for quantiles, which sort lazily).
    pub fn histogram_mut(&mut self, name: &str) -> Option<&mut Histogram> {
        self.histograms.get_mut(name)
    }

    /// Record a time-series point.
    pub fn gauge(&mut self, name: &str, t: SimTime, v: f64) {
        if let Some(s) = self.series.get_mut(name) {
            s.record(t, v);
        } else {
            self.series
                .entry(name.to_string())
                .or_default()
                .record(t, v);
        }
    }

    /// Adjust a time-series by a delta relative to its last value — handy
    /// for "currently running jobs" style gauges.
    pub fn gauge_delta(&mut self, name: &str, t: SimTime, delta: f64) {
        let s = if self.series.contains_key(name) {
            self.series.get_mut(name).expect("just checked")
        } else {
            self.series.entry(name.to_string()).or_default()
        };
        let v = s.last() + delta;
        s.record(t, v);
    }

    /// Access a time series.
    pub fn series(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// Names of all counters (sorted).
    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.counters.keys().map(String::as_str)
    }

    /// All counters with values, sorted by name (for exporters).
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms, sorted by name (for exporters).
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// All time series, sorted by name (for exporters).
    pub fn all_series(&self) -> impl Iterator<Item = (&str, &TimeSeries)> {
        self.series.iter().map(|(k, v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters() {
        let mut m = Metrics::new();
        assert_eq!(m.counter("x"), 0);
        m.incr("x", 2);
        m.incr("x", 3);
        assert_eq!(m.counter("x"), 5);
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::default();
        for v in [4.0, 1.0, 3.0, 2.0, 5.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.mean() - 3.0).abs() < 1e-12);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 5.0);
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(0.5), 3.0);
        assert_eq!(h.quantile(1.0), 5.0);
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let mut h = Histogram::default();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn all_negative_histogram_max_is_not_clamped_to_zero() {
        let mut h = Histogram::default();
        for v in [-5.0, -1.0, -3.0] {
            h.record(v);
        }
        assert_eq!(h.max(), -1.0);
        assert_eq!(h.min(), -5.0);
    }

    #[test]
    fn all_negative_series_max_is_not_clamped_to_zero() {
        let mut s = TimeSeries::default();
        s.record(SimTime(1), -4.0);
        s.record(SimTime(2), -2.0);
        s.record(SimTime(3), -9.0);
        assert_eq!(s.max(), -2.0);
        assert_eq!(TimeSeries::default().max(), 0.0);
    }

    #[test]
    fn exporter_iterators_are_sorted() {
        let mut m = Metrics::new();
        m.incr("b", 2);
        m.incr("a", 1);
        m.observe("lat", 1.5);
        m.gauge("busy", SimTime(1), 3.0);
        let names: Vec<&str> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(names, ["a", "b"]);
        assert_eq!(m.histograms().count(), 1);
        assert_eq!(m.all_series().count(), 1);
    }

    #[test]
    fn time_weighted_mean_step_function() {
        let mut s = TimeSeries::default();
        // 0 CPUs until t=10s, then 4 CPUs until t=30s, then 2.
        s.record(SimTime(10_000_000), 4.0);
        s.record(SimTime(30_000_000), 2.0);
        let mean = s.time_weighted_mean(SimTime::ZERO, SimTime(40_000_000));
        // (0*10 + 4*20 + 2*10) / 40 = 100/40 = 2.5
        assert!((mean - 2.5).abs() < 1e-9, "{mean}");
        let integral = s.integral(SimTime::ZERO, SimTime(40_000_000));
        assert!((integral - 100.0).abs() < 1e-6, "{integral}");
    }

    #[test]
    fn time_weighted_mean_window_inside_series() {
        let mut s = TimeSeries::default();
        s.record(SimTime(0), 10.0);
        s.record(SimTime(100_000_000), 0.0);
        // Window entirely inside the value-10 regime.
        let mean = s.time_weighted_mean(SimTime(10_000_000), SimTime(20_000_000));
        assert!((mean - 10.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_decimates_but_scalars_stay_exact() {
        let mut h = Histogram::default();
        let n = (METRIC_RETAIN_CAP * 5) as u64;
        for i in 0..n {
            h.record(i as f64);
        }
        assert_eq!(h.count() as u64, n, "count is exact");
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), (n - 1) as f64);
        let exact_mean = (n - 1) as f64 / 2.0;
        assert!((h.mean() - exact_mean).abs() < 1e-9, "mean is exact");
        assert!(
            h.samples().len() < METRIC_RETAIN_CAP,
            "reservoir bounded: {}",
            h.samples().len()
        );
        // Quantiles are approximate but must stay in the right ballpark.
        let med = h.quantile(0.5);
        assert!(
            (med - exact_mean).abs() < n as f64 * 0.01,
            "median {med} far from {exact_mean}"
        );
    }

    #[test]
    fn series_decimates_but_last_and_max_stay_exact() {
        let mut s = TimeSeries::default();
        let n = (METRIC_RETAIN_CAP * 3) as u64;
        for i in 0..n {
            // One point per simulated second, sawtooth values.
            s.record(SimTime(i * 1_000_000), (i % 100) as f64);
        }
        assert!(s.points().len() < METRIC_RETAIN_CAP, "points bounded");
        assert_eq!(s.last(), ((n - 1) % 100) as f64, "last is exact");
        assert_eq!(s.max(), 99.0, "max is exact");
        // The sawtooth's time-weighted mean is ~49.5 whatever the thinning.
        let mean = s.time_weighted_mean(SimTime::ZERO, SimTime(n * 1_000_000));
        assert!((mean - 49.5).abs() < 2.0, "{mean}");
    }

    #[test]
    fn gauge_delta_accumulates() {
        let mut m = Metrics::new();
        m.gauge_delta("busy", SimTime(1), 1.0);
        m.gauge_delta("busy", SimTime(2), 1.0);
        m.gauge_delta("busy", SimTime(3), -1.0);
        let s = m.series("busy").unwrap();
        assert_eq!(s.last(), 1.0);
        assert_eq!(s.max(), 2.0);
    }
}
