#![warn(missing_docs)]
//! `gridsim` — deterministic discrete-event simulation kernel for the
//! Condor-G reproduction.
//!
//! The original Condor-G (HPDC 2001) ran for days across real
//! multi-institutional testbeds. To reproduce its behaviour faithfully and
//! repeatably, every distributed piece of the system (the agent, the Globus
//! gatekeepers and job managers, the site batch schedulers, the Condor
//! daemons) is implemented as a *component*: a state machine that reacts to
//! messages and timers. Components live on *nodes*, nodes are connected by a
//! *network* with configurable latency, loss, bandwidth and partitions, and
//! the whole world advances in virtual time under a single deterministic
//! event loop.
//!
//! Key properties:
//!
//! * **Determinism** — identical seeds and inputs produce identical event
//!   orderings and traces (ties in the event queue are broken by sequence
//!   number). This is what lets the test suite assert exact protocol
//!   behaviour under scripted failures.
//! * **Crash semantics** — a node crash atomically destroys the in-memory
//!   state of every component on the node; only data written to the
//!   [`store::StableStore`] survives. Node boot hooks re-create components
//!   on restart, which is exactly how the paper's GridManager and Schedd
//!   recover (§4.2 of the paper).
//! * **Failure injection** — [`fault::FaultPlan`] schedules crashes,
//!   restarts, partitions and loss-rate changes, either scripted or sampled
//!   from MTBF/MTTR distributions.
//!
//! # Quick example
//!
//! ```
//! use gridsim::prelude::*;
//!
//! struct Ping { peer: Option<Addr>, hops: u32 }
//! #[derive(Debug)]
//! struct PingMsg(u32);
//!
//! impl Component for Ping {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_>) {
//!         if let Some(peer) = self.peer {
//!             ctx.send(peer, PingMsg(0));
//!         }
//!     }
//!     fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Addr, msg: AnyMsg) {
//!         let PingMsg(n) = *msg.downcast::<PingMsg>().unwrap();
//!         self.hops += 1;
//!         if n < 10 { ctx.send(from, PingMsg(n + 1)); }
//!     }
//! }
//!
//! let mut world = World::new(Config::default().seed(42));
//! let a = world.add_node("a");
//! let b = world.add_node("b");
//! let pong = world.add_component(b, "pong", Ping { peer: None, hops: 0 });
//! world.add_component(a, "ping", Ping { peer: Some(pong), hops: 0 });
//! world.run_until_quiescent();
//! assert!(world.now() > SimTime::ZERO);
//! ```

pub mod codec;
pub mod component;
pub mod event;
pub mod fault;
pub mod metrics;
pub mod network;
pub mod obs;
pub mod rng;
pub mod shard;
pub mod store;
pub mod time;
pub mod trace;
pub mod world;

/// Convenient glob import for simulation users.
pub mod prelude {
    pub use crate::component::{Addr, AnyMsg, CompId, Component, Ctx, NodeId, ShardId, TimerId};
    pub use crate::fault::FaultPlan;
    pub use crate::network::flow::{BulkAborted, LinkId};
    pub use crate::network::NetConfig;
    pub use crate::rng::SimRng;
    pub use crate::store::StableStore;
    pub use crate::time::{Duration, EventKey, SimTime};
    pub use crate::trace::{TraceEvent, TraceSubscriber};
    pub use crate::world::{Config, World};
}

pub use component::{Addr, AnyMsg, CompId, Component, Ctx, NodeId, ShardId, TimerId};
pub use time::{Duration, EventKey, SimTime};
pub use world::{Config, World};
