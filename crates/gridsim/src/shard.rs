//! Kernel shards: partitions of the world advanced under a conservative
//! lookahead protocol.
//!
//! A [`Shard`] owns everything event execution touches that is naturally
//! node-local: a calendar [`EventQueue`], a local clock, the per-link FIFO
//! clamp state for links *originating* on its nodes, the cancelled-timer
//! set for timers owned by its components, and its processed-event count.
//! The coordinator in [`crate::world::World`] assigns every node to exactly
//! one shard (shard 0 — the *home* shard — hosts the agent side plus any
//! unassigned node) and routes each scheduled event to the shard of the
//! node it fires on, so a shard's queue holds only events it will execute.
//!
//! Cross-shard sends are timestamped channel messages: the sender's shard
//! stamps the delivery with the sampled source→dest WAN link latency and
//! files it straight into the destination shard's queue. Because every
//! inter-node link carries at least the network model's minimum latency
//! ([`crate::network::Network::lookahead`]), a shard whose next local event
//! lies at or before
//!
//! ```text
//! safe(S) = min over other shards S' of  clock(S') + lookahead
//! ```
//!
//! can execute it without ever receiving an earlier cross-shard message —
//! the classic conservative null-message bound ([`safe_horizon`]). The
//! coordinator *commits* events in the global `(time, seq)` order (seq is
//! allocated from one world-wide counter), which keeps traces, RNG draws
//! and digests byte-identical for every shard count; the horizon is used to
//! measure how many shards are concurrently runnable (`shard.runnable`),
//! i.e. how much parallelism the partition exposes.

use crate::component::{NodeId, TimerId};
use crate::event::EventQueue;
use crate::time::{Duration, SimTime};
use std::collections::{HashMap, HashSet};

/// One partition of the world: a site group's nodes (or the agent side's,
/// for shard 0) plus the execution state their events need.
#[derive(Debug, Default)]
pub struct Shard {
    /// Pending events firing on this shard's nodes. Sequence numbers come
    /// from the world-global counter, so merging shard queues by
    /// `(time, seq)` reproduces the single-queue total order exactly.
    pub(crate) queue: EventQueue,
    /// Local clock: the timestamp of the last event this shard executed.
    pub(crate) clock: SimTime,
    /// Per directed link *from* this shard's nodes: the latest scheduled
    /// control-message delivery, enforcing FIFO ordering like the TCP
    /// connections the real protocols run over. Keyed identically to the
    /// old world-global map; since every send is applied on the sender's
    /// shard, the partition of that map by sender node is exact.
    pub(crate) fifo: HashMap<(NodeId, NodeId), SimTime>,
    /// Cancelled timers owned by this shard's components (timers only ever
    /// fire on the component that set them, so the set is shard-local).
    pub(crate) cancelled: HashSet<TimerId>,
    /// Events this shard has executed.
    pub(crate) events: u64,
}

impl Shard {
    /// A fresh shard with an empty queue and a zero clock.
    pub fn new() -> Shard {
        Shard::default()
    }

    /// Events executed by this shard so far.
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// This shard's local clock (timestamp of its last executed event).
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Pending events in this shard's queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }
}

/// The conservative safe horizon for shard `s`: the earliest instant at
/// which a not-yet-sent cross-shard message could still arrive, i.e. the
/// minimum over every other shard of its clock plus the WAN lookahead. An
/// event at or before this bound can run without waiting for null messages.
/// With a single shard there is no inbound link, so the horizon is
/// unbounded.
pub fn safe_horizon(clocks: &[SimTime], s: usize, lookahead: Duration) -> SimTime {
    let mut safe = SimTime::MAX;
    for (i, &c) in clocks.iter().enumerate() {
        if i != s {
            safe = safe.min(c + lookahead);
        }
    }
    safe
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safe_horizon_is_min_peer_clock_plus_lookahead() {
        let clocks = [SimTime(100), SimTime(50), SimTime(200)];
        let l = Duration::from_micros(20);
        assert_eq!(safe_horizon(&clocks, 0, l), SimTime(70));
        assert_eq!(safe_horizon(&clocks, 1, l), SimTime(120));
        assert_eq!(safe_horizon(&clocks, 2, l), SimTime(70));
    }

    #[test]
    fn single_shard_horizon_is_unbounded() {
        let clocks = [SimTime(5)];
        assert_eq!(
            safe_horizon(&clocks, 0, Duration::from_secs(1)),
            SimTime::MAX
        );
    }
}
