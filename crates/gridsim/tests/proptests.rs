//! Property-based tests for the simulation kernel: codec round-trips,
//! event-queue ordering, time arithmetic, and network invariants.

use gridsim::codec::{from_bytes, to_bytes};
use gridsim::event::{EventKind, EventQueue};
use gridsim::network::{NetConfig, Network};
use gridsim::rng::SimRng;
use gridsim::time::{Duration, SimTime};
use gridsim::{Addr, CompId, NodeId, TimerId};
use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum State {
    Idle,
    Running { site: String, cpus: u32 },
    Held(Option<String>),
    Done(i64, bool),
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Record {
    id: u64,
    state: State,
    notes: Vec<String>,
    env: BTreeMap<String, i32>,
    ratio: f64,
    blob: Vec<u8>,
}

/// One step of the calendar-vs-heap equivalence drive: schedule an event
/// `delta` past the last popped time, or pop from both queues.
#[derive(Debug, Clone, Copy)]
enum QueueOp {
    Push(u64),
    Pop,
}

fn arb_state() -> impl Strategy<Value = State> {
    prop_oneof![
        Just(State::Idle),
        ("[a-z]{0,8}", any::<u32>()).prop_map(|(site, cpus)| State::Running { site, cpus }),
        prop::option::of("[a-z ]{0,12}").prop_map(State::Held),
        (any::<i64>(), any::<bool>()).prop_map(|(a, b)| State::Done(a, b)),
    ]
}

fn arb_record() -> impl Strategy<Value = Record> {
    (
        any::<u64>(),
        arb_state(),
        prop::collection::vec("[a-zA-Z0-9 ]{0,16}", 0..4),
        prop::collection::btree_map("[a-z]{1,6}", any::<i32>(), 0..4),
        any::<f64>(),
        prop::collection::vec(any::<u8>(), 0..32),
    )
        .prop_map(|(id, state, notes, env, ratio, blob)| Record {
            id,
            state,
            notes,
            env,
            ratio,
            blob,
        })
}

proptest! {
    /// Arbitrary nested structures survive the stable-storage codec.
    #[test]
    fn codec_round_trips_arbitrary_records(r in arb_record()) {
        // NaN breaks PartialEq, not the codec; normalize it.
        let mut r = r;
        if r.ratio.is_nan() {
            r.ratio = 0.0;
        }
        let bytes = to_bytes(&r).unwrap();
        let back: Record = from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, r);
    }

    /// The event queue dequeues in (time, insertion) order regardless of
    /// push order.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(
                SimTime(t),
                EventKind::Timer {
                    on: Addr { node: NodeId(0), comp: CompId(0) },
                    id: TimerId(i as u64),
                    tag: i as u64,
                    epoch: 0,
                },
                gridsim::event::NO_CAUSE,
            );
        }
        let mut last: Option<(SimTime, u64)> = None;
        while let Some(e) = q.pop() {
            let tag = match e.kind {
                EventKind::Timer { tag, .. } => tag,
                _ => unreachable!(),
            };
            if let Some((lt, lseq)) = last {
                prop_assert!(e.time > lt || (e.time == lt && tag > lseq),
                    "order violated: {:?} after {:?}", (e.time, tag), (lt, lseq));
            }
            last = Some((e.time, tag));
        }
    }

    /// The calendar queue pops in exactly the `(time, seq)` order a plain
    /// binary heap produces, under arbitrary interleavings of pushes (near,
    /// mid, far, and beyond-the-horizon deltas) and pops. This is the
    /// property the kernel's byte-for-byte determinism rests on.
    #[test]
    fn calendar_queue_matches_binary_heap(
        ops in prop::collection::vec(
            prop_oneof![
                (0u64..2_000).prop_map(QueueOp::Push),                // same L0 slot-ish
                (0u64..5_000_000).prop_map(QueueOp::Push),            // within L0 range
                (0u64..2_000_000_000).prop_map(QueueOp::Push),        // L1 buckets
                (0u64..200_000_000_000).prop_map(QueueOp::Push),      // overflow heap
                Just(QueueOp::Pop),
            ],
            1..300,
        )
    ) {
        let mut q = EventQueue::new();
        let mut reference: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u64)>> =
            std::collections::BinaryHeap::new();
        let mut next_seq = 0u64;
        let mut now = 0u64;
        let drain = |q: &mut EventQueue,
                         reference: &mut std::collections::BinaryHeap<std::cmp::Reverse<(u64, u64)>>,
                         now: &mut u64|
         -> Result<(), TestCaseError> {
            let got = q.pop().map(|e| (e.time.0, e.seq));
            let want = reference.pop().map(|std::cmp::Reverse(k)| k);
            prop_assert_eq!(got, want, "pop order diverged");
            if let Some((t, _)) = got {
                *now = t;
            }
            Ok(())
        };
        for op in ops {
            match op {
                QueueOp::Push(delta) => {
                    let t = now + delta;
                    q.push(
                        SimTime(t),
                        EventKind::Timer {
                            on: Addr { node: NodeId(0), comp: CompId(0) },
                            id: TimerId(next_seq),
                            tag: next_seq,
                            epoch: 0,
                        },
                        gridsim::event::NO_CAUSE,
                    );
                    reference.push(std::cmp::Reverse((t, next_seq)));
                    next_seq += 1;
                }
                QueueOp::Pop => drain(&mut q, &mut reference, &mut now)?,
            }
        }
        while !reference.is_empty() || !q.is_empty() {
            drain(&mut q, &mut reference, &mut now)?;
        }
        prop_assert!(q.pop().is_none());
    }

    /// The sharded kernel's merge: events partitioned across per-shard
    /// queues by an arbitrary node→shard map, with globally allocated
    /// sequence numbers, pop in exactly the order one unpartitioned queue
    /// produces. This is the invariant that makes `--shards N` digests
    /// byte-identical to `--shards 1` on random site topologies.
    #[test]
    fn sharded_merge_equals_single_queue(
        shards in 1usize..6,
        events in prop::collection::vec((0u64..1_000_000, 0u32..32), 1..250),
        shard_salt in any::<u64>(),
    ) {
        // Random node→shard assignment (deterministic in shard_salt).
        let node_shard: Vec<usize> = (0..32u64)
            .map(|n| (n.wrapping_mul(shard_salt | 1) >> 7) as usize % shards)
            .collect();
        let mk = |tag: u64, node: u32| EventKind::Timer {
            on: Addr { node: NodeId(node), comp: CompId(0) },
            id: TimerId(tag),
            tag,
            epoch: 0,
        };
        let mut single = EventQueue::new();
        let mut parts: Vec<EventQueue> = (0..shards).map(|_| EventQueue::new()).collect();
        // Global seq allocation in arrival order — what World::push_event
        // does — so cross-shard same-time ties keep their arrival order.
        for (seq, &(t, node)) in events.iter().enumerate() {
            let seq = seq as u64;
            single.push_with_seq(SimTime(t), seq, mk(seq, node), gridsim::event::NO_CAUSE);
            let s = node_shard[node as usize];
            parts[s].push_with_seq(SimTime(t), seq, mk(seq, node), gridsim::event::NO_CAUSE);
        }
        // N-way merge by (time, seq) — the coordinator's commit loop.
        loop {
            let best = (0..shards)
                .filter_map(|s| parts[s].peek_key().map(|k| (k, s)))
                .min();
            let Some((key, s)) = best else { break };
            let merged = parts[s].pop().expect("peeked shard pops");
            prop_assert_eq!((merged.time, merged.seq), key, "peek_key lied");
            let want = single.pop().expect("single queue has the event too");
            prop_assert_eq!(
                (merged.time, merged.seq),
                (want.time, want.seq),
                "merged order diverged from the single queue"
            );
        }
        prop_assert!(single.pop().is_none(), "merge dropped events");
    }

    /// Time arithmetic never panics and preserves ordering.
    #[test]
    fn time_arithmetic_is_total(a in any::<u64>(), b in any::<u64>()) {
        let ta = SimTime(a);
        let d = Duration(b);
        let later = ta + d;
        prop_assert!(later >= ta);
        prop_assert_eq!(SimTime::ZERO - ta, Duration::ZERO);
        let span = later - ta;
        // Saturating add means the span can be clipped, never inflated.
        prop_assert!(span <= d);
    }

    /// Partitions are symmetric and healing restores exactly the cut pairs.
    #[test]
    fn partitions_symmetric_and_healable(
        a in prop::collection::btree_set(0u32..12, 1..5),
        b in prop::collection::btree_set(0u32..12, 1..5),
    ) {
        let group_a: Vec<NodeId> = a.iter().map(|&n| NodeId(n)).collect();
        let group_b: Vec<NodeId> = b.iter().map(|&n| NodeId(n)).collect();
        let mut net = Network::new(NetConfig::default());
        net.partition(&group_a, &group_b);
        for &x in &group_a {
            for &y in &group_b {
                if x != y {
                    prop_assert!(!net.reachable(x, y));
                    prop_assert!(!net.reachable(y, x));
                }
            }
        }
        net.heal(&group_a, &group_b);
        for x in 0..12 {
            for y in 0..12 {
                prop_assert!(net.reachable(NodeId(x), NodeId(y)));
            }
        }
    }

    /// route() at loss p delivers with a frequency near 1-p, and latency
    /// samples stay within the configured distribution's support.
    #[test]
    fn route_respects_loss_and_latency_bounds(p in 0.0f64..0.9) {
        let cfg = NetConfig {
            default_latency: gridsim::rng::Dist::Uniform { lo: 0.010, hi: 0.020 },
            loss_rate: p,
            ..NetConfig::default()
        };
        let mut net = Network::new(cfg);
        let mut rng = SimRng::new(42);
        let n = 4000;
        let mut delivered = 0;
        for _ in 0..n {
            if let Some(lat) = net.route(&mut rng, NodeId(0), NodeId(1)) {
                delivered += 1;
                prop_assert!(lat >= Duration::from_millis(10));
                prop_assert!(lat <= Duration::from_millis(20));
            }
        }
        let rate = delivered as f64 / n as f64;
        prop_assert!((rate - (1.0 - p)).abs() < 0.05,
            "delivery rate {rate}, expected {}", 1.0 - p);
    }
}

/// Determinism at the world level: the exact same setup twice produces the
/// exact same event count, final clock, and trace.
#[test]
fn world_runs_are_reproducible() {
    use gridsim::prelude::*;
    use gridsim::AnyMsg;

    struct Chatter {
        peer: Option<Addr>,
        hops: u32,
    }
    #[derive(Debug)]
    struct M(u32);
    impl Component for Chatter {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            if let Some(p) = self.peer {
                ctx.send(p, M(0));
            }
            let jitter = ctx.rng().range_u64(1, 50);
            ctx.set_timer(Duration::from_millis(jitter), 0);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, _tag: u64) {
            if self.hops < 40 {
                let jitter = ctx.rng().range_u64(1, 50);
                ctx.set_timer(Duration::from_millis(jitter), 0);
                self.hops += 1;
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Addr, msg: AnyMsg) {
            let M(n) = *msg.downcast::<M>().unwrap();
            if n < 200 {
                ctx.send(from, M(n + 1));
            }
        }
    }

    fn run() -> (u64, SimTime, usize) {
        let mut w = gridsim::World::new(
            gridsim::Config::default()
                .seed(99)
                .net(NetConfig {
                    loss_rate: 0.05,
                    ..NetConfig::default()
                })
                .with_trace(),
        );
        let a = w.add_node("a");
        let b = w.add_node("b");
        let pb = w.add_component(
            b,
            "x",
            Chatter {
                peer: None,
                hops: 0,
            },
        );
        w.add_component(
            a,
            "y",
            Chatter {
                peer: Some(pb),
                hops: 0,
            },
        );
        w.run_until_quiescent();
        (w.events_processed(), w.now(), w.trace().events().len())
    }

    assert_eq!(run(), run());
}
