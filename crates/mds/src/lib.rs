#![warn(missing_docs)]
//! `mds` — the Metacomputing Directory Service, MDS-2 (paper §3.3).
//!
//! "A resource uses the Grid Resource Registration Protocol (GRRP) to
//! notify other entities that it is part of the Grid. Those entities can
//! then use the Grid Resource Information Protocol (GRIP) to obtain
//! information about resource status."
//!
//! Two components:
//!
//! * [`Gris`] — the per-resource information provider. It polls its site's
//!   scheduler for load, merges that into a static ClassAd describing the
//!   resource (architecture, OS, processor count, gatekeeper contact), and
//!   re-registers with the index via GRRP at a fixed interval. Registration
//!   carries a TTL: a resource that stops refreshing (crashed, partitioned)
//!   ages out of the directory, which is how discovery avoids advertising
//!   dead sites.
//! * [`Giis`] — the index server. It stores the most recent ad per
//!   resource, expires stale ones lazily, and answers GRIP queries whose
//!   filter is a ClassAd expression evaluated against each ad (GSI
//!   authentication guards queries, per the paper).
//!
//! Ads use the `classads` crate, which is also what makes the Condor-G
//! matchmaking broker (paper §4.4, citing Vazhkudai et al.) a natural fit:
//! the broker combines these ads with job requirements via
//! `classads::symmetric_match`.

use classads::{ClassAd, EvalCtx, Value};
use gridsim::prelude::*;
use gridsim::AnyMsg;
use gsi::{ProxyCredential, TrustRoot};
use site::{LrmReply, LrmRequest};
use std::collections::BTreeMap;

/// Encode a component address into an ad attribute value (`"n3.c7"`).
pub fn addr_to_attr(addr: Addr) -> String {
    format!("n{}.c{}", addr.node.0, addr.comp.0)
}

/// Decode an address encoded by [`addr_to_attr`].
pub fn attr_to_addr(s: &str) -> Option<Addr> {
    let (n, c) = s.split_once('.')?;
    Some(Addr {
        node: gridsim::NodeId(n.strip_prefix('n')?.parse().ok()?),
        comp: gridsim::CompId(c.strip_prefix('c')?.parse().ok()?),
    })
}

/// GRRP registration: a resource's current ad, valid for `ttl`.
#[derive(Debug)]
pub struct GrrpRegister {
    /// Unique resource name (the ad is replaced on re-registration).
    pub resource: String,
    /// The resource description.
    pub ad: ClassAd,
    /// How long the registration stays fresh.
    pub ttl: Duration,
}

/// GRIP query: return ads matching `filter` (a ClassAd boolean expression
/// evaluated with the candidate ad as MY).
#[derive(Debug)]
pub struct GripQuery {
    /// Correlation id.
    pub request_id: u64,
    /// Requester credential (GSI-authenticated access control).
    pub credential: ProxyCredential,
    /// Filter source, e.g. `FreeCpus > 0 && Arch == "INTEL"`.
    pub filter: String,
}

/// GRIP answer.
#[derive(Debug)]
pub enum GripReply {
    /// Matching ads.
    Ads {
        /// Correlation id.
        request_id: u64,
        /// The matches, most recently registered first.
        ads: Vec<ClassAd>,
    },
    /// Query refused (authentication or filter error).
    Denied {
        /// Correlation id.
        request_id: u64,
        /// Why.
        reason: String,
    },
}

/// The index server (GIIS).
pub struct Giis {
    trust: TrustRoot,
    entries: BTreeMap<String, (ClassAd, SimTime)>, // resource -> (ad, expires)
}

impl Giis {
    /// An index trusting `trust` for query authentication.
    pub fn new(trust: TrustRoot) -> Giis {
        Giis {
            trust,
            entries: BTreeMap::new(),
        }
    }
}

impl Component for Giis {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Addr, msg: AnyMsg) {
        if let Some(reg) = msg.downcast_ref::<GrrpRegister>() {
            ctx.metrics().incr("mds.registrations", 1);
            self.entries
                .insert(reg.resource.clone(), (reg.ad.clone(), ctx.now() + reg.ttl));
            return;
        }
        let Ok(query) = msg.downcast::<GripQuery>() else {
            return;
        };
        let GripQuery {
            request_id,
            credential,
            filter,
        } = *query;
        if let Err(e) = credential.verify(ctx.now(), &self.trust) {
            ctx.metrics().incr("mds.denied", 1);
            ctx.send(
                from,
                GripReply::Denied {
                    request_id,
                    reason: e.to_string(),
                },
            );
            return;
        }
        let expr = match classads::parse_expr(&filter) {
            Ok(e) => e,
            Err(e) => {
                ctx.send(
                    from,
                    GripReply::Denied {
                        request_id,
                        reason: e.to_string(),
                    },
                );
                return;
            }
        };
        // Lazy expiry: drop stale registrations as we scan.
        let now = ctx.now();
        self.entries.retain(|_, (_, expires)| *expires > now);
        let ads: Vec<ClassAd> = self
            .entries
            .values()
            .filter(|(ad, _)| EvalCtx::solo(ad).eval(&expr) == Value::Bool(true))
            .map(|(ad, _)| ad.clone())
            .collect();
        ctx.metrics().incr("mds.queries", 1);
        ctx.trace(
            "mds.query",
            format!("filter `{filter}` -> {} ads", ads.len()),
        );
        ctx.send(from, GripReply::Ads { request_id, ads });
    }
}

/// The per-resource information provider (GRIS).
pub struct Gris {
    /// Unique resource name.
    resource: String,
    /// Static attributes (arch, opsys, gatekeeper contact, ...).
    base_ad: ClassAd,
    /// The local scheduler to poll for load.
    lrm: Addr,
    /// The index to register with.
    giis: Addr,
    /// Re-registration period.
    period: Duration,
    /// TTL stamped on registrations (normally 2–3 periods).
    ttl: Duration,
}

const POLL_TAG: u64 = 1;

impl Gris {
    /// A provider registering `base_ad` (plus live load) as `resource`.
    pub fn new(resource: &str, base_ad: ClassAd, lrm: Addr, giis: Addr, period: Duration) -> Gris {
        Gris {
            resource: resource.to_string(),
            base_ad,
            lrm,
            giis,
            period,
            ttl: period * 3,
        }
    }

    fn poll(&self, ctx: &mut Ctx<'_>) {
        ctx.send(self.lrm, LrmRequest::QueryInfo);
        ctx.set_timer(self.period, POLL_TAG);
    }
}

impl Component for Gris {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.poll(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, tag: u64) {
        if tag == POLL_TAG {
            self.poll(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: Addr, msg: AnyMsg) {
        let Some(LrmReply::Info(info)) = msg.downcast_ref::<LrmReply>() else {
            return;
        };
        let mut ad = self.base_ad.clone();
        ad.set("Name", self.resource.as_str());
        ad.set("TotalCpus", i64::from(info.total_cpus));
        ad.set("FreeCpus", i64::from(info.free_cpus));
        ad.set("QueuedJobs", i64::from(info.queued));
        ad.set("RunningJobs", i64::from(info.running));
        ctx.send(
            self.giis,
            GrrpRegister {
                resource: self.resource.clone(),
                ad,
                ttl: self.ttl,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsim::{Config, World};
    use gsi::CertificateAuthority;
    use site::policy::Fifo;
    use site::{JobSpec, Lrm};

    fn addr(n: u32, c: u32) -> Addr {
        Addr {
            node: gridsim::NodeId(n),
            comp: gridsim::CompId(c),
        }
    }

    #[test]
    fn addr_attr_round_trip() {
        let a = addr(5, 19);
        assert_eq!(attr_to_addr(&addr_to_attr(a)), Some(a));
        assert_eq!(attr_to_addr("garbage"), None);
        assert_eq!(attr_to_addr("n1.cx"), None);
    }

    /// A query client that stores the matched resource names.
    struct Query {
        giis: Addr,
        credential: ProxyCredential,
        filter: String,
        at: Duration,
    }

    impl Component for Query {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(self.at, 0);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, _tag: u64) {
            ctx.send(
                self.giis,
                GripQuery {
                    request_id: 1,
                    credential: self.credential.clone(),
                    filter: self.filter.clone(),
                },
            );
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: Addr, msg: AnyMsg) {
            let node = ctx.node();
            if let Ok(reply) = msg.downcast::<GripReply>() {
                match *reply {
                    GripReply::Ads { ads, .. } => {
                        let names: Vec<String> =
                            ads.iter().filter_map(|a| a.get_str("Name")).collect();
                        ctx.store().put(node, "matches", &names);
                    }
                    GripReply::Denied { reason, .. } => {
                        ctx.store().put(node, "denied", &reason);
                    }
                }
            }
        }
    }

    struct Rig {
        world: World,
        client_node: NodeId,
    }

    fn rig(filter: &str, query_at: Duration, busy_site_jobs: u32) -> Rig {
        let mut ca = CertificateAuthority::new("/CN=CA", 2);
        let id = ca.issue_identity("/CN=jane", Duration::from_days(10));
        let cred = id.new_proxy(SimTime::ZERO, Duration::from_days(2));
        let mut w = World::new(Config::default().seed(5));
        let n_giis = w.add_node("giis");
        let n_a = w.add_node("siteA");
        let n_b = w.add_node("siteB");
        let n_c = w.add_node("client");
        let giis = w.add_component(n_giis, "giis", Giis::new(ca.trust_root()));
        let lrm_a = w.add_component(n_a, "lrm", Lrm::new("siteA", 16, Fifo));
        let lrm_b = w.add_component(n_b, "lrm", Lrm::new("siteB", 4, Fifo));
        let ad_a = ClassAd::new().with("Arch", "INTEL").with("OpSys", "LINUX");
        let ad_b = ClassAd::new()
            .with("Arch", "SUN4u")
            .with("OpSys", "SOLARIS");
        w.add_component(
            n_a,
            "gris",
            Gris::new("siteA", ad_a, lrm_a, giis, Duration::from_mins(2)),
        );
        w.add_component(
            n_b,
            "gris",
            Gris::new("siteB", ad_b, lrm_b, giis, Duration::from_mins(2)),
        );
        // Optionally occupy siteB fully.
        if busy_site_jobs > 0 {
            struct Filler {
                lrm: Addr,
                n: u32,
            }
            impl Component for Filler {
                fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                    for i in 0..self.n {
                        ctx.send(
                            self.lrm,
                            LrmRequest::Submit {
                                client_job: i as u64,
                                spec: JobSpec::simple(Duration::from_days(5), "filler"),
                            },
                        );
                    }
                }
            }
            w.add_component(
                n_c,
                "filler",
                Filler {
                    lrm: lrm_b,
                    n: busy_site_jobs,
                },
            );
        }
        w.add_component(
            n_c,
            "query",
            Query {
                giis,
                credential: cred,
                filter: filter.to_string(),
                at: query_at,
            },
        );
        Rig {
            world: w,
            client_node: n_c,
        }
    }

    #[test]
    fn discovery_finds_matching_resources() {
        let mut r = rig("FreeCpus > 0", Duration::from_mins(10), 0);
        r.world.run_until(SimTime::ZERO + Duration::from_mins(11));
        let names: Vec<String> = r.world.store().get(r.client_node, "matches").unwrap();
        assert_eq!(names.len(), 2);
        assert!(names.contains(&"siteA".to_string()));
        assert!(names.contains(&"siteB".to_string()));
    }

    #[test]
    fn filters_select_by_static_attributes() {
        let mut r = rig("Arch == \"INTEL\"", Duration::from_mins(10), 0);
        r.world.run_until(SimTime::ZERO + Duration::from_mins(11));
        let names: Vec<String> = r.world.store().get(r.client_node, "matches").unwrap();
        assert_eq!(names, vec!["siteA"]);
    }

    #[test]
    fn load_is_reflected_in_ads() {
        // siteB (4 cpus) fully occupied by 4 eternal jobs: FreeCpus == 0.
        let mut r = rig("FreeCpus > 0", Duration::from_mins(10), 4);
        r.world.run_until(SimTime::ZERO + Duration::from_mins(11));
        let names: Vec<String> = r.world.store().get(r.client_node, "matches").unwrap();
        assert_eq!(names, vec!["siteA"]);
    }

    #[test]
    fn dead_resources_age_out() {
        // Crash siteA at t=5min; query at t=20min: its TTL (3×2min) lapsed.
        let mut r = rig("TotalCpus > 0", Duration::from_mins(20), 0);
        r.world.run_until(SimTime::ZERO + Duration::from_mins(5));
        r.world.crash_node_now(gridsim::NodeId(1));
        r.world.run_until(SimTime::ZERO + Duration::from_mins(21));
        let names: Vec<String> = r.world.store().get(r.client_node, "matches").unwrap();
        assert_eq!(names, vec!["siteB"], "crashed site still advertised");
    }

    #[test]
    fn bad_filter_denied() {
        let mut r = rig("FreeCpus >", Duration::from_mins(10), 0);
        r.world.run_until(SimTime::ZERO + Duration::from_mins(11));
        let denied: String = r.world.store().get(r.client_node, "denied").unwrap();
        assert!(denied.contains("parse error"), "{denied}");
    }

    #[test]
    fn unauthenticated_query_denied() {
        // Credential from an untrusted CA.
        let mut other = CertificateAuthority::new("/CN=Rogue", 9);
        let id = other.issue_identity("/CN=spy", Duration::from_days(1));
        let cred = id.new_proxy(SimTime::ZERO, Duration::from_days(1));
        let mut ca = CertificateAuthority::new("/CN=CA", 2);
        let _ = ca.issue_identity("/CN=jane", Duration::from_days(1));
        let mut w = World::new(Config::default().seed(6));
        let n_giis = w.add_node("giis");
        let n_c = w.add_node("client");
        let giis = w.add_component(n_giis, "giis", Giis::new(ca.trust_root()));
        w.add_component(
            n_c,
            "query",
            Query {
                giis,
                credential: cred,
                filter: "TRUE".into(),
                at: Duration::from_secs(1),
            },
        );
        w.run_until_quiescent();
        let denied: String = w.store().get(n_c, "denied").unwrap();
        assert!(denied.contains("untrusted issuer"), "{denied}");
        assert_eq!(w.metrics().counter("mds.denied"), 1);
    }
}
