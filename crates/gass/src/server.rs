//! The GASS server component.

use crate::file::{FileData, FileDisk, FileStore};
use crate::proto::{GassReply, GassRequest, TransferError};
use gridsim::prelude::*;
use gridsim::AnyMsg;
use gsi::TrustRoot;

/// A GASS/GridFTP server: serves a [`FileStore`] over the request protocol
/// with GSI authentication and bandwidth-modelled replies.
///
/// The GridManager embeds one on the submit machine; execution sites run
/// one per job sandbox; the CMS repository and the GridGaussian MSS are
/// plain `GassServer`s too.
pub struct GassServer {
    files: FileStore,
    trust: TrustRoot,
    /// When false, skip credential verification (an open HTTP-style server).
    authenticate: bool,
}

impl GassServer {
    /// An authenticated server trusting `trust`.
    pub fn new(trust: TrustRoot) -> GassServer {
        GassServer {
            files: FileStore::new(),
            trust,
            authenticate: true,
        }
    }

    /// An unauthenticated server (used as plain HTTP/FTP in §3.4).
    pub fn open() -> GassServer {
        GassServer {
            files: FileStore::new(),
            trust: TrustRoot::new(),
            authenticate: false,
        }
    }

    /// Pre-load a file before the simulation starts. (Preloads are also
    /// written through to stable storage on `on_start`, so they survive a
    /// machine crash like anything else on the server's disk.)
    pub fn preload(mut self, path: &str, data: FileData) -> GassServer {
        self.files.write(path, data, SimTime::ZERO);
        self
    }

    /// Rebuild a server from its persisted "disk" after a machine restart
    /// (for node boot hooks).
    pub fn recover(
        trust: TrustRoot,
        store: &gridsim::store::StableStore,
        node: gridsim::NodeId,
    ) -> GassServer {
        let mut server = GassServer::new(trust);
        for key in store.keys_with_prefix(node, "gassfs") {
            let Some(disk) = store.get::<FileDisk>(node, &key) else {
                continue;
            };
            let path = &key["gassfs".len()..];
            server
                .files
                .write(path, FileData::from_disk(disk), SimTime::ZERO);
        }
        server
    }

    /// Write a file and persist it (write-through, like a disk write).
    fn write_through(&mut self, ctx: &mut Ctx<'_>, path: &str, op: FsOp) {
        let now = ctx.now();
        match op {
            FsOp::Put(data) => self.files.write(path, data, now),
            FsOp::Append(data) => self.files.append(path, data, now),
            FsOp::WriteAt(offset, data) => self.files.write_at(path, offset, data, now),
        }
        let node = ctx.node();
        if let Some(f) = self.files.read(path) {
            let disk = f.data.to_disk();
            ctx.store().put(node, &file_key(path), &disk);
        }
        let new_size = self.files.size(path).unwrap_or(0);
        ctx.store().put(node, &size_key(path), &new_size);
    }

    /// Direct access to the store (for test assertions and experiment
    /// post-processing through `World` lookups this isn't reachable; the
    /// store is also mirrored to stable storage keys on writes — see
    /// `on_message`).
    pub fn files(&self) -> &FileStore {
        &self.files
    }
}

/// Stable-storage key mirroring a served file's size, so tests and
/// experiments can observe server state from outside: `gass/<path>`.
fn size_key(path: &str) -> String {
    format!("gass/size{path}")
}

/// Stable-storage key holding a file's contents: the server's "disk".
fn file_key(path: &str) -> String {
    format!("gassfs{path}")
}

/// A filesystem mutation, for the write-through path.
enum FsOp {
    Put(FileData),
    Append(FileData),
    WriteAt(u64, FileData),
}

impl Component for GassServer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // Persist preloaded files so they survive crashes too.
        let node = ctx.node();
        let preloaded: Vec<(String, FileDisk, u64)> = self
            .files
            .list("")
            .into_iter()
            .filter_map(|p| {
                let f = self.files.read(&p)?;
                Some((p.clone(), f.data.to_disk(), f.data.len()))
            })
            .collect();
        for (path, disk, size) in preloaded {
            ctx.store().put(node, &file_key(&path), &disk);
            ctx.store().put(node, &size_key(&path), &size);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Addr, msg: AnyMsg) {
        // Flow mode: a bulk reply we sent was cut mid-flight (partition,
        // link failure). Surface a *retryable* failure to the requester as
        // a small control message — the file is fine, the route died.
        let msg = match msg.downcast::<BulkAborted>() {
            Ok(aborted) => {
                ctx.metrics().incr("gass.aborted_transfers", 1);
                if let Some(GassReply::Data { request_id, .. }) =
                    aborted.msg.downcast_ref::<GassReply>()
                {
                    let request_id = *request_id;
                    ctx.trace_with("gass.transfer_aborted", || {
                        format!("request_id={request_id} bytes={}", aborted.bytes)
                    });
                    ctx.send(
                        aborted.to,
                        GassReply::Failed {
                            request_id,
                            error: TransferError::Aborted("transfer cut in flight".into()),
                        },
                    );
                }
                return;
            }
            Err(other) => other,
        };
        let Ok(req) = msg.downcast::<GassRequest>() else {
            return;
        };
        let now = ctx.now();
        let request_id = req.request_id();
        // Authenticate first — every GASS operation is GSI-authenticated.
        if self.authenticate {
            let credential = match &*req {
                GassRequest::Get { credential, .. }
                | GassRequest::Put { credential, .. }
                | GassRequest::Append { credential, .. }
                | GassRequest::WriteAt { credential, .. }
                | GassRequest::Stat { credential, .. }
                | GassRequest::Delete { credential, .. } => credential,
            };
            if let Err(e) = credential.verify(now, &self.trust) {
                ctx.metrics().incr("gass.auth_failures", 1);
                ctx.send(
                    from,
                    GassReply::Failed {
                        request_id,
                        error: TransferError::AuthFailed(e.to_string()),
                    },
                );
                return;
            }
        }
        match *req {
            GassRequest::Get {
                request_id,
                path,
                offset,
                limit,
                ..
            } => {
                match self.files.read(&path) {
                    None => {
                        ctx.metrics().incr("gass.not_found", 1);
                        ctx.send(
                            from,
                            GassReply::Failed {
                                request_id,
                                error: TransferError::NotFound(path),
                            },
                        );
                    }
                    Some(f) => {
                        let total_size = f.data.len();
                        let data = f.data.slice(offset, limit);
                        ctx.metrics().incr("gass.gets", 1);
                        ctx.trace_with("gass.get", || {
                            format!("{path} [{offset}..+{}]", data.len())
                        });
                        ctx.trace_with("span", || {
                            format!("phase=transfer op=get path={path} bytes={}", data.len())
                        });
                        // The reply pays for the bytes it carries.
                        let bytes = data.len();
                        ctx.send_bulk(
                            from,
                            bytes,
                            GassReply::Data {
                                request_id,
                                data,
                                total_size,
                            },
                        );
                    }
                }
            }
            GassRequest::Put {
                request_id,
                path,
                data,
                ..
            } => {
                ctx.metrics().incr("gass.puts", 1);
                ctx.trace_with("gass.put", || format!("{path} ({} bytes)", data.len()));
                ctx.trace_with("span", || {
                    format!("phase=transfer op=put path={path} bytes={}", data.len())
                });
                self.write_through(ctx, &path, FsOp::Put(data));
                let new_size = self.files.size(&path).unwrap_or(0);
                ctx.send(
                    from,
                    GassReply::Ok {
                        request_id,
                        new_size,
                    },
                );
            }
            GassRequest::Append {
                request_id,
                path,
                data,
                ..
            } => {
                ctx.metrics().incr("gass.appends", 1);
                self.write_through(ctx, &path, FsOp::Append(data));
                let new_size = self.files.size(&path).unwrap_or(0);
                ctx.trace_with("gass.append", || format!("{path} -> {new_size} bytes"));
                ctx.send(
                    from,
                    GassReply::Ok {
                        request_id,
                        new_size,
                    },
                );
            }
            GassRequest::WriteAt {
                request_id,
                path,
                offset,
                data,
                ..
            } => {
                ctx.metrics().incr("gass.write_ats", 1);
                ctx.trace_with("span", || {
                    format!(
                        "phase=transfer op=write_at path={path} bytes={}",
                        data.len()
                    )
                });
                self.write_through(ctx, &path, FsOp::WriteAt(offset, data));
                let new_size = self.files.size(&path).unwrap_or(0);
                ctx.trace_with("gass.write_at", || {
                    format!("{path} @{offset} -> {new_size} bytes")
                });
                ctx.send(
                    from,
                    GassReply::Ok {
                        request_id,
                        new_size,
                    },
                );
            }
            GassRequest::Stat {
                request_id, path, ..
            } => match self.files.size(&path) {
                Some(size) => ctx.send(from, GassReply::Size { request_id, size }),
                None => ctx.send(
                    from,
                    GassReply::Failed {
                        request_id,
                        error: TransferError::NotFound(path),
                    },
                ),
            },
            GassRequest::Delete {
                request_id, path, ..
            } => {
                // Reclaim memory and "disk" alike; acknowledge even when
                // the file is already gone (idempotent cleanup).
                self.files.delete(&path);
                let node = ctx.node();
                ctx.store().remove(node, &file_key(&path));
                ctx.store().remove(node, &size_key(&path));
                ctx.metrics().incr("gass.deletes", 1);
                ctx.trace_with("gass.delete", || path.clone());
                ctx.send(
                    from,
                    GassReply::Ok {
                        request_id,
                        new_size: 0,
                    },
                );
            }
        }
    }
}

/// Helper for components that act as GASS *clients*: allocates correlation
/// ids and remembers what each outstanding id was for.
#[derive(Debug, Default)]
pub struct RequestIds {
    next: u64,
}

impl RequestIds {
    /// Fresh allocator.
    pub fn new() -> RequestIds {
        RequestIds::default()
    }

    /// Allocate the next id.
    pub fn next_id(&mut self) -> u64 {
        self.next += 1;
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsim::{Config, World};
    use gsi::CertificateAuthority;

    struct Client {
        server: Addr,
        script: Vec<GassRequest>,
    }

    impl Component for Client {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for req in self.script.drain(..) {
                ctx.send(self.server, req);
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: Addr, msg: AnyMsg) {
            let Ok(reply) = msg.downcast::<GassReply>() else {
                return;
            };
            let node = ctx.node();
            match *reply {
                GassReply::Data {
                    request_id,
                    data,
                    total_size,
                } => {
                    ctx.store().put(
                        node,
                        &format!("reply/{request_id}"),
                        &format!("data len={} total={total_size}", data.len()),
                    );
                }
                GassReply::Ok {
                    request_id,
                    new_size,
                } => {
                    ctx.store().put(
                        node,
                        &format!("reply/{request_id}"),
                        &format!("ok size={new_size}"),
                    );
                }
                GassReply::Size { request_id, size } => {
                    ctx.store().put(
                        node,
                        &format!("reply/{request_id}"),
                        &format!("size={size}"),
                    );
                }
                GassReply::Failed { request_id, error } => {
                    ctx.store().put(
                        node,
                        &format!("reply/{request_id}"),
                        &format!("err {error}"),
                    );
                }
            }
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _id: TimerId, _tag: u64) {}
    }

    fn setup() -> (
        World,
        Addr,
        gridsim::NodeId,
        gsi::ProxyCredential,
        TrustRoot,
    ) {
        let mut ca = CertificateAuthority::new("/CN=CA", 1);
        let id = ca.issue_identity("/CN=jane", Duration::from_days(30));
        let cred = id.new_proxy(SimTime::ZERO, Duration::from_hours(12));
        let trust = ca.trust_root();
        let mut w = World::new(Config::default().seed(2).with_trace());
        let ns = w.add_node("server");
        let nc = w.add_node("client");
        let server = w.add_component(
            ns,
            "gass",
            GassServer::new(trust.clone()).preload("/repo/exe", FileData::inline("ELF binary")),
        );
        (w, server, nc, cred, trust)
    }

    #[test]
    fn get_put_append_stat() {
        let (mut w, server, nc, cred, _trust) = setup();
        w.add_component(
            nc,
            "client",
            Client {
                server,
                script: vec![
                    GassRequest::Get {
                        request_id: 1,
                        credential: cred.clone(),
                        path: "/repo/exe".into(),
                        offset: 0,
                        limit: u64::MAX,
                    },
                    GassRequest::Put {
                        request_id: 2,
                        credential: cred.clone(),
                        path: "/out".into(),
                        data: FileData::inline("chunk1 "),
                    },
                    GassRequest::Append {
                        request_id: 3,
                        credential: cred.clone(),
                        path: "/out".into(),
                        data: FileData::inline("chunk2"),
                    },
                    GassRequest::Stat {
                        request_id: 4,
                        credential: cred.clone(),
                        path: "/out".into(),
                    },
                    GassRequest::Get {
                        request_id: 5,
                        credential: cred,
                        path: "/missing".into(),
                        offset: 0,
                        limit: u64::MAX,
                    },
                ],
            },
        );
        w.run_until_quiescent();
        let read = |id: u64| w.store().get::<String>(nc, &format!("reply/{id}")).unwrap();
        assert_eq!(read(1), "data len=10 total=10");
        assert_eq!(read(2), "ok size=7");
        assert_eq!(read(3), "ok size=13");
        assert_eq!(read(4), "size=13");
        assert!(read(5).starts_with("err no such file"));
    }

    #[test]
    fn ranged_get_for_resume() {
        let (mut w, server, nc, cred, _) = setup();
        w.add_component(
            nc,
            "client",
            Client {
                server,
                script: vec![GassRequest::Get {
                    request_id: 1,
                    credential: cred,
                    path: "/repo/exe".into(),
                    offset: 4,
                    limit: 3,
                }],
            },
        );
        w.run_until_quiescent();
        assert_eq!(
            w.store().get::<String>(nc, "reply/1").unwrap(),
            "data len=3 total=10"
        );
    }

    #[test]
    fn expired_credential_rejected() {
        let (mut w, server, nc, cred, _) = setup();
        // Run past expiry before the client fires.
        struct LateClient {
            server: Addr,
            cred: gsi::ProxyCredential,
        }
        impl Component for LateClient {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(Duration::from_hours(13), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, _tag: u64) {
                ctx.send(
                    self.server,
                    GassRequest::Stat {
                        request_id: 1,
                        credential: self.cred.clone(),
                        path: "/repo/exe".into(),
                    },
                );
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: Addr, msg: AnyMsg) {
                if let Some(GassReply::Failed { error, .. }) = msg.downcast_ref::<GassReply>() {
                    let node = ctx.node();
                    ctx.store().put(node, "err", &error.to_string());
                }
            }
        }
        w.add_component(nc, "late", LateClient { server, cred });
        w.run_until_quiescent();
        let err = w.store().get::<String>(nc, "err").unwrap();
        assert!(err.contains("authentication failed"), "{err}");
        assert_eq!(w.metrics().counter("gass.auth_failures"), 1);
    }

    #[test]
    fn files_survive_server_machine_crash() {
        // Preloaded and client-written files are on "disk": after a crash
        // and a boot-hook recovery the server serves them all again.
        let mut ca = CertificateAuthority::new("/CN=CA", 1);
        let id = ca.issue_identity("/CN=jane", Duration::from_days(30));
        let cred = id.new_proxy(SimTime::ZERO, Duration::from_days(7));
        let trust = ca.trust_root();
        let mut w = World::new(Config::default().seed(7));
        let ns = w.add_node("server");
        let nc = w.add_node("client");
        let server = w.add_component(
            ns,
            "gass",
            GassServer::new(trust.clone()).preload("/repo/exe", FileData::inline("ELF binary")),
        );
        {
            let trust = trust.clone();
            w.set_boot(ns, move |b| {
                b.add_component(
                    "gass",
                    GassServer::recover(trust.clone(), b.store(), b.node()),
                );
            });
        }
        // Phase 1: write a file, then crash the server for 10 minutes.
        w.add_component(
            nc,
            "client",
            Client {
                server,
                script: vec![GassRequest::Put {
                    request_id: 1,
                    credential: cred.clone(),
                    path: "/home/jane/job.out".into(),
                    data: FileData::inline("results"),
                }],
            },
        );
        w.apply_fault_plan(&gridsim::fault::FaultPlan::new().crash_restart(
            ns,
            SimTime::ZERO + Duration::from_mins(5),
            Duration::from_mins(10),
        ));
        w.run_until(SimTime::ZERO + Duration::from_mins(20));
        // Phase 2: read both files back from the recovered incarnation.
        struct LateReader {
            server: Addr,
            cred: gsi::ProxyCredential,
        }
        impl Component for LateReader {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                for (id, path) in [(10u64, "/repo/exe"), (11, "/home/jane/job.out")] {
                    ctx.send(
                        self.server,
                        GassRequest::Get {
                            request_id: id,
                            credential: self.cred.clone(),
                            path: path.into(),
                            offset: 0,
                            limit: u64::MAX,
                        },
                    );
                }
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: Addr, msg: AnyMsg) {
                if let Some(GassReply::Data {
                    request_id,
                    total_size,
                    ..
                }) = msg.downcast_ref::<GassReply>()
                {
                    let node = ctx.node();
                    ctx.store()
                        .put(node, &format!("got/{request_id}"), total_size);
                }
            }
        }
        w.add_component(nc, "reader", LateReader { server, cred });
        w.run_until_quiescent();
        assert_eq!(
            w.store().get::<u64>(nc, "got/10"),
            Some(10),
            "preload lost in crash"
        );
        assert_eq!(
            w.store().get::<u64>(nc, "got/11"),
            Some(7),
            "written file lost in crash"
        );
    }

    #[test]
    fn bulk_reply_pays_for_bytes() {
        // 10 MB at default 1.25 MB/s should take ~8 s.
        let mut ca = CertificateAuthority::new("/CN=CA", 1);
        let id = ca.issue_identity("/CN=jane", Duration::from_days(30));
        let cred = id.new_proxy(SimTime::ZERO, Duration::from_hours(12));
        let mut w = World::new(Config::default().seed(2));
        let ns = w.add_node("server");
        let nc = w.add_node("client");
        let server = w.add_component(
            ns,
            "gass",
            GassServer::new(ca.trust_root()).preload("/events", FileData::bulk(10_000_000, 1)),
        );
        w.add_component(
            nc,
            "client",
            Client {
                server,
                script: vec![GassRequest::Get {
                    request_id: 1,
                    credential: cred,
                    path: "/events".into(),
                    offset: 0,
                    limit: u64::MAX,
                }],
            },
        );
        w.run_until_quiescent();
        assert!(w.store().get::<String>(nc, "reply/1").is_some());
        let took = w.now().as_secs_f64();
        assert!((7.5..9.5).contains(&took), "transfer took {took}s");
        assert_eq!(w.metrics().counter("net.bulk_bytes"), 10_000_000);
    }

    #[test]
    fn bulk_transfer_is_one_event_regardless_of_size() {
        // The network model charges bulk bytes as simulated *time*, never
        // as extra events: a 100 MB stage-in is a single delivery, so the
        // kernel cost of a transfer is independent of its size. This pins
        // that model — a chunked rewrite would multiply event counts (and
        // wall-clock cost) by file size.
        let events_for = |bytes: u64| {
            let mut ca = CertificateAuthority::new("/CN=CA", 1);
            let id = ca.issue_identity("/CN=jane", Duration::from_days(30));
            let cred = id.new_proxy(SimTime::ZERO, Duration::from_hours(12));
            let mut w = World::new(Config::default().seed(2));
            let ns = w.add_node("server");
            let nc = w.add_node("client");
            let server = w.add_component(
                ns,
                "gass",
                GassServer::new(ca.trust_root()).preload("/big", FileData::bulk(bytes, 1)),
            );
            w.add_component(
                nc,
                "client",
                Client {
                    server,
                    script: vec![GassRequest::Get {
                        request_id: 1,
                        credential: cred,
                        path: "/big".into(),
                        offset: 0,
                        limit: u64::MAX,
                    }],
                },
            );
            w.run_until_quiescent();
            assert!(w.store().get::<String>(nc, "reply/1").is_some());
            w.events_processed()
        };
        assert_eq!(events_for(1024), events_for(100_000_000));
    }
}
