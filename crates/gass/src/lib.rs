#![warn(missing_docs)]
//! `gass` — Global Access to Secondary Storage and GridFTP (paper §3.4).
//!
//! GASS is how Condor-G moves data: the GridManager runs a GASS server on
//! the submit machine; each Globus JobManager connects back to it to pull
//! the job's executable and standard input, and to stream standard
//! output/error in real time. GridFTP is the bulk-transfer sibling used by
//! GlideIn binary distribution and the CMS pipeline's event shipping.
//!
//! This crate provides:
//!
//! * [`FileStore`] — an in-memory filesystem for a node. Small files (the
//!   executables and I/O the protocols actually inspect) carry real bytes;
//!   bulk scientific data is represented by length + checksum, which is all
//!   the transfer model needs.
//! * [`GassServer`] — a gridsim component speaking a GET/PUT/APPEND
//!   protocol with GSI authentication, range reads (crash-recovery restarts
//!   ask for "everything after byte N", §3.2), and bandwidth-modelled
//!   transfer times.
//! * [`GassUrl`] — `gass://` / `gsiftp://` URLs naming a server component
//!   and path. The paper's trick of repointing a job's I/O after a submit
//!   machine restart ("a process environment variable points to a file
//!   containing the URL of the listening GASS server") is reproduced by the
//!   JobManager in the `gram` crate.
//! * [`gcat::GCat`] — the GridGaussian G-Cat utility (§6): tails a growing
//!   output file and ships partial chunks to a mass-storage server through
//!   a local scratch buffer.

pub mod file;
pub mod gcat;
pub mod proto;
pub mod server;
pub mod url;

pub use file::{FileData, FileStore};
pub use proto::{GassReply, GassRequest, TransferError};
pub use server::GassServer;
pub use url::{GassUrl, Scheme};
