//! GASS/GridFTP URLs.
//!
//! A URL names a serving component (a [`crate::GassServer`]'s address) plus
//! a path on it. The paper stresses that the submit machine's GASS server
//! URL can *change* across a crash-restart, with the JobManager updating
//! the job's URL file — so URLs are first-class values that move in
//! messages and can be compared and re-resolved.

use gridsim::{Addr, CompId, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Transfer scheme.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// GASS (control-channel staging and streaming).
    Gass,
    /// GSI-authenticated GridFTP (bulk transfers).
    GsiFtp,
    /// Plain HTTP (GASS also speaks it, per §3.4).
    Http,
}

impl Scheme {
    fn as_str(self) -> &'static str {
        match self {
            Scheme::Gass => "gass",
            Scheme::GsiFtp => "gsiftp",
            Scheme::Http => "http",
        }
    }
}

/// A URL addressing a file served by a GASS/GridFTP server component.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GassUrl {
    /// The scheme.
    pub scheme: Scheme,
    /// The serving component.
    pub server: Addr,
    /// Path on the server.
    pub path: String,
}

impl GassUrl {
    /// A `gass://` URL.
    pub fn gass(server: Addr, path: &str) -> GassUrl {
        GassUrl {
            scheme: Scheme::Gass,
            server,
            path: path.to_string(),
        }
    }

    /// A `gsiftp://` URL.
    pub fn gsiftp(server: Addr, path: &str) -> GassUrl {
        GassUrl {
            scheme: Scheme::GsiFtp,
            server,
            path: path.to_string(),
        }
    }
}

impl fmt::Display for GassUrl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}://n{}.c{}{}",
            self.scheme.as_str(),
            self.server.node.0,
            self.server.comp.0,
            self.path
        )
    }
}

/// Parse failure for URLs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UrlError(pub String);

impl fmt::Display for UrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad url: {}", self.0)
    }
}

impl std::error::Error for UrlError {}

impl FromStr for GassUrl {
    type Err = UrlError;

    fn from_str(s: &str) -> Result<GassUrl, UrlError> {
        let (scheme_str, rest) = s
            .split_once("://")
            .ok_or_else(|| UrlError(format!("missing scheme in {s}")))?;
        let scheme = match scheme_str {
            "gass" => Scheme::Gass,
            "gsiftp" => Scheme::GsiFtp,
            "http" => Scheme::Http,
            other => return Err(UrlError(format!("unknown scheme {other}"))),
        };
        // Host form: nX.cY
        let slash = rest.find('/').unwrap_or(rest.len());
        let (host, path) = rest.split_at(slash);
        let (n, c) = host
            .split_once('.')
            .ok_or_else(|| UrlError(format!("bad host {host}")))?;
        let node: u32 = n
            .strip_prefix('n')
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| UrlError(format!("bad node in {host}")))?;
        let comp: u32 = c
            .strip_prefix('c')
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| UrlError(format!("bad comp in {host}")))?;
        Ok(GassUrl {
            scheme,
            server: Addr {
                node: NodeId(node),
                comp: CompId(comp),
            },
            path: if path.is_empty() {
                "/".to_string()
            } else {
                path.to_string()
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u32, c: u32) -> Addr {
        Addr {
            node: NodeId(n),
            comp: CompId(c),
        }
    }

    #[test]
    fn display_and_parse_round_trip() {
        let u = GassUrl::gass(addr(3, 14), "/home/jane/stdin");
        let s = u.to_string();
        assert_eq!(s, "gass://n3.c14/home/jane/stdin");
        assert_eq!(s.parse::<GassUrl>().unwrap(), u);

        let u = GassUrl::gsiftp(addr(0, 1), "/repo/events.dat");
        assert_eq!(u.to_string().parse::<GassUrl>().unwrap(), u);
    }

    #[test]
    fn parse_errors() {
        assert!("nope".parse::<GassUrl>().is_err());
        assert!("ftp://n1.c2/x".parse::<GassUrl>().is_err());
        assert!("gass://bad/x".parse::<GassUrl>().is_err());
        assert!("gass://n1.cX/x".parse::<GassUrl>().is_err());
    }

    #[test]
    fn empty_path_normalizes_to_root() {
        let u: GassUrl = "gass://n1.c2".parse().unwrap();
        assert_eq!(u.path, "/");
    }
}
