//! In-memory files and per-node file stores.

use bytes::Bytes;
use gridsim::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// File contents: real bytes for small files, size+checksum for bulk data.
#[derive(Clone, Debug, PartialEq)]
pub enum FileData {
    /// Actual content (executables, stdio, logs).
    Inline(Bytes),
    /// Simulated bulk data: only its size and a content fingerprint move
    /// through the system; the transfer model charges for the full size.
    Bulk {
        /// Size in bytes.
        len: u64,
        /// Content fingerprint (so corruption/mismatch is detectable).
        checksum: u64,
    },
}

/// Serializable form of [`FileData`] for stable storage (real GASS files
/// live on disk and survive machine restarts).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FileDisk {
    /// Real bytes.
    Inline(Vec<u8>),
    /// Synthetic bulk data.
    Bulk {
        /// Size in bytes.
        len: u64,
        /// Fingerprint.
        checksum: u64,
    },
}

impl FileData {
    /// Convert to the stable-storage form.
    pub fn to_disk(&self) -> FileDisk {
        match self {
            FileData::Inline(b) => FileDisk::Inline(b.to_vec()),
            FileData::Bulk { len, checksum } => FileDisk::Bulk {
                len: *len,
                checksum: *checksum,
            },
        }
    }

    /// Restore from the stable-storage form.
    pub fn from_disk(d: FileDisk) -> FileData {
        match d {
            FileDisk::Inline(v) => FileData::Inline(Bytes::from(v)),
            FileDisk::Bulk { len, checksum } => FileData::Bulk { len, checksum },
        }
    }

    /// Inline data from a byte string.
    pub fn inline(data: impl Into<Bytes>) -> FileData {
        FileData::Inline(data.into())
    }

    /// Synthetic bulk data of `len` bytes with a fingerprint derived from
    /// `tag`.
    pub fn bulk(len: u64, tag: u64) -> FileData {
        FileData::Bulk {
            len,
            checksum: tag ^ len.rotate_left(17),
        }
    }

    /// Size in bytes.
    pub fn len(&self) -> u64 {
        match self {
            FileData::Inline(b) => b.len() as u64,
            FileData::Bulk { len, .. } => *len,
        }
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Content fingerprint.
    pub fn checksum(&self) -> u64 {
        match self {
            FileData::Inline(b) => gsi::keys::digest(b),
            FileData::Bulk { checksum, .. } => *checksum,
        }
    }

    /// The byte range `[offset, offset+limit)` (clamped). Bulk data yields
    /// bulk data.
    pub fn slice(&self, offset: u64, limit: u64) -> FileData {
        match self {
            FileData::Inline(b) => {
                let start = (offset as usize).min(b.len());
                let end = start.saturating_add(limit as usize).min(b.len());
                FileData::Inline(b.slice(start..end))
            }
            FileData::Bulk { len, checksum } => {
                let start = offset.min(*len);
                let n = limit.min(len - start);
                FileData::Bulk {
                    len: n,
                    checksum: checksum ^ start.rotate_left(7),
                }
            }
        }
    }

    /// Concatenate (append) `other` to a clone of `self`.
    pub fn concat(&self, other: &FileData) -> FileData {
        match (self, other) {
            (FileData::Inline(a), FileData::Inline(b)) => {
                let mut v = Vec::with_capacity(a.len() + b.len());
                v.extend_from_slice(a);
                v.extend_from_slice(b);
                FileData::Inline(Bytes::from(v))
            }
            _ => FileData::Bulk {
                len: self.len() + other.len(),
                checksum: self.checksum().rotate_left(1) ^ other.checksum(),
            },
        }
    }
}

/// One stored file.
#[derive(Clone, Debug, PartialEq)]
pub struct File {
    /// Contents.
    pub data: FileData,
    /// Last modification time.
    pub modified: SimTime,
}

/// A node's filesystem. Paths are plain strings (`/home/jane/sim.exe`).
#[derive(Clone, Debug, Default)]
pub struct FileStore {
    files: BTreeMap<String, File>,
}

impl FileStore {
    /// Empty store.
    pub fn new() -> FileStore {
        FileStore::default()
    }

    /// Create or replace a file.
    pub fn write(&mut self, path: &str, data: FileData, now: SimTime) {
        self.files.insert(
            path.to_string(),
            File {
                data,
                modified: now,
            },
        );
    }

    /// Append to a file, creating it if needed (G-Cat and stdout streaming).
    pub fn append(&mut self, path: &str, data: FileData, now: SimTime) {
        match self.files.get_mut(path) {
            Some(f) => {
                f.data = f.data.concat(&data);
                f.modified = now;
            }
            None => self.write(path, data, now),
        }
    }

    /// Write `data` at `offset`, extending the file. Idempotent for
    /// re-sent chunks: if the region `[offset, offset+len)` is already
    /// covered, nothing changes; a partially covered chunk contributes
    /// only its uncovered tail. Writing past the current end (a gap)
    /// extends the file to `offset` first with zero-fill accounting.
    pub fn write_at(&mut self, path: &str, offset: u64, data: FileData, now: SimTime) {
        let current = self.size(path).unwrap_or(0);
        let end = offset + data.len();
        if end <= current {
            return; // fully covered: idempotent no-op
        }
        if offset > current {
            // Gap: extend with synthetic fill, then append the chunk.
            let gap = FileData::bulk(offset - current, 0);
            self.append(path, gap, now);
            self.append(path, data, now);
            return;
        }
        // Partial overlap: append only the uncovered tail.
        let skip = current - offset;
        let tail = data.slice(skip, u64::MAX);
        self.append(path, tail, now);
    }

    /// Look up a file.
    pub fn read(&self, path: &str) -> Option<&File> {
        self.files.get(path)
    }

    /// Size of a file, if present.
    pub fn size(&self, path: &str) -> Option<u64> {
        self.files.get(path).map(|f| f.data.len())
    }

    /// Delete a file; returns whether it existed.
    pub fn delete(&mut self, path: &str) -> bool {
        self.files.remove(path).is_some()
    }

    /// All paths under a prefix, sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.files
            .range(prefix.to_string()..)
            .take_while(|(p, _)| p.starts_with(prefix))
            .map(|(p, _)| p.clone())
            .collect()
    }

    /// Total bytes stored.
    pub fn total_bytes(&self) -> u64 {
        self.files.values().map(|f| f.data.len()).sum()
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True if no files are stored.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> SimTime {
        SimTime::ZERO
    }

    #[test]
    fn write_read_delete() {
        let mut fs = FileStore::new();
        fs.write("/bin/sim", FileData::inline("ELF..."), t0());
        assert_eq!(fs.size("/bin/sim"), Some(6));
        assert!(fs.delete("/bin/sim"));
        assert!(!fs.delete("/bin/sim"));
        assert!(fs.read("/bin/sim").is_none());
    }

    #[test]
    fn append_grows_inline_files() {
        let mut fs = FileStore::new();
        fs.append("/out", FileData::inline("hello "), t0());
        fs.append("/out", FileData::inline("grid"), t0());
        let f = fs.read("/out").unwrap();
        assert_eq!(f.data, FileData::inline("hello grid"));
    }

    #[test]
    fn append_bulk_tracks_length() {
        let mut fs = FileStore::new();
        fs.append("/events", FileData::bulk(1_000_000, 1), t0());
        fs.append("/events", FileData::bulk(2_000_000, 2), t0());
        assert_eq!(fs.size("/events"), Some(3_000_000));
    }

    #[test]
    fn slice_semantics() {
        let d = FileData::inline("0123456789");
        assert_eq!(d.slice(2, 3), FileData::inline("234"));
        assert_eq!(d.slice(8, 10), FileData::inline("89"));
        assert_eq!(d.slice(20, 5), FileData::inline(""));
        let b = FileData::bulk(100, 7);
        assert_eq!(b.slice(90, 50).len(), 10);
        assert_eq!(b.slice(0, 100).len(), 100);
    }

    #[test]
    fn checksums_differ_on_content() {
        assert_ne!(
            FileData::inline("a").checksum(),
            FileData::inline("b").checksum()
        );
        assert_ne!(
            FileData::bulk(10, 1).checksum(),
            FileData::bulk(10, 2).checksum()
        );
    }

    #[test]
    fn list_by_prefix() {
        let mut fs = FileStore::new();
        fs.write("/data/e1", FileData::bulk(1, 0), t0());
        fs.write("/data/e2", FileData::bulk(1, 0), t0());
        fs.write("/other", FileData::bulk(1, 0), t0());
        assert_eq!(fs.list("/data/"), vec!["/data/e1", "/data/e2"]);
        assert_eq!(fs.total_bytes(), 3);
        assert_eq!(fs.len(), 3);
    }
}
