//! G-Cat (paper §6, GridGaussian): stream a growing output file to mass
//! storage as partial chunks.
//!
//! "G-Cat monitors the output file and sends updates to MSS as partial
//! file chunks. G-Cat hides network performance variations from Gaussian
//! by using local scratch storage as a buffer for Gaussian's output,
//! rather than sending the output directly over the network."
//!
//! The component polls a local scratch [`crate::FileStore`]-backed file (fed by
//! the running job through [`GCatFeed`] messages), and whenever new bytes
//! appear, appends them to the remote MSS file over the GASS protocol. One
//! chunk is in flight at a time, preserving order; back-pressure is
//! absorbed by the scratch buffer, exactly the paper's design.

use crate::file::FileData;
use crate::proto::{GassReply, GassRequest};
use gridsim::prelude::*;
use gridsim::AnyMsg;
use gsi::ProxyCredential;

/// Message from the producing job: more output bytes landed in scratch.
#[derive(Debug)]
pub struct GCatFeed(pub FileData);

/// Message a viewer can send to ask how many bytes are visible at MSS.
#[derive(Debug)]
pub struct GCatQuery {
    /// Correlation id echoed in [`GCatVisible`].
    pub request_id: u64,
}

/// Reply to [`GCatQuery`].
#[derive(Debug)]
pub struct GCatVisible {
    /// Correlation id.
    pub request_id: u64,
    /// Bytes of output durably stored (and viewable) at MSS.
    pub bytes: u64,
}

/// The G-Cat streaming agent.
pub struct GCat {
    /// MSS server address.
    mss: Addr,
    /// Remote path at MSS.
    remote_path: String,
    /// Credential used for MSS appends.
    credential: ProxyCredential,
    /// Poll interval for the scratch file.
    poll: Duration,
    /// Scratch buffer: bytes produced but not yet shipped.
    buffered: Vec<FileData>,
    buffered_bytes: u64,
    /// Bytes acknowledged by MSS.
    shipped: u64,
    /// Chunk currently in flight, kept for retransmission.
    in_flight: Option<FileData>,
    /// When to give up waiting for the in-flight ack and resend.
    in_flight_deadline: SimTime,
    next_request: u64,
}

const POLL_TAG: u64 = 1;
/// Assumed floor bandwidth for sizing the retransmit deadline.
const RETRY_FLOOR_BW: u64 = 50_000;

impl GCat {
    /// Create a streamer shipping to `remote_path` on `mss`.
    pub fn new(mss: Addr, remote_path: &str, credential: ProxyCredential, poll: Duration) -> GCat {
        GCat {
            mss,
            remote_path: remote_path.to_string(),
            credential,
            poll,
            buffered: Vec::new(),
            buffered_bytes: 0,
            shipped: 0,
            in_flight: None,
            in_flight_deadline: SimTime::ZERO,
            next_request: 0,
        }
    }

    fn ship_next(&mut self, ctx: &mut Ctx<'_>) {
        if self.in_flight.is_some() || self.buffered.is_empty() {
            return;
        }
        // Coalesce everything buffered into one chunk (the paper's partial
        // file chunk).
        let mut chunk = self.buffered.remove(0);
        for more in self.buffered.drain(..) {
            chunk = chunk.concat(&more);
        }
        self.buffered_bytes = 0;
        ctx.metrics().incr("gcat.chunks", 1);
        ctx.trace(
            "gcat.ship",
            format!("{} bytes -> {}", chunk.len(), self.remote_path),
        );
        self.in_flight = Some(chunk);
        self.transmit(ctx);
    }

    /// (Re)send the in-flight chunk as an idempotent positioned write.
    fn transmit(&mut self, ctx: &mut Ctx<'_>) {
        let Some(chunk) = self.in_flight.clone() else {
            return;
        };
        let bytes = chunk.len();
        self.next_request += 1;
        self.in_flight_deadline = ctx.now() + Duration::from_secs(30 + bytes / RETRY_FLOOR_BW);
        ctx.send_bulk(
            self.mss,
            bytes,
            GassRequest::WriteAt {
                request_id: self.next_request,
                credential: self.credential.clone(),
                path: self.remote_path.clone(),
                offset: self.shipped,
                data: chunk,
            },
        );
    }

    fn persist(&self, ctx: &mut Ctx<'_>) {
        let node = ctx.node();
        ctx.store().put(node, "gcat/shipped", &self.shipped);
        ctx.store().put(node, "gcat/buffered", &self.buffered_bytes);
    }
}

impl Component for GCat {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.poll, POLL_TAG);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, tag: u64) {
        if tag == POLL_TAG {
            if self.in_flight.is_some() && ctx.now() >= self.in_flight_deadline {
                // The write or its ack was lost: resend (WriteAt at a fixed
                // offset is idempotent, so duplicates are harmless).
                ctx.metrics().incr("gcat.retries", 1);
                self.transmit(ctx);
            }
            self.ship_next(ctx);
            ctx.set_timer(self.poll, POLL_TAG);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Addr, msg: AnyMsg) {
        if let Some(feed) = msg.downcast_ref::<GCatFeed>() {
            // New output landed in local scratch: cheap, local, lossless.
            self.buffered_bytes += feed.0.len();
            ctx.metrics().incr("gcat.fed_bytes", feed.0.len());
            self.buffered.push(feed.0.clone());
            self.persist(ctx);
            return;
        }
        if let Some(q) = msg.downcast_ref::<GCatQuery>() {
            ctx.send(
                from,
                GCatVisible {
                    request_id: q.request_id,
                    bytes: self.shipped,
                },
            );
            return;
        }
        if let Some(aborted) = msg.downcast_ref::<BulkAborted>() {
            // Flow mode: our in-flight chunk was cut mid-transfer by a
            // partition or link failure. Resend immediately — WriteAt at a
            // fixed offset is idempotent — and keep the deadline timer as
            // the backstop if the route is still dead.
            if self.in_flight.is_some() {
                ctx.metrics().incr("gcat.retries", 1);
                let bytes = aborted.bytes;
                ctx.trace_with("gcat.retry", || {
                    format!("aborted in flight ({bytes} bytes)")
                });
                self.transmit(ctx);
            }
            return;
        }
        if let Ok(reply) = msg.downcast::<GassReply>() {
            match *reply {
                GassReply::Ok { new_size, .. } => {
                    // Only GCat writes this file, so any acknowledgement
                    // showing the chunk's end is a confirmation (duplicate
                    // acks from retransmissions are harmless).
                    if let Some(chunk) = &self.in_flight {
                        if new_size >= self.shipped + chunk.len() {
                            let bytes = chunk.len();
                            self.in_flight = None;
                            self.shipped += bytes;
                            ctx.metrics().incr("gcat.shipped_bytes", bytes);
                            self.persist(ctx);
                            // Immediately ship anything that queued meanwhile.
                            self.ship_next(ctx);
                        }
                    }
                }
                GassReply::Failed { ref error, .. } => {
                    // MSS refusal (e.g. credential hiccup): keep the chunk
                    // in flight and let the deadline-driven retry handle it.
                    ctx.metrics().incr("gcat.retries", 1);
                    ctx.trace("gcat.retry", error.to_string());
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::GassServer;
    use gridsim::{Config, World};
    use gsi::CertificateAuthority;

    /// A fake Gaussian job that produces output in bursts.
    struct Producer {
        gcat: Addr,
        bursts: Vec<(Duration, u64)>,
    }

    impl Component for Producer {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for (i, (after, _)) in self.bursts.iter().enumerate() {
                ctx.set_timer(*after, i as u64);
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, tag: u64) {
            let (_, bytes) = self.bursts[tag as usize];
            ctx.send_local(self.gcat, GCatFeed(FileData::bulk(bytes, tag)));
        }
    }

    #[test]
    fn chunks_reach_mss_in_order_and_fully() {
        let mut ca = CertificateAuthority::new("/CN=CA", 1);
        let id = ca.issue_identity("/CN=jane", Duration::from_days(30));
        let cred = id.new_proxy(SimTime::ZERO, Duration::from_hours(48));
        let mut w = World::new(Config::default().seed(3));
        let n_mss = w.add_node("mss.ncsa.edu");
        let n_exec = w.add_node("exec");
        let mss = w.add_component(n_mss, "mss", GassServer::new(ca.trust_root()));
        let gcat = w.add_component(
            n_exec,
            "gcat",
            GCat::new(mss, "/mss/jane/g98.out", cred, Duration::from_secs(30)),
        );
        w.add_component(
            n_exec,
            "gaussian",
            Producer {
                gcat,
                bursts: vec![
                    (Duration::from_mins(1), 500_000),
                    (Duration::from_mins(2), 1_500_000),
                    (Duration::from_mins(3), 250_000),
                ],
            },
        );
        w.run_until(SimTime::ZERO + Duration::from_mins(20));
        // Everything shipped, nothing stuck in scratch.
        assert_eq!(
            w.store().get::<u64>(n_exec, "gcat/shipped"),
            Some(2_250_000)
        );
        assert_eq!(w.store().get::<u64>(n_exec, "gcat/buffered"), Some(0));
        // MSS sees the full file (mirrored size key from the server).
        assert_eq!(
            w.store().get::<u64>(n_mss, "gass/size/mss/jane/g98.out"),
            Some(2_250_000)
        );
    }

    #[test]
    fn output_visible_mid_run() {
        // The whole point of G-Cat: users can view output *while the job
        // runs*. Verify bytes are visible at MSS before production ends.
        let mut ca = CertificateAuthority::new("/CN=CA", 1);
        let id = ca.issue_identity("/CN=jane", Duration::from_days(30));
        let cred = id.new_proxy(SimTime::ZERO, Duration::from_hours(48));
        let mut w = World::new(Config::default().seed(3));
        let n_mss = w.add_node("mss");
        let n_exec = w.add_node("exec");
        let mss = w.add_component(n_mss, "mss", GassServer::new(ca.trust_root()));
        let gcat = w.add_component(
            n_exec,
            "gcat",
            GCat::new(mss, "/out", cred, Duration::from_secs(10)),
        );
        w.add_component(
            n_exec,
            "job",
            Producer {
                gcat,
                bursts: (0..60).map(|i| (Duration::from_mins(i), 100_000)).collect(),
            },
        );
        // Stop mid-run (job produces until t=59 min).
        w.run_until(SimTime::ZERO + Duration::from_mins(30));
        let visible = w.store().get::<u64>(n_mss, "gass/size/out").unwrap_or(0);
        assert!(
            visible >= 2_000_000,
            "only {visible} bytes visible at MSS mid-run"
        );
        assert!(visible <= 3_100_000);
    }
}
