//! The GASS wire protocol: GSI-authenticated GET/PUT/APPEND with ranges.

use crate::file::FileData;
use gsi::ProxyCredential;
use std::fmt;

/// Why a transfer failed.
#[derive(Debug, Clone, PartialEq)]
pub enum TransferError {
    /// The requested path does not exist on the server.
    NotFound(String),
    /// GSI verification of the supplied credential failed.
    AuthFailed(String),
    /// The server refused the operation (policy).
    Denied(String),
    /// The transfer was cut mid-flight (network partition, link failure
    /// or peer crash). Unlike the other variants this is *retryable*: the
    /// file may well exist and the credential be fine — the route died.
    Aborted(String),
}

impl TransferError {
    /// True if the operation may succeed when simply retried later
    /// (transient transport failure, not a protocol-level rejection).
    pub fn is_retryable(&self) -> bool {
        matches!(self, TransferError::Aborted(_))
    }
}

impl fmt::Display for TransferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransferError::NotFound(p) => write!(f, "no such file: {p}"),
            TransferError::AuthFailed(e) => write!(f, "authentication failed: {e}"),
            TransferError::Denied(e) => write!(f, "denied: {e}"),
            TransferError::Aborted(e) => write!(f, "transfer aborted: {e}"),
        }
    }
}

impl std::error::Error for TransferError {}

/// Client → server requests. Every request carries the requester's proxy
/// credential ("As usual, GSI mechanisms are used for authentication",
/// §3.4) and a correlation id.
#[derive(Debug)]
pub enum GassRequest {
    /// Fetch `[offset, offset+limit)` of a file. `limit == u64::MAX` means
    /// "to the end". Crash recovery uses a nonzero `offset` to resume
    /// output streaming where it left off (§3.2).
    Get {
        /// Correlation id.
        request_id: u64,
        /// Requester credential.
        credential: ProxyCredential,
        /// Path on the server.
        path: String,
        /// Starting byte.
        offset: u64,
        /// Maximum bytes to return.
        limit: u64,
    },
    /// Create/replace a file.
    Put {
        /// Correlation id.
        request_id: u64,
        /// Requester credential.
        credential: ProxyCredential,
        /// Path on the server.
        path: String,
        /// Contents.
        data: FileData,
    },
    /// Append to a file (stdout/stderr streaming, G-Cat chunks).
    Append {
        /// Correlation id.
        request_id: u64,
        /// Requester credential.
        credential: ProxyCredential,
        /// Path on the server.
        path: String,
        /// Chunk to append.
        data: FileData,
    },
    /// Write `data` at byte `offset`, extending the file as needed.
    /// Idempotent for identical chunks: bytes already present at the
    /// offset are not duplicated, which makes retransmission after a lost
    /// acknowledgement safe (the JobManager's stdout staging and G-Cat
    /// both rely on this).
    WriteAt {
        /// Correlation id.
        request_id: u64,
        /// Requester credential.
        credential: ProxyCredential,
        /// Path on the server.
        path: String,
        /// Byte offset to place the chunk at.
        offset: u64,
        /// Chunk contents.
        data: FileData,
    },
    /// Query a file's current size (G-Cat viewers poll with this).
    Stat {
        /// Correlation id.
        request_id: u64,
        /// Requester credential.
        credential: ProxyCredential,
        /// Path on the server.
        path: String,
    },
    /// Delete a file (cache cleanup: the submit agent reclaims staged
    /// output it has finished with, like `globus-gass-cache -cleanup`).
    /// Deleting a missing file is acknowledged too — cleanup is
    /// idempotent, so a retransmitted delete is harmless.
    Delete {
        /// Correlation id.
        request_id: u64,
        /// Requester credential.
        credential: ProxyCredential,
        /// Path on the server.
        path: String,
    },
}

impl GassRequest {
    /// The correlation id of any request.
    pub fn request_id(&self) -> u64 {
        match self {
            GassRequest::Get { request_id, .. }
            | GassRequest::Put { request_id, .. }
            | GassRequest::Append { request_id, .. }
            | GassRequest::WriteAt { request_id, .. }
            | GassRequest::Stat { request_id, .. }
            | GassRequest::Delete { request_id, .. } => *request_id,
        }
    }
}

/// Server → client replies.
#[derive(Debug)]
pub enum GassReply {
    /// GET data (arrives after the modelled transfer time).
    Data {
        /// Correlation id.
        request_id: u64,
        /// The requested bytes.
        data: FileData,
        /// Total size of the file on the server (for resume bookkeeping).
        total_size: u64,
    },
    /// PUT/APPEND acknowledged.
    Ok {
        /// Correlation id.
        request_id: u64,
        /// New size of the file.
        new_size: u64,
    },
    /// STAT result.
    Size {
        /// Correlation id.
        request_id: u64,
        /// Current size.
        size: u64,
    },
    /// Failure.
    Failed {
        /// Correlation id.
        request_id: u64,
        /// The error.
        error: TransferError,
    },
}

impl GassReply {
    /// The correlation id of any reply.
    pub fn request_id(&self) -> u64 {
        match self {
            GassReply::Data { request_id, .. }
            | GassReply::Ok { request_id, .. }
            | GassReply::Size { request_id, .. }
            | GassReply::Failed { request_id, .. } => *request_id,
        }
    }
}
