//! Recursive-descent parser for ClassAd expressions and ads.

use crate::ad::ClassAd;
use crate::expr::{BinOp, Expr, Scope, UnOp};
use crate::lexer::{lex, LexError, Token};
use crate::value::Value;
use std::fmt;

/// A parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            message: e.to_string(),
        }
    }
}

/// Parse a single expression (`TARGET.Memory >= 64 && Arch == "INTEL"`).
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    p.expect_end()?;
    Ok(e)
}

/// Parse a full ad (`[ a = 1; Requirements = ...; ]`).
pub fn parse_ad(src: &str) -> Result<ClassAd, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let ad = p.ad()?;
    p.expect_end()?;
    Ok(ad)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Token) -> Result<(), ParseError> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(ParseError {
                message: format!("expected {tok}, found {}", self.describe_here()),
            })
        }
    }

    fn expect_end(&self) -> Result<(), ParseError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(ParseError {
                message: format!("trailing input: {}", self.describe_here()),
            })
        }
    }

    fn describe_here(&self) -> String {
        match self.peek() {
            Some(t) => format!("{t}"),
            None => "end of input".to_string(),
        }
    }

    fn ad(&mut self) -> Result<ClassAd, ParseError> {
        self.expect(&Token::LBracket)?;
        let mut ad = ClassAd::new();
        loop {
            if self.eat(&Token::RBracket) {
                return Ok(ad);
            }
            let name = match self.next() {
                Some(Token::Ident(name)) => name,
                other => {
                    return Err(ParseError {
                        message: format!("expected attribute name, found {other:?}"),
                    })
                }
            };
            self.expect(&Token::Assign)?;
            let value = self.expr()?;
            ad.set_expr(&name, value);
            // `;` separates; trailing `;` before `]` is allowed.
            if !self.eat(&Token::Semi) {
                self.expect(&Token::RBracket)?;
                return Ok(ad);
            }
        }
    }

    /// expr := or_expr [ '?' expr ':' expr ]
    fn expr(&mut self) -> Result<Expr, ParseError> {
        let cond = self.binary(1)?;
        if self.eat(&Token::Question) {
            let a = self.expr()?;
            self.expect(&Token::Colon)?;
            let b = self.expr()?;
            Ok(Expr::Cond(Box::new(cond), Box::new(a), Box::new(b)))
        } else {
            Ok(cond)
        }
    }

    /// Precedence-climbing over binary operators.
    fn binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Or) => BinOp::Or,
                Some(Token::And) => BinOp::And,
                Some(Token::Eq) => BinOp::Eq,
                Some(Token::Ne) => BinOp::Ne,
                Some(Token::MetaEq) => BinOp::MetaEq,
                Some(Token::MetaNe) => BinOp::MetaNe,
                Some(Token::Lt) => BinOp::Lt,
                Some(Token::Le) => BinOp::Le,
                Some(Token::Gt) => BinOp::Gt,
                Some(Token::Ge) => BinOp::Ge,
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                Some(Token::Percent) => BinOp::Mod,
                _ => break,
            };
            let prec = op.precedence();
            if prec < min_prec {
                break;
            }
            self.pos += 1;
            // Left-associative: parse the rhs at prec+1.
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Token::Not) {
            return Ok(Expr::Unary(UnOp::Not, Box::new(self.unary()?)));
        }
        if self.eat(&Token::Minus) {
            // Fold negation of numeric literals so `-1` is a literal and the
            // printer/parser pair is a true round trip.
            return Ok(match self.unary()? {
                Expr::Lit(Value::Int(i)) => Expr::Lit(Value::Int(i.wrapping_neg())),
                Expr::Lit(Value::Real(r)) => Expr::Lit(Value::Real(-r)),
                other => Expr::Unary(UnOp::Neg, Box::new(other)),
            });
        }
        if self.eat(&Token::Plus) {
            return Ok(Expr::Unary(UnOp::Plus, Box::new(self.unary()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.next() {
            Some(Token::Int(i)) => Ok(Expr::Lit(Value::Int(i))),
            Some(Token::Real(r)) => Ok(Expr::Lit(Value::Real(r))),
            Some(Token::Str(s)) => Ok(Expr::Lit(Value::Str(s))),
            Some(Token::LParen) => {
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::LBrace) => {
                let mut items = Vec::new();
                if !self.eat(&Token::RBrace) {
                    loop {
                        items.push(self.expr()?);
                        if self.eat(&Token::RBrace) {
                            break;
                        }
                        self.expect(&Token::Comma)?;
                    }
                }
                Ok(Expr::List(items))
            }
            Some(Token::Ident(name)) => {
                let lower = name.to_ascii_lowercase();
                match lower.as_str() {
                    "true" => return Ok(Expr::Lit(Value::Bool(true))),
                    "false" => return Ok(Expr::Lit(Value::Bool(false))),
                    "undefined" => return Ok(Expr::Lit(Value::Undefined)),
                    "error" => return Ok(Expr::Lit(Value::Error)),
                    _ => {}
                }
                // Scope qualifier?
                if (lower == "my" || lower == "target") && self.eat(&Token::Dot) {
                    let attr = match self.next() {
                        Some(Token::Ident(a)) => a,
                        other => {
                            return Err(ParseError {
                                message: format!("expected attribute after scope, found {other:?}"),
                            })
                        }
                    };
                    let scope = if lower == "my" {
                        Scope::My
                    } else {
                        Scope::Target
                    };
                    return Ok(Expr::Attr(scope, attr));
                }
                // Function call?
                if self.eat(&Token::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&Token::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat(&Token::RParen) {
                                break;
                            }
                            self.expect(&Token::Comma)?;
                        }
                    }
                    return Ok(Expr::Call(name, args));
                }
                Ok(Expr::Attr(Scope::Unqualified, name))
            }
            other => Err(ParseError {
                message: format!("unexpected token {other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(src: &str) -> String {
        parse_expr(src).unwrap().to_string()
    }

    #[test]
    fn precedence() {
        assert_eq!(rt("1 + 2 * 3"), "1 + 2 * 3");
        assert_eq!(rt("(1 + 2) * 3"), "(1 + 2) * 3");
        assert_eq!(rt("a && b || c && d"), "a && b || c && d");
        assert_eq!(rt("a || b && c"), "a || b && c");
        assert_eq!(rt("1 < 2 == true"), "1 < 2 == TRUE");
    }

    #[test]
    fn left_associativity() {
        // 10 - 3 - 2 parses as (10-3)-2.
        let e = parse_expr("10 - 3 - 2").unwrap();
        assert_eq!(
            e,
            Expr::Binary(
                BinOp::Sub,
                Box::new(Expr::Binary(
                    BinOp::Sub,
                    Box::new(Expr::lit(10i64)),
                    Box::new(Expr::lit(3i64))
                )),
                Box::new(Expr::lit(2i64))
            )
        );
    }

    #[test]
    fn scopes() {
        assert_eq!(
            parse_expr("MY.ImageSize").unwrap(),
            Expr::Attr(Scope::My, "ImageSize".into())
        );
        assert_eq!(
            parse_expr("target.Memory").unwrap(),
            Expr::Attr(Scope::Target, "Memory".into())
        );
        // "my" alone is a plain attribute reference.
        assert_eq!(
            parse_expr("my").unwrap(),
            Expr::Attr(Scope::Unqualified, "my".into())
        );
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(parse_expr("TRUE").unwrap(), Expr::lit(true));
        assert_eq!(parse_expr("False").unwrap(), Expr::lit(false));
        assert_eq!(
            parse_expr("Undefined").unwrap(),
            Expr::Lit(Value::Undefined)
        );
        assert_eq!(parse_expr("ERROR").unwrap(), Expr::Lit(Value::Error));
    }

    #[test]
    fn conditional_and_calls() {
        assert_eq!(rt("a ? 1 : 2"), "a ? 1 : 2");
        assert_eq!(rt("f()"), "f()");
        assert_eq!(rt("strcat(\"a\", \"b\")"), "strcat(\"a\", \"b\")");
        // Nested conditional round-trips (parens in the middle arm are
        // redundant: `?:` binds the middle greedily).
        let e1 = parse_expr("a ? (b ? 1 : 2) : 3").unwrap();
        let e2 = parse_expr(&e1.to_string()).unwrap();
        assert_eq!(e1, e2);
    }

    #[test]
    fn lists() {
        assert_eq!(rt("{1, 2, 3}"), "{1, 2, 3}");
        assert_eq!(rt("{}"), "{}");
    }

    #[test]
    fn unary_ops() {
        assert_eq!(rt("!a"), "!a");
        assert_eq!(rt("-5"), "-5");
        assert_eq!(rt("!!a"), "!!a");
    }

    #[test]
    fn meta_operators() {
        assert_eq!(rt("x =?= UNDEFINED"), "x =?= UNDEFINED");
        assert_eq!(rt("x =!= 3"), "x =!= 3");
    }

    #[test]
    fn ad_parsing() {
        let ad = parse_ad("[ A = 1; B = \"x\"; Requirements = TARGET.Y > A ]").unwrap();
        assert_eq!(ad.len(), 3);
        assert!(
            ad.get("a").is_some(),
            "attribute lookup is case-insensitive"
        );
        assert!(ad.get("REQUIREMENTS").is_some());
    }

    #[test]
    fn ad_trailing_semicolon_and_empty() {
        assert_eq!(parse_ad("[ A = 1; ]").unwrap().len(), 1);
        assert_eq!(parse_ad("[]").unwrap().len(), 0);
    }

    #[test]
    fn errors() {
        assert!(parse_expr("1 +").is_err());
        assert!(parse_expr("(1").is_err());
        assert!(parse_expr("1 2").is_err());
        assert!(parse_ad("[ A = ]").is_err());
        assert!(parse_ad("[ A 1 ]").is_err());
        assert!(parse_expr("f(1,").is_err());
    }

    #[test]
    fn expr_round_trip_through_display() {
        for src in [
            "TARGET.Arch == \"INTEL\" && TARGET.OpSys == \"LINUX\"",
            "(a + b) * (c - d) % e",
            "x =?= UNDEFINED || y =!= ERROR",
            "f(a, g(b, c), {1, 2.5, \"s\"})",
            "!a && -b < +c",
            "cond ? val1 : val2 + 3",
        ] {
            let e1 = parse_expr(src).unwrap();
            let printed = e1.to_string();
            let e2 = parse_expr(&printed).unwrap();
            assert_eq!(e1, e2, "round trip failed for {src} -> {printed}");
        }
    }
}
