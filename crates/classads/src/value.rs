//! ClassAd values and the three-valued comparison semantics.

use std::fmt;

/// The result of evaluating a ClassAd expression.
///
/// `Undefined` arises from missing attributes; `Error` from type errors.
/// Both flow through most operators, with the exceptions spelled out in
/// [`crate::eval`].
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A missing attribute or an operation on one.
    Undefined,
    /// A type error or an operation on one.
    Error,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// Double-precision real.
    Real(f64),
    /// String.
    Str(String),
    /// List of values (classic ClassAds support `{ ... }` lists).
    List(Vec<Value>),
}

impl Value {
    /// True if `Undefined`.
    pub fn is_undefined(&self) -> bool {
        matches!(self, Value::Undefined)
    }

    /// True if `Error`.
    pub fn is_error(&self) -> bool {
        matches!(self, Value::Error)
    }

    /// True if either `Undefined` or `Error`.
    pub fn is_exceptional(&self) -> bool {
        self.is_undefined() || self.is_error()
    }

    /// Numeric view: integers and reals coerce to `f64`; booleans do *not*.
    pub fn as_number(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::Real(r) => Some(r),
            _ => None,
        }
    }

    /// Boolean view (no coercion).
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer view (reals are truncated if integral, otherwise `None`).
    pub fn as_int(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::Real(r) if r.fract() == 0.0 && r.is_finite() => Some(r as i64),
            _ => None,
        }
    }

    /// The ClassAd type name, used in diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Undefined => "undefined",
            Value::Error => "error",
            Value::Bool(_) => "boolean",
            Value::Int(_) => "integer",
            Value::Real(_) => "real",
            Value::Str(_) => "string",
            Value::List(_) => "list",
        }
    }

    /// ClassAd equality for the `==` operator family. Returns `None` when
    /// the comparison is a type error (mixed incomparable types).
    ///
    /// Numeric types compare by value across int/real; strings compare
    /// case-insensitively (classic ClassAd semantics — the paper-era
    /// matchmaker matched `"INTEL" == "intel"`).
    pub fn loose_eq(&self, other: &Value) -> Option<bool> {
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => Some(a == b),
            (Value::Str(a), Value::Str(b)) => Some(a.eq_ignore_ascii_case(b)),
            _ => match (self.as_number(), other.as_number()) {
                (Some(a), Some(b)) => Some(a == b),
                _ => None,
            },
        }
    }

    /// Identity comparison for `=?=` (is-identical-to): never errors, never
    /// undefined; exact type and case-sensitive string match, and
    /// `UNDEFINED =?= UNDEFINED` is true.
    pub fn strict_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Undefined, Value::Undefined) => true,
            (Value::Error, Value::Error) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Real(a), Value::Real(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::List(a), Value::List(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.strict_eq(y))
            }
            _ => false,
        }
    }

    /// Ordering for `<`, `<=`, `>`, `>=`. `None` when incomparable.
    /// Strings order case-insensitively, numbers numerically.
    pub fn loose_cmp(&self, other: &Value) -> Option<std::cmp::Ordering> {
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => {
                Some(a.to_ascii_lowercase().cmp(&b.to_ascii_lowercase()))
            }
            _ => match (self.as_number(), other.as_number()) {
                (Some(a), Some(b)) => a.partial_cmp(&b),
                _ => None,
            },
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Value {
        Value::Int(i as i64)
    }
}
impl From<u64> for Value {
    fn from(i: u64) -> Value {
        Value::Int(i as i64)
    }
}
impl From<u32> for Value {
    fn from(i: u32) -> Value {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(r: f64) -> Value {
        Value::Real(r)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Undefined => write!(f, "UNDEFINED"),
            Value::Error => write!(f, "ERROR"),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => {
                if r.fract() == 0.0 && r.is_finite() && r.abs() < 1e15 {
                    write!(f, "{r:.1}")
                } else {
                    write!(f, "{r}")
                }
            }
            Value::Str(s) => {
                write!(f, "\"")?;
                for c in s.chars() {
                    match c {
                        '"' => write!(f, "\\\"")?,
                        '\\' => write!(f, "\\\\")?,
                        '\n' => write!(f, "\\n")?,
                        '\t' => write!(f, "\\t")?,
                        c => write!(f, "{c}")?,
                    }
                }
                write!(f, "\"")
            }
            Value::List(items) => {
                write!(f, "{{")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn loose_eq_numbers_cross_type() {
        assert_eq!(Value::Int(3).loose_eq(&Value::Real(3.0)), Some(true));
        assert_eq!(Value::Int(3).loose_eq(&Value::Real(3.5)), Some(false));
    }

    #[test]
    fn loose_eq_strings_case_insensitive() {
        assert_eq!(
            Value::from("INTEL").loose_eq(&Value::from("intel")),
            Some(true)
        );
        assert_eq!(Value::from("a").loose_eq(&Value::from("b")), Some(false));
    }

    #[test]
    fn loose_eq_mixed_types_is_error() {
        assert_eq!(Value::from("3").loose_eq(&Value::Int(3)), None);
        assert_eq!(Value::Bool(true).loose_eq(&Value::Int(1)), None);
    }

    #[test]
    fn strict_eq_identity() {
        assert!(Value::Undefined.strict_eq(&Value::Undefined));
        assert!(!Value::Undefined.strict_eq(&Value::Int(0)));
        assert!(!Value::from("A").strict_eq(&Value::from("a")));
        assert!(Value::Int(1).strict_eq(&Value::Int(1)));
        assert!(!Value::Int(1).strict_eq(&Value::Real(1.0)));
    }

    #[test]
    fn ordering() {
        assert_eq!(
            Value::Int(1).loose_cmp(&Value::Real(2.0)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::from("abc").loose_cmp(&Value::from("ABD")),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Bool(true).loose_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn display_round_trippable_forms() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Real(2.0).to_string(), "2.0");
        assert_eq!(Value::Bool(true).to_string(), "TRUE");
        assert_eq!(Value::from("a\"b").to_string(), "\"a\\\"b\"");
        assert_eq!(
            Value::List(vec![Value::Int(1), Value::Int(2)]).to_string(),
            "{1, 2}"
        );
    }

    #[test]
    fn as_int_truncates_integral_reals_only() {
        assert_eq!(Value::Real(4.0).as_int(), Some(4));
        assert_eq!(Value::Real(4.5).as_int(), None);
        assert_eq!(Value::Int(-2).as_int(), Some(-2));
    }
}
