//! A conservative pre-filter for matchmaking: cheaply reject candidate ads
//! that a `Requirements` expression can never accept.
//!
//! The negotiator matches every idle job against every unclaimed machine,
//! so the inner loop is `jobs × machines` full evaluations. Most real
//! requirements are a conjunction of simple comparisons against candidate
//! attributes (`TARGET.Arch == "INTEL" && TARGET.Memory >= 64`), and most
//! candidate attributes are literals. This module extracts those comparisons
//! once per job and tests them against a pre-built literal-attribute index
//! per machine — no expression-tree walk, no scope-chain lookups.
//!
//! # Soundness
//!
//! A match requires `Requirements` to evaluate to exactly `Bool(true)`.
//! Under the three-valued `&&` (see [`crate::eval`]), a conjunction is
//! `true` iff *every* top-level conjunct is `true` — `UNDEFINED` and
//! `ERROR` leaves poison the result even when another leaf is `false`.
//! So if any one extracted conjunct provably evaluates to something other
//! than `true`, the whole expression cannot accept the candidate and the
//! pair can be skipped without evaluating anything else.
//!
//! The extractor only keeps conjuncts whose comparison the evaluator would
//! resolve entirely from the candidate ad:
//!
//! * the attribute side must be `TARGET.`-scoped, or unqualified *and*
//!   absent from the owning ad (unqualified lookup tries `MY` first);
//! * the other side must be a literal.
//!
//! [`RequirementsPrefilter::rejects`] then mirrors the evaluator exactly:
//! missing attribute ⇒ `UNDEFINED` conjunct ⇒ reject; `ERROR`/`UNDEFINED`
//! operands ⇒ reject; otherwise the same `loose_eq`/`loose_cmp` the
//! evaluator uses, in the same operand order. Attributes bound to
//! non-literal expressions make the test inconclusive and are skipped, so
//! the filter only ever rejects pairs the full evaluation would reject.

use crate::ad::ClassAd;
use crate::expr::{BinOp, Expr, Scope};
use crate::value::Value;
use std::cmp::Ordering;
use std::collections::HashMap;

/// One extracted conjunct: `attr op literal` (or reversed).
#[derive(Clone, Debug)]
struct Test {
    /// Candidate attribute name, lowercased for index lookup.
    attr: String,
    op: BinOp,
    lit: Value,
    /// Whether the attribute was the left operand in the source expression;
    /// preserved so the comparison runs with the evaluator's operand order.
    attr_on_left: bool,
}

/// Literal attributes of a candidate ad, keyed by lowercase name.
///
/// `Some(value)` for attributes bound to literals, `None` for attributes
/// bound to computed expressions (those make prefilter tests inconclusive).
pub struct LiteralAttrs(HashMap<String, Option<Value>>);

impl LiteralAttrs {
    /// Build the index for a candidate ad. O(attributes), done once per
    /// machine per negotiation cycle rather than once per (job, machine).
    pub fn of(ad: &ClassAd) -> LiteralAttrs {
        let mut map = HashMap::with_capacity(ad.len());
        for (name, expr) in ad.iter() {
            let lit = match expr {
                Expr::Lit(v) => Some(v.clone()),
                _ => None,
            };
            map.insert(name.to_ascii_lowercase(), lit);
        }
        LiteralAttrs(map)
    }
}

/// The compiled pre-filter for one ad's `Requirements`.
pub struct RequirementsPrefilter {
    tests: Vec<Test>,
}

impl RequirementsPrefilter {
    /// Extract candidate-only comparisons from `requirements` (as owned by
    /// `owner`, whose attributes shadow unqualified references). A missing
    /// or unanalyzable expression yields an empty filter that rejects
    /// nothing.
    pub fn for_requirements(requirements: Option<&Expr>, owner: &ClassAd) -> RequirementsPrefilter {
        let mut tests = Vec::new();
        if let Some(req) = requirements {
            collect_conjuncts(req, owner, &mut tests);
        }
        RequirementsPrefilter { tests }
    }

    /// Convenience: compile from the ad's own `Requirements` attribute.
    pub fn for_ad(owner: &ClassAd) -> RequirementsPrefilter {
        RequirementsPrefilter::for_requirements(owner.get("Requirements"), owner)
    }

    /// True if no conjuncts were extractable (the filter is a no-op).
    pub fn is_empty(&self) -> bool {
        self.tests.is_empty()
    }

    /// Can this candidate be skipped? `true` means the full evaluation is
    /// guaranteed not to yield `Bool(true)`; `false` decides nothing.
    pub fn rejects(&self, candidate: &LiteralAttrs) -> bool {
        self.tests.iter().any(|t| match candidate.0.get(&t.attr) {
            // Absent attribute: the conjunct evaluates to UNDEFINED,
            // which can never be absorbed back to `true` by `&&`.
            None => true,
            // Bound to a computed expression: inconclusive, keep the pair.
            Some(None) => false,
            Some(Some(v)) => !test_definitely_true(t, v),
        })
    }
}

/// Walk the top-level `&&` spine, extracting analyzable comparisons.
fn collect_conjuncts(expr: &Expr, owner: &ClassAd, out: &mut Vec<Test>) {
    match expr {
        Expr::Binary(BinOp::And, a, b) => {
            collect_conjuncts(a, owner, out);
            collect_conjuncts(b, owner, out);
        }
        Expr::Binary(op, a, b) if is_comparison(*op) => {
            let test = match (a.as_ref(), b.as_ref()) {
                (Expr::Attr(scope, name), Expr::Lit(v))
                    if is_candidate_attr(*scope, name, owner) =>
                {
                    Some(Test {
                        attr: name.to_ascii_lowercase(),
                        op: *op,
                        lit: v.clone(),
                        attr_on_left: true,
                    })
                }
                (Expr::Lit(v), Expr::Attr(scope, name))
                    if is_candidate_attr(*scope, name, owner) =>
                {
                    Some(Test {
                        attr: name.to_ascii_lowercase(),
                        op: *op,
                        lit: v.clone(),
                        attr_on_left: false,
                    })
                }
                _ => None,
            };
            out.extend(test);
        }
        _ => {}
    }
}

fn is_comparison(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
    )
}

/// Would the evaluator resolve this attribute reference in the *candidate*
/// (TARGET) ad? Unqualified names resolve in the owning ad first, so they
/// only reach the candidate when the owner lacks them.
fn is_candidate_attr(scope: Scope, name: &str, owner: &ClassAd) -> bool {
    match scope {
        Scope::Target => true,
        Scope::Unqualified => owner.get(name).is_none(),
        Scope::My => false,
    }
}

/// Does this conjunct provably evaluate to `Bool(true)` for a candidate
/// whose attribute is the literal `attr_val`? Mirrors
/// [`crate::eval::EvalCtx::eval`] on `Binary(op, ..)`: exceptional operands
/// propagate before the loose comparison runs, and `None` from the loose
/// comparison means `ERROR`. Anything other than a definite `true` lets
/// [`RequirementsPrefilter::rejects`] skip the pair.
fn test_definitely_true(t: &Test, attr_val: &Value) -> bool {
    if attr_val.is_error() || attr_val.is_undefined() || t.lit.is_error() || t.lit.is_undefined() {
        return false;
    }
    let (l, r) = if t.attr_on_left {
        (attr_val, &t.lit)
    } else {
        (&t.lit, attr_val)
    };
    match t.op {
        BinOp::Eq => l.loose_eq(r) == Some(true),
        BinOp::Ne => l.loose_eq(r) == Some(false),
        BinOp::Lt => l.loose_cmp(r) == Some(Ordering::Less),
        BinOp::Le => matches!(l.loose_cmp(r), Some(Ordering::Less | Ordering::Equal)),
        BinOp::Gt => l.loose_cmp(r) == Some(Ordering::Greater),
        BinOp::Ge => matches!(l.loose_cmp(r), Some(Ordering::Greater | Ordering::Equal)),
        _ => unreachable!("only comparison ops are extracted"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::half_match;

    fn job(requirements: &str) -> ClassAd {
        ClassAd::new()
            .with("ImageSize", 32i64)
            .with_parsed("Requirements", requirements)
    }

    fn check_sound(j: &ClassAd, machine: &ClassAd) {
        let pf = RequirementsPrefilter::for_ad(j);
        let lits = LiteralAttrs::of(machine);
        if pf.rejects(&lits) {
            assert!(
                !half_match(j, machine),
                "prefilter rejected a pair the evaluator accepts:\n{j}\nvs\n{machine}"
            );
        }
    }

    #[test]
    fn rejects_wrong_literal_and_keeps_right_one() {
        let j = job("TARGET.Arch == \"INTEL\" && TARGET.Memory >= 64");
        let good = ClassAd::new().with("Arch", "INTEL").with("Memory", 128i64);
        let wrong_arch = ClassAd::new().with("Arch", "SPARC").with("Memory", 128i64);
        let small = ClassAd::new().with("Arch", "INTEL").with("Memory", 16i64);
        let pf = RequirementsPrefilter::for_ad(&j);
        assert!(!pf.rejects(&LiteralAttrs::of(&good)));
        assert!(pf.rejects(&LiteralAttrs::of(&wrong_arch)));
        assert!(pf.rejects(&LiteralAttrs::of(&small)));
        for m in [&good, &wrong_arch, &small] {
            check_sound(&j, m);
        }
    }

    #[test]
    fn missing_attribute_rejects() {
        // UNDEFINED conjuncts can never become true, even when another
        // conjunct would be false.
        let j = job("TARGET.Arch == \"INTEL\"");
        let bare = ClassAd::new().with("Memory", 128i64);
        let pf = RequirementsPrefilter::for_ad(&j);
        assert!(pf.rejects(&LiteralAttrs::of(&bare)));
        check_sound(&j, &bare);
    }

    #[test]
    fn computed_attribute_is_inconclusive() {
        let j = job("TARGET.Memory >= 64");
        let computed = ClassAd::new()
            .with("Base", 32i64)
            .with_parsed("Memory", "Base * 4");
        let pf = RequirementsPrefilter::for_ad(&j);
        assert!(!pf.rejects(&LiteralAttrs::of(&computed)));
        // The evaluator does accept it: 32 * 4 = 128 >= 64.
        assert!(half_match(&j, &computed));
    }

    #[test]
    fn my_and_shadowed_references_are_not_extracted() {
        // MY.-scoped and owner-shadowed unqualified names never describe the
        // candidate, so they must not produce candidate tests.
        let j = ClassAd::new()
            .with("Memory", 4i64)
            .with_parsed("Requirements", "MY.ImageSize < 64 && Memory > 1000");
        let pf = RequirementsPrefilter::for_ad(&j);
        assert!(pf.is_empty());
        // Unqualified name *absent* from the owner does get extracted.
        let k = ClassAd::new().with_parsed("Requirements", "Memory > 1000");
        let pf = RequirementsPrefilter::for_ad(&k);
        assert!(!pf.is_empty());
        let small = ClassAd::new().with("Memory", 128i64);
        assert!(pf.rejects(&LiteralAttrs::of(&small)));
        check_sound(&k, &small);
    }

    #[test]
    fn reversed_operand_order_is_preserved() {
        let j = job("64 <= TARGET.Memory");
        let pf = RequirementsPrefilter::for_ad(&j);
        let big = ClassAd::new().with("Memory", 128i64);
        let small = ClassAd::new().with("Memory", 16i64);
        assert!(!pf.rejects(&LiteralAttrs::of(&big)));
        assert!(pf.rejects(&LiteralAttrs::of(&small)));
        check_sound(&j, &small);
    }

    #[test]
    fn non_conjunctive_requirements_reject_nothing() {
        // || at the top level means no conjunct is individually necessary.
        let j = job("TARGET.Arch == \"INTEL\" || TARGET.Arch == \"SPARC\"");
        let pf = RequirementsPrefilter::for_ad(&j);
        assert!(pf.is_empty());
        let sparc = ClassAd::new().with("Arch", "SPARC");
        assert!(!pf.rejects(&LiteralAttrs::of(&sparc)));
        assert!(half_match(&j, &sparc));
    }

    #[test]
    fn type_mismatch_comparison_rejects_like_the_evaluator() {
        // 1 == "x" is ERROR in the evaluator; the conjunct can't be true.
        let j = job("TARGET.Memory == \"lots\"");
        let m = ClassAd::new().with("Memory", 128i64);
        let pf = RequirementsPrefilter::for_ad(&j);
        assert!(pf.rejects(&LiteralAttrs::of(&m)));
        check_sound(&j, &m);
    }

    #[test]
    fn randomized_agreement_with_full_evaluation() {
        // Drive the filter across a grid of requirements × machines and
        // assert the soundness contract everywhere: rejects ⇒ no match.
        let mut rng = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let reqs = [
            "TARGET.Memory >= 64",
            "TARGET.Memory < 64 && TARGET.Arch == \"INTEL\"",
            "TARGET.Arch != \"SPARC\" && TARGET.Mips > 100",
            "Memory >= ImageSize && TARGET.Arch == \"INTEL\"",
            "TARGET.Memory >= MY.ImageSize",
            "32 < TARGET.Memory && TARGET.HasGass == true",
        ];
        let arches = ["INTEL", "SPARC", "ALPHA"];
        for req in reqs {
            let j = job(req);
            for _ in 0..50 {
                let mut m = ClassAd::new();
                if next() % 4 != 0 {
                    m.set("Memory", (next() % 256) as i64);
                }
                if next() % 4 != 0 {
                    m.set("Arch", arches[(next() % 3) as usize]);
                }
                if next() % 2 == 0 {
                    m.set("Mips", (next() % 500) as i64);
                }
                if next() % 3 == 0 {
                    m.set("HasGass", next() % 2 == 0);
                }
                check_sound(&j, &m);
            }
        }
    }
}
