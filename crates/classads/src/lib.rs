#![warn(missing_docs)]
//! `classads` — the Condor ClassAd language.
//!
//! Condor (and therefore Condor-G's GlideIn path and its MDS-based resource
//! broker) describes jobs and machines as *classified advertisements*:
//! attribute → expression maps evaluated under a two-ad context where `MY.`
//! refers to the evaluating ad and `TARGET.` to the candidate match. Two ads
//! match when each one's `Requirements` expression evaluates to `true`
//! against the other (Raman, Livny & Solomon's *Matchmaking* framework,
//! cited as \[25\] in the paper); `Rank` orders the matches.
//!
//! This crate implements the language from scratch:
//!
//! * a lexer and recursive-descent parser for the classic ClassAd syntax
//!   (`[ a = 1; Requirements = TARGET.Memory > 64; ... ]`),
//! * a three-valued evaluator (`UNDEFINED` / `ERROR` propagate the way the
//!   Condor semantics require, including the asymmetric `&&` / `||` rules
//!   and the meta-comparison operators `=?=` / `=!=`),
//! * a library of the builtin functions matchmaking policies actually use,
//!   and
//! * the symmetric match + rank entry points used by the `condor` and
//!   `condor-g` crates.
//!
//! # Example
//!
//! ```
//! use classads::{ClassAd, symmetric_match, rank};
//!
//! let job: ClassAd = "[
//!     Cmd = \"sim.exe\";
//!     ImageSize = 48;
//!     Requirements = TARGET.Arch == \"INTEL\" && TARGET.Memory >= MY.ImageSize;
//!     Rank = TARGET.Mips;
//! ]".parse().unwrap();
//!
//! let machine: ClassAd = "[
//!     Arch = \"intel\";
//!     Memory = 128;
//!     Mips = 440;
//!     Requirements = TARGET.ImageSize < MY.Memory;
//! ]".parse().unwrap();
//!
//! // String == is case-insensitive, so "intel" matches "INTEL".
//! assert!(symmetric_match(&job, &machine));
//! assert_eq!(rank(&job, &machine), 440.0);
//! ```

pub mod ad;
pub mod eval;
pub mod expr;
pub mod funcs;
pub mod lexer;
pub mod parser;
pub mod prefilter;
pub mod value;

pub use ad::ClassAd;
pub use eval::{half_match_expr, rank, rank_expr, symmetric_match, EvalCtx};
pub use expr::{BinOp, Expr, UnOp};
pub use parser::{parse_ad, parse_expr, ParseError};
pub use prefilter::{LiteralAttrs, RequirementsPrefilter};
pub use value::Value;
