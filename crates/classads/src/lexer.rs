//! Tokenizer for the classic ClassAd syntax.

use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// String literal (already unescaped).
    Str(String),
    /// Identifier or keyword (`true`, `false`, `undefined`, `error` are
    /// recognized by the parser, case-insensitively).
    Ident(String),
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Assign,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `=?=`
    MetaEq,
    /// `=!=`
    MetaNe,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
    /// `!`
    Not,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `?`
    Question,
    /// `:`
    Colon,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Int(i) => write!(f, "{i}"),
            Token::Real(r) => write!(f, "{r}"),
            Token::Str(s) => write!(f, "\"{s}\""),
            Token::Ident(s) => write!(f, "{s}"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Semi => write!(f, ";"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Assign => write!(f, "="),
            Token::Eq => write!(f, "=="),
            Token::Ne => write!(f, "!="),
            Token::MetaEq => write!(f, "=?="),
            Token::MetaNe => write!(f, "=!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::And => write!(f, "&&"),
            Token::Or => write!(f, "||"),
            Token::Not => write!(f, "!"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::Question => write!(f, "?"),
            Token::Colon => write!(f, ":"),
        }
    }
}

/// A lexing failure with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the problem.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize ClassAd source. Comments (`// ...` and `/* ... */`) are skipped.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(LexError { pos: start, message: "unterminated comment".into() });
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'[' => { out.push(Token::LBracket); i += 1; }
            b']' => { out.push(Token::RBracket); i += 1; }
            b'{' => { out.push(Token::LBrace); i += 1; }
            b'}' => { out.push(Token::RBrace); i += 1; }
            b'(' => { out.push(Token::LParen); i += 1; }
            b')' => { out.push(Token::RParen); i += 1; }
            b';' => { out.push(Token::Semi); i += 1; }
            b',' => { out.push(Token::Comma); i += 1; }
            b'.' if !bytes.get(i + 1).is_some_and(u8::is_ascii_digit) => {
                out.push(Token::Dot);
                i += 1;
            }
            b'+' => { out.push(Token::Plus); i += 1; }
            b'-' => { out.push(Token::Minus); i += 1; }
            b'*' => { out.push(Token::Star); i += 1; }
            b'/' => { out.push(Token::Slash); i += 1; }
            b'%' => { out.push(Token::Percent); i += 1; }
            b'?' => { out.push(Token::Question); i += 1; }
            b':' => { out.push(Token::Colon); i += 1; }
            b'&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    out.push(Token::And);
                    i += 2;
                } else {
                    return Err(LexError { pos: i, message: "expected &&".into() });
                }
            }
            b'|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    out.push(Token::Or);
                    i += 2;
                } else {
                    return Err(LexError { pos: i, message: "expected ||".into() });
                }
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    out.push(Token::Not);
                    i += 1;
                }
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Le);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            b'=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Eq);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'?') && bytes.get(i + 2) == Some(&b'=') {
                    out.push(Token::MetaEq);
                    i += 3;
                } else if bytes.get(i + 1) == Some(&b'!') && bytes.get(i + 2) == Some(&b'=') {
                    out.push(Token::MetaNe);
                    i += 3;
                } else {
                    out.push(Token::Assign);
                    i += 1;
                }
            }
            b'"' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(LexError { pos: start, message: "unterminated string".into() });
                    }
                    match bytes[i] {
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\\' => {
                            i += 1;
                            let esc = bytes.get(i).copied().ok_or_else(|| LexError {
                                pos: start,
                                message: "unterminated escape".into(),
                            })?;
                            s.push(match esc {
                                b'n' => '\n',
                                b't' => '\t',
                                b'"' => '"',
                                b'\\' => '\\',
                                other => {
                                    return Err(LexError {
                                        pos: i,
                                        message: format!("bad escape \\{}", other as char),
                                    })
                                }
                            });
                            i += 1;
                        }
                        _ => {
                            // Consume one full UTF-8 character.
                            let ch_start = i;
                            let rest = &src[ch_start..];
                            let ch = rest.chars().next().unwrap();
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            b'0'..=b'9'
            | b'.' /* .5 style literal */ => {
                let start = i;
                let mut saw_dot = false;
                let mut saw_exp = false;
                while i < bytes.len() {
                    match bytes[i] {
                        b'0'..=b'9' => i += 1,
                        b'.' if !saw_dot && !saw_exp => {
                            saw_dot = true;
                            i += 1;
                        }
                        b'e' | b'E' if !saw_exp => {
                            saw_exp = true;
                            i += 1;
                            if matches!(bytes.get(i), Some(b'+') | Some(b'-')) {
                                i += 1;
                            }
                        }
                        _ => break,
                    }
                }
                let text = &src[start..i];
                if saw_dot || saw_exp {
                    let v: f64 = text.parse().map_err(|_| LexError {
                        pos: start,
                        message: format!("bad real literal {text}"),
                    })?;
                    out.push(Token::Real(v));
                } else {
                    let v: i64 = text.parse().map_err(|_| LexError {
                        pos: start,
                        message: format!("bad integer literal {text}"),
                    })?;
                    out.push(Token::Int(v));
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Token::Ident(src[start..i].to_string()));
            }
            other => {
                return Err(LexError {
                    pos: i,
                    message: format!("unexpected character {:?}", other as char),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let toks = lex("[ a = 1; b = 2.5 ]").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::LBracket,
                Token::Ident("a".into()),
                Token::Assign,
                Token::Int(1),
                Token::Semi,
                Token::Ident("b".into()),
                Token::Assign,
                Token::Real(2.5),
                Token::RBracket,
            ]
        );
    }

    #[test]
    fn operators() {
        let toks = lex("== != =?= =!= <= >= < > && || ! ? :").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Eq,
                Token::Ne,
                Token::MetaEq,
                Token::MetaNe,
                Token::Le,
                Token::Ge,
                Token::Lt,
                Token::Gt,
                Token::And,
                Token::Or,
                Token::Not,
                Token::Question,
                Token::Colon,
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        let toks = lex(r#""a\"b\\c\nd""#).unwrap();
        assert_eq!(toks, vec![Token::Str("a\"b\\c\nd".into())]);
    }

    #[test]
    fn comments_skipped() {
        let toks = lex("1 // line comment\n /* block */ 2").unwrap();
        assert_eq!(toks, vec![Token::Int(1), Token::Int(2)]);
    }

    #[test]
    fn scientific_notation() {
        let toks = lex("1e3 2.5E-2").unwrap();
        assert_eq!(toks, vec![Token::Real(1000.0), Token::Real(0.025)]);
    }

    #[test]
    fn dot_vs_real() {
        let toks = lex("MY.Memory").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("MY".into()),
                Token::Dot,
                Token::Ident("Memory".into())
            ]
        );
    }

    #[test]
    fn errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("a & b").is_err());
        assert!(lex("/* open").is_err());
        assert!(lex("#").is_err());
    }

    #[test]
    fn unicode_in_strings() {
        let toks = lex("\"héllo λ\"").unwrap();
        assert_eq!(toks, vec![Token::Str("héllo λ".into())]);
    }
}
