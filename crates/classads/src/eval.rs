//! The three-valued evaluator and matchmaking entry points.
//!
//! Semantics follow classic ClassAds:
//!
//! * Missing attributes evaluate to `UNDEFINED`; type mismatches to `ERROR`.
//! * `ERROR` dominates `UNDEFINED` in strict operators.
//! * `&&` and `||` use three-valued logic with the useful absorption rules:
//!   `FALSE && UNDEFINED == FALSE`, `TRUE || UNDEFINED == TRUE`.
//! * `=?=` / `=!=` (meta comparison) always yield a boolean.
//! * Unqualified attribute references resolve in the evaluating ad first
//!   and then in the target ad; `MY.` / `TARGET.` restrict the scope.
//! * Reference cycles yield `ERROR` via a depth limit rather than hanging.

use crate::ad::ClassAd;
use crate::expr::{BinOp, Expr, Scope, UnOp};
use crate::funcs;
use crate::value::Value;
use std::cmp::Ordering;

/// Maximum attribute-dereference depth before declaring a cycle.
const MAX_DEPTH: u32 = 64;

/// An evaluation context: the evaluating ad plus (optionally) the candidate.
#[derive(Clone, Copy)]
pub struct EvalCtx<'a> {
    my: &'a ClassAd,
    target: Option<&'a ClassAd>,
}

impl<'a> EvalCtx<'a> {
    /// Context for evaluating `my` against `target`.
    pub fn matching(my: &'a ClassAd, target: &'a ClassAd) -> EvalCtx<'a> {
        EvalCtx {
            my,
            target: Some(target),
        }
    }

    /// Context with no target ad (plain attribute evaluation).
    pub fn solo(my: &'a ClassAd) -> EvalCtx<'a> {
        EvalCtx { my, target: None }
    }

    /// Evaluate an expression.
    pub fn eval(&self, expr: &Expr) -> Value {
        self.eval_depth(expr, 0)
    }

    /// Evaluate the named attribute of `my` (with scope-chain lookup rules).
    pub fn attr(&self, name: &str) -> Value {
        self.lookup(Scope::Unqualified, name, 0)
    }

    fn lookup(&self, scope: Scope, name: &str, depth: u32) -> Value {
        if depth >= MAX_DEPTH {
            return Value::Error;
        }
        let expr = match scope {
            Scope::My => self.my.get(name),
            Scope::Target => self.target.and_then(|t| t.get(name)),
            Scope::Unqualified => self
                .my
                .get(name)
                .or_else(|| self.target.and_then(|t| t.get(name))),
        };
        match expr {
            // Attribute expressions found in the *target* ad must be
            // evaluated with the roles swapped: inside that ad, MY is the
            // target and vice versa.
            Some(e) => {
                let owned_by_my = match scope {
                    Scope::My => true,
                    Scope::Target => false,
                    Scope::Unqualified => self.my.get(name).is_some(),
                };
                if owned_by_my {
                    self.eval_depth(e, depth + 1)
                } else {
                    let swapped = EvalCtx {
                        my: self.target.expect("target present when found there"),
                        target: Some(self.my),
                    };
                    swapped.eval_depth(e, depth + 1)
                }
            }
            None => Value::Undefined,
        }
    }

    fn eval_depth(&self, expr: &Expr, depth: u32) -> Value {
        if depth >= MAX_DEPTH {
            return Value::Error;
        }
        match expr {
            Expr::Lit(v) => v.clone(),
            Expr::Attr(scope, name) => self.lookup(*scope, name, depth),
            Expr::Unary(op, e) => {
                let v = self.eval_depth(e, depth + 1);
                eval_unary(*op, v)
            }
            Expr::Binary(op, a, b) => self.eval_binary(*op, a, b, depth),
            Expr::Cond(c, a, b) => match self.eval_depth(c, depth + 1) {
                Value::Bool(true) => self.eval_depth(a, depth + 1),
                Value::Bool(false) => self.eval_depth(b, depth + 1),
                Value::Undefined => Value::Undefined,
                _ => Value::Error,
            },
            Expr::Call(name, args) => {
                let vals: Vec<Value> = args.iter().map(|a| self.eval_depth(a, depth + 1)).collect();
                funcs::call(name, &vals)
            }
            Expr::List(items) => Value::List(
                items
                    .iter()
                    .map(|e| self.eval_depth(e, depth + 1))
                    .collect(),
            ),
        }
    }

    fn eval_binary(&self, op: BinOp, a: &Expr, b: &Expr, depth: u32) -> Value {
        // && and || need lazy, three-valued handling.
        match op {
            BinOp::And => {
                let va = self.eval_depth(a, depth + 1);
                if va == Value::Bool(false) {
                    return Value::Bool(false);
                }
                let vb = self.eval_depth(b, depth + 1);
                return three_valued_and(va, vb);
            }
            BinOp::Or => {
                let va = self.eval_depth(a, depth + 1);
                if va == Value::Bool(true) {
                    return Value::Bool(true);
                }
                let vb = self.eval_depth(b, depth + 1);
                return three_valued_or(va, vb);
            }
            _ => {}
        }
        let va = self.eval_depth(a, depth + 1);
        let vb = self.eval_depth(b, depth + 1);
        match op {
            BinOp::MetaEq => Value::Bool(va.strict_eq(&vb)),
            BinOp::MetaNe => Value::Bool(!va.strict_eq(&vb)),
            _ => {
                // Everything else propagates exceptional values:
                // ERROR dominates UNDEFINED.
                if va.is_error() || vb.is_error() {
                    return Value::Error;
                }
                if va.is_undefined() || vb.is_undefined() {
                    return Value::Undefined;
                }
                match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                        eval_arith(op, &va, &vb)
                    }
                    BinOp::Eq => va.loose_eq(&vb).map(Value::Bool).unwrap_or(Value::Error),
                    BinOp::Ne => va
                        .loose_eq(&vb)
                        .map(|e| Value::Bool(!e))
                        .unwrap_or(Value::Error),
                    BinOp::Lt => cmp_to_bool(va.loose_cmp(&vb), |o| o == Ordering::Less),
                    BinOp::Le => cmp_to_bool(va.loose_cmp(&vb), |o| o != Ordering::Greater),
                    BinOp::Gt => cmp_to_bool(va.loose_cmp(&vb), |o| o == Ordering::Greater),
                    BinOp::Ge => cmp_to_bool(va.loose_cmp(&vb), |o| o != Ordering::Less),
                    BinOp::And | BinOp::Or | BinOp::MetaEq | BinOp::MetaNe => unreachable!(),
                }
            }
        }
    }
}

fn cmp_to_bool(ord: Option<Ordering>, f: impl FnOnce(Ordering) -> bool) -> Value {
    match ord {
        Some(o) => Value::Bool(f(o)),
        None => Value::Error,
    }
}

fn eval_unary(op: UnOp, v: Value) -> Value {
    if v.is_error() {
        return Value::Error;
    }
    if v.is_undefined() {
        return Value::Undefined;
    }
    match op {
        UnOp::Not => match v {
            Value::Bool(b) => Value::Bool(!b),
            _ => Value::Error,
        },
        UnOp::Neg => match v {
            Value::Int(i) => Value::Int(-i),
            Value::Real(r) => Value::Real(-r),
            _ => Value::Error,
        },
        UnOp::Plus => match v {
            Value::Int(_) | Value::Real(_) => v,
            _ => Value::Error,
        },
    }
}

fn eval_arith(op: BinOp, a: &Value, b: &Value) -> Value {
    // Integer op integer stays integer; anything with a real becomes real.
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => {
            let (x, y) = (*x, *y);
            match op {
                BinOp::Add => Value::Int(x.wrapping_add(y)),
                BinOp::Sub => Value::Int(x.wrapping_sub(y)),
                BinOp::Mul => Value::Int(x.wrapping_mul(y)),
                BinOp::Div => {
                    if y == 0 {
                        Value::Error
                    } else {
                        Value::Int(x.wrapping_div(y))
                    }
                }
                BinOp::Mod => {
                    if y == 0 {
                        Value::Error
                    } else {
                        Value::Int(x.wrapping_rem(y))
                    }
                }
                _ => unreachable!(),
            }
        }
        _ => match (a.as_number(), b.as_number()) {
            (Some(x), Some(y)) => match op {
                BinOp::Add => Value::Real(x + y),
                BinOp::Sub => Value::Real(x - y),
                BinOp::Mul => Value::Real(x * y),
                BinOp::Div => {
                    if y == 0.0 {
                        Value::Error
                    } else {
                        Value::Real(x / y)
                    }
                }
                BinOp::Mod => {
                    if y == 0.0 {
                        Value::Error
                    } else {
                        Value::Real(x % y)
                    }
                }
                _ => unreachable!(),
            },
            _ => Value::Error,
        },
    }
}

fn three_valued_and(a: Value, b: Value) -> Value {
    use Value::*;
    match (bool3(&a), bool3(&b)) {
        (B3::False, _) | (_, B3::False) => Bool(false),
        (B3::Err, _) | (_, B3::Err) => Error,
        (B3::True, B3::True) => Bool(true),
        _ => Undefined,
    }
}

fn three_valued_or(a: Value, b: Value) -> Value {
    use Value::*;
    match (bool3(&a), bool3(&b)) {
        (B3::True, _) | (_, B3::True) => Bool(true),
        (B3::Err, _) | (_, B3::Err) => Error,
        (B3::False, B3::False) => Bool(false),
        _ => Undefined,
    }
}

enum B3 {
    True,
    False,
    Undef,
    Err,
}

fn bool3(v: &Value) -> B3 {
    match v {
        Value::Bool(true) => B3::True,
        Value::Bool(false) => B3::False,
        Value::Undefined => B3::Undef,
        _ => B3::Err,
    }
}

/// Does `a.Requirements` accept `b`? Missing `Requirements` accepts
/// everything (classic behaviour: an absent constraint is no constraint).
pub fn half_match(a: &ClassAd, b: &ClassAd) -> bool {
    half_match_expr(a.get("Requirements"), a, b)
}

/// [`half_match`] with `a`'s `Requirements` already looked up. Matchmakers
/// that test one ad against many candidates extract the expression once and
/// call this per candidate, skipping the per-pair attribute probe.
pub fn half_match_expr(requirements: Option<&Expr>, a: &ClassAd, b: &ClassAd) -> bool {
    match requirements {
        None => true,
        Some(req) => EvalCtx::matching(a, b).eval(req) == Value::Bool(true),
    }
}

/// Symmetric matchmaking: both ads' `Requirements` must accept the other.
pub fn symmetric_match(a: &ClassAd, b: &ClassAd) -> bool {
    half_match(a, b) && half_match(b, a)
}

/// Evaluate `a.Rank` against `b`. `UNDEFINED`, `ERROR` and non-numeric
/// ranks count as `0.0` (classic behaviour). Booleans coerce to 0/1.
pub fn rank(a: &ClassAd, b: &ClassAd) -> f64 {
    rank_expr(a.get("Rank"), a, b)
}

/// [`rank`] with `a`'s `Rank` already looked up (see [`half_match_expr`]).
pub fn rank_expr(rank: Option<&Expr>, a: &ClassAd, b: &ClassAd) -> f64 {
    match rank {
        None => 0.0,
        Some(r) => match EvalCtx::matching(a, b).eval(r) {
            Value::Int(i) => i as f64,
            Value::Real(f) => f,
            Value::Bool(bv) if bv => 1.0,
            _ => 0.0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    fn eval_str(src: &str) -> Value {
        let ad = ClassAd::new();
        EvalCtx::solo(&ad).eval(&parse_expr(src).unwrap())
    }

    #[test]
    fn arithmetic() {
        assert_eq!(eval_str("1 + 2 * 3"), Value::Int(7));
        assert_eq!(eval_str("7 / 2"), Value::Int(3));
        assert_eq!(eval_str("7.0 / 2"), Value::Real(3.5));
        assert_eq!(eval_str("7 % 3"), Value::Int(1));
        assert_eq!(eval_str("1 / 0"), Value::Error);
        assert_eq!(eval_str("1.5 % 0"), Value::Error);
        assert_eq!(eval_str("-3 + 1"), Value::Int(-2));
    }

    #[test]
    fn comparisons() {
        assert_eq!(eval_str("1 < 2"), Value::Bool(true));
        assert_eq!(eval_str("2.0 >= 2"), Value::Bool(true));
        assert_eq!(eval_str("\"abc\" == \"ABC\""), Value::Bool(true));
        assert_eq!(eval_str("\"abc\" < \"abd\""), Value::Bool(true));
        assert_eq!(eval_str("1 == \"1\""), Value::Error);
        assert_eq!(eval_str("true == true"), Value::Bool(true));
    }

    #[test]
    fn three_valued_logic() {
        // The absorption rules that make matchmaking robust to missing attrs.
        assert_eq!(eval_str("false && missing"), Value::Bool(false));
        assert_eq!(eval_str("missing && false"), Value::Bool(false));
        assert_eq!(eval_str("true || missing"), Value::Bool(true));
        assert_eq!(eval_str("missing || true"), Value::Bool(true));
        assert_eq!(eval_str("true && missing"), Value::Undefined);
        assert_eq!(eval_str("false || missing"), Value::Undefined);
        assert_eq!(eval_str("missing && missing"), Value::Undefined);
        // ERROR dominates unless absorbed.
        assert_eq!(eval_str("false && (1/0)"), Value::Bool(false));
        assert_eq!(eval_str("true && (1 == \"x\")"), Value::Error);
    }

    #[test]
    fn undefined_propagation() {
        assert_eq!(eval_str("missing + 1"), Value::Undefined);
        assert_eq!(eval_str("missing < 5"), Value::Undefined);
        assert_eq!(eval_str("!missing"), Value::Undefined);
        // But meta-comparison pins it down.
        assert_eq!(eval_str("missing =?= UNDEFINED"), Value::Bool(true));
        assert_eq!(eval_str("missing =!= UNDEFINED"), Value::Bool(false));
        assert_eq!(eval_str("5 =?= 5.0"), Value::Bool(false));
        assert_eq!(eval_str("\"A\" =?= \"a\""), Value::Bool(false));
    }

    #[test]
    fn conditional() {
        assert_eq!(eval_str("1 < 2 ? 10 : 20"), Value::Int(10));
        assert_eq!(eval_str("1 > 2 ? 10 : 20"), Value::Int(20));
        assert_eq!(eval_str("missing ? 10 : 20"), Value::Undefined);
        assert_eq!(eval_str("3 ? 10 : 20"), Value::Error);
    }

    #[test]
    fn attr_resolution_scopes() {
        let my = ClassAd::new().with("X", 1i64).with("Common", 10i64);
        let target = ClassAd::new().with("Y", 2i64).with("Common", 20i64);
        let ctx = EvalCtx::matching(&my, &target);
        assert_eq!(ctx.eval(&parse_expr("X").unwrap()), Value::Int(1));
        // Unqualified falls through to TARGET when absent in MY.
        assert_eq!(ctx.eval(&parse_expr("Y").unwrap()), Value::Int(2));
        // MY wins for shared names.
        assert_eq!(ctx.eval(&parse_expr("Common").unwrap()), Value::Int(10));
        assert_eq!(ctx.eval(&parse_expr("MY.Common").unwrap()), Value::Int(10));
        assert_eq!(
            ctx.eval(&parse_expr("TARGET.Common").unwrap()),
            Value::Int(20)
        );
        assert_eq!(ctx.eval(&parse_expr("TARGET.X").unwrap()), Value::Undefined);
    }

    #[test]
    fn target_attr_expressions_evaluate_in_their_own_frame() {
        // The target's derived attribute refers to *its own* Memory.
        let my = ClassAd::new().with("Memory", 1i64);
        let target = ClassAd::new()
            .with("Memory", 100i64)
            .with_parsed("KBytes", "MY.Memory * 1024");
        let ctx = EvalCtx::matching(&my, &target);
        assert_eq!(
            ctx.eval(&parse_expr("TARGET.KBytes").unwrap()),
            Value::Int(102_400)
        );
    }

    #[test]
    fn cycles_error_out() {
        let ad = ClassAd::new().with_parsed("A", "B").with_parsed("B", "A");
        assert_eq!(ad.eval_attr("A"), Value::Error);
        let selfref = ClassAd::new().with_parsed("X", "X + 1");
        assert_eq!(selfref.eval_attr("X"), Value::Error);
    }

    #[test]
    fn matchmaking_basics() {
        let job: ClassAd = "[
            ImageSize = 32;
            Requirements = TARGET.Memory >= MY.ImageSize && TARGET.Arch == \"INTEL\";
            Rank = TARGET.Mips;
        ]"
        .parse()
        .unwrap();
        let good: ClassAd = "[
            Arch = \"INTEL\"; Memory = 64; Mips = 300;
            Requirements = TARGET.ImageSize <= MY.Memory;
        ]"
        .parse()
        .unwrap();
        let small: ClassAd = "[
            Arch = \"INTEL\"; Memory = 16; Mips = 300;
        ]"
        .parse()
        .unwrap();
        let sparc: ClassAd = "[
            Arch = \"SPARC\"; Memory = 64;
        ]"
        .parse()
        .unwrap();
        assert!(symmetric_match(&job, &good));
        assert!(!symmetric_match(&job, &small));
        assert!(!symmetric_match(&job, &sparc));
        assert_eq!(rank(&job, &good), 300.0);
        assert_eq!(rank(&job, &sparc), 0.0);
    }

    #[test]
    fn missing_requirements_matches_everything() {
        let a = ClassAd::new().with("x", 1i64);
        let b = ClassAd::new().with("y", 2i64);
        assert!(symmetric_match(&a, &b));
    }

    #[test]
    fn undefined_requirements_is_no_match() {
        let a = ClassAd::new().with_parsed("Requirements", "TARGET.DoesNotExist > 0");
        let b = ClassAd::new();
        assert!(!symmetric_match(&a, &b));
    }

    #[test]
    fn rank_boolean_coercion() {
        let a = ClassAd::new().with_parsed("Rank", "TARGET.Fast =?= TRUE");
        let fast = ClassAd::new().with("Fast", true);
        let slow = ClassAd::new();
        assert_eq!(rank(&a, &fast), 1.0);
        assert_eq!(rank(&a, &slow), 0.0);
    }
}
