//! The `ClassAd` container: an ordered, case-insensitively keyed map from
//! attribute names to expressions.

use crate::expr::Expr;
use crate::parser::{parse_ad, ParseError};
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

/// A classified advertisement.
///
/// Attribute names are case-insensitive for lookup but remember the case
/// they were first written with for display. Insertion order is preserved,
/// so printing is deterministic.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ClassAd {
    entries: Vec<(String, Expr)>,
    index: HashMap<String, usize>,
}

impl ClassAd {
    /// An empty ad.
    pub fn new() -> ClassAd {
        ClassAd::default()
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the ad has no attributes.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Set an attribute to an expression, replacing any existing binding
    /// (the original spelling of the name is kept on replacement).
    pub fn set_expr(&mut self, name: &str, expr: Expr) {
        let key = name.to_ascii_lowercase();
        match self.index.get(&key) {
            Some(&i) => self.entries[i].1 = expr,
            None => {
                self.index.insert(key, self.entries.len());
                self.entries.push((name.to_string(), expr));
            }
        }
    }

    /// Set an attribute to a literal value.
    pub fn set(&mut self, name: &str, value: impl Into<Value>) {
        self.set_expr(name, Expr::Lit(value.into()));
    }

    /// Parse `src` as an expression and set the attribute to it.
    pub fn set_parsed(&mut self, name: &str, src: &str) -> Result<(), ParseError> {
        let expr = crate::parser::parse_expr(src)?;
        self.set_expr(name, expr);
        Ok(())
    }

    /// Builder-style [`ClassAd::set`].
    pub fn with(mut self, name: &str, value: impl Into<Value>) -> ClassAd {
        self.set(name, value);
        self
    }

    /// Builder-style [`ClassAd::set_parsed`]; panics on parse errors, so use
    /// only with literal source in setup code.
    pub fn with_parsed(mut self, name: &str, src: &str) -> ClassAd {
        self.set_parsed(name, src)
            .unwrap_or_else(|e| panic!("bad expression for {name}: {e}"));
        self
    }

    /// Look up an attribute's expression (case-insensitive).
    ///
    /// Matchmaking probes ads millions of times, so the lowercase key is
    /// built on the stack for every realistic name length; only absurdly
    /// long names fall back to a heap allocation.
    pub fn get(&self, name: &str) -> Option<&Expr> {
        let mut buf = [0u8; 64];
        let i = if name.len() <= buf.len() {
            let key = &mut buf[..name.len()];
            key.copy_from_slice(name.as_bytes());
            key.make_ascii_lowercase();
            // ASCII-lowercasing touches only `A`..`Z` bytes, which never
            // occur inside multi-byte UTF-8 sequences, so this stays valid.
            self.index
                .get(std::str::from_utf8(key).expect("lowercased utf8"))
        } else {
            self.index.get(&name.to_ascii_lowercase())
        };
        i.map(|&i| &self.entries[i].1)
    }

    /// Remove an attribute; returns whether it existed.
    pub fn remove(&mut self, name: &str) -> bool {
        let key = name.to_ascii_lowercase();
        let Some(pos) = self.index.remove(&key) else {
            return false;
        };
        self.entries.remove(pos);
        // Re-index everything after the removed slot.
        for (i, (n, _)) in self.entries.iter().enumerate().skip(pos) {
            self.index.insert(n.to_ascii_lowercase(), i);
        }
        true
    }

    /// Iterate `(name, expr)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Expr)> {
        self.entries.iter().map(|(n, e)| (n.as_str(), e))
    }

    /// Evaluate an attribute in a *single-ad* context (no TARGET). Returns
    /// `Value::Undefined` for missing attributes.
    pub fn eval_attr(&self, name: &str) -> Value {
        crate::eval::EvalCtx::solo(self).attr(name)
    }

    /// Convenience: evaluate an attribute and view it as an integer.
    pub fn get_int(&self, name: &str) -> Option<i64> {
        self.eval_attr(name).as_int()
    }

    /// Convenience: evaluate an attribute and view it as a string.
    pub fn get_str(&self, name: &str) -> Option<String> {
        match self.eval_attr(name) {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Convenience: evaluate an attribute and view it as a bool.
    pub fn get_bool(&self, name: &str) -> Option<bool> {
        self.eval_attr(name).as_bool()
    }

    /// Convenience: evaluate an attribute and view it as a float.
    pub fn get_real(&self, name: &str) -> Option<f64> {
        self.eval_attr(name).as_number()
    }
}

impl fmt::Display for ClassAd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[")?;
        for (name, expr) in &self.entries {
            writeln!(f, "    {name} = {expr};")?;
        }
        write!(f, "]")
    }
}

impl FromStr for ClassAd {
    type Err = ParseError;
    fn from_str(s: &str) -> Result<ClassAd, ParseError> {
        parse_ad(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_case_insensitive() {
        let mut ad = ClassAd::new();
        ad.set("Memory", 128i64);
        assert_eq!(ad.get_int("memory"), Some(128));
        assert_eq!(ad.get_int("MEMORY"), Some(128));
        ad.set("MEMORY", 256i64);
        assert_eq!(ad.len(), 1, "replacement, not duplication");
        assert_eq!(ad.get_int("Memory"), Some(256));
        // Original spelling preserved.
        assert_eq!(ad.iter().next().unwrap().0, "Memory");
    }

    #[test]
    fn remove_reindexes() {
        let mut ad = ClassAd::new()
            .with("a", 1i64)
            .with("b", 2i64)
            .with("c", 3i64);
        assert!(ad.remove("b"));
        assert!(!ad.remove("b"));
        assert_eq!(ad.get_int("a"), Some(1));
        assert_eq!(ad.get_int("c"), Some(3));
        assert_eq!(ad.len(), 2);
    }

    #[test]
    fn display_parse_round_trip() {
        let ad = ClassAd::new()
            .with("Name", "vulture.cs.wisc.edu")
            .with("Memory", 128i64)
            .with("LoadAvg", 0.25)
            .with_parsed("Requirements", "TARGET.ImageSize < MY.Memory * 1024");
        let printed = ad.to_string();
        let back: ClassAd = printed.parse().unwrap();
        assert_eq!(back, ad);
    }

    #[test]
    fn eval_attr_follows_references() {
        let ad = ClassAd::new()
            .with("Base", 100i64)
            .with_parsed("Derived", "Base * 2 + 1");
        assert_eq!(ad.get_int("Derived"), Some(201));
        assert_eq!(ad.eval_attr("Missing"), Value::Undefined);
    }
}
