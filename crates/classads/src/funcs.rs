//! Builtin functions.
//!
//! The subset that real-world Condor policies of the paper's era leaned on:
//! type predicates, string utilities, numeric rounding, and the
//! `stringListMember` family used to express things like
//! `stringListMember(TARGET.Arch, "INTEL,SUN4u")`.

use crate::value::Value;

/// Invoke builtin `name` on already-evaluated arguments. Unknown functions
/// return `ERROR`; wrong arity or argument types return `ERROR` too, except
/// for the `is*` predicates which never error.
pub fn call(name: &str, args: &[Value]) -> Value {
    let lower = name.to_ascii_lowercase();
    match lower.as_str() {
        // --- type predicates: total functions, never ERROR --------------
        "isundefined" => arity1(args, |v| Value::Bool(v.is_undefined())),
        "iserror" => arity1(args, |v| Value::Bool(v.is_error())),
        "isstring" => arity1(args, |v| Value::Bool(matches!(v, Value::Str(_)))),
        "isinteger" => arity1(args, |v| Value::Bool(matches!(v, Value::Int(_)))),
        "isreal" => arity1(args, |v| Value::Bool(matches!(v, Value::Real(_)))),
        "isboolean" => arity1(args, |v| Value::Bool(matches!(v, Value::Bool(_)))),
        "islist" => arity1(args, |v| Value::Bool(matches!(v, Value::List(_)))),

        // --- conversions --------------------------------------------------
        "int" => arity1(args, |v| match v {
            Value::Int(i) => Value::Int(*i),
            Value::Real(r) if r.is_finite() => Value::Int(*r as i64),
            Value::Bool(b) => Value::Int(*b as i64),
            Value::Str(s) => s
                .trim()
                .parse::<i64>()
                .map(Value::Int)
                .unwrap_or(Value::Error),
            _ => Value::Error,
        }),
        "real" => arity1(args, |v| match v {
            Value::Int(i) => Value::Real(*i as f64),
            Value::Real(r) => Value::Real(*r),
            Value::Str(s) => s
                .trim()
                .parse::<f64>()
                .map(Value::Real)
                .unwrap_or(Value::Error),
            _ => Value::Error,
        }),
        "string" => arity1(args, |v| match v {
            Value::Str(s) => Value::Str(s.clone()),
            other => Value::Str(other.to_string()),
        }),

        // --- numerics ------------------------------------------------------
        "floor" => num1(args, f64::floor),
        "ceiling" => num1(args, f64::ceil),
        "round" => num1(args, f64::round),
        "abs" => arity1(args, |v| match v {
            Value::Int(i) => Value::Int(i.wrapping_abs()),
            Value::Real(r) => Value::Real(r.abs()),
            _ => Value::Error,
        }),
        "min" => fold_numeric(args, f64::min),
        "max" => fold_numeric(args, f64::max),
        "pow" => {
            let [a, b] = args else { return Value::Error };
            match (a.as_number(), b.as_number()) {
                (Some(x), Some(y)) => Value::Real(x.powf(y)),
                _ => Value::Error,
            }
        }

        // --- strings --------------------------------------------------------
        "strcat" => {
            let mut out = String::new();
            for a in args {
                match a {
                    Value::Str(s) => out.push_str(s),
                    Value::Int(_) | Value::Real(_) | Value::Bool(_) => out.push_str(&a.to_string()),
                    _ => return Value::Error,
                }
            }
            Value::Str(out)
        }
        "size" | "length" => arity1(args, |v| match v {
            Value::Str(s) => Value::Int(s.chars().count() as i64),
            Value::List(l) => Value::Int(l.len() as i64),
            _ => Value::Error,
        }),
        "tolower" => str1(args, |s| s.to_ascii_lowercase()),
        "toupper" => str1(args, |s| s.to_ascii_uppercase()),
        "substr" => {
            // substr(s, offset [, length]); negative offset counts from end.
            let s = match args.first() {
                Some(Value::Str(s)) => s,
                _ => return Value::Error,
            };
            let chars: Vec<char> = s.chars().collect();
            let off = match args.get(1).and_then(Value::as_int) {
                Some(o) => o,
                None => return Value::Error,
            };
            let start = if off < 0 {
                chars.len().saturating_sub((-off) as usize)
            } else {
                (off as usize).min(chars.len())
            };
            let len = match args.get(2) {
                None => chars.len() - start,
                Some(v) => match v.as_int() {
                    Some(l) if l >= 0 => (l as usize).min(chars.len() - start),
                    _ => return Value::Error,
                },
            };
            Value::Str(chars[start..start + len].iter().collect())
        }

        // --- string lists -----------------------------------------------------
        "stringlistmember" => {
            // stringListMember(item, "a,b,c" [, delims])
            let item = match args.first() {
                Some(Value::Str(s)) => s,
                _ => return Value::Error,
            };
            match split_list(args, 1) {
                Some(items) => Value::Bool(items.iter().any(|x| x.eq_ignore_ascii_case(item))),
                None => Value::Error,
            }
        }
        "stringlistsize" => match split_list(args, 0) {
            Some(items) => Value::Int(items.len() as i64),
            None => Value::Error,
        },

        // --- misc ------------------------------------------------------------
        "ifthenelse" => {
            let [c, a, b] = args else { return Value::Error };
            match c {
                Value::Bool(true) => a.clone(),
                Value::Bool(false) => b.clone(),
                Value::Undefined => Value::Undefined,
                _ => Value::Error,
            }
        }
        "member" => {
            let [item, Value::List(list)] = args else {
                return Value::Error;
            };
            Value::Bool(list.iter().any(|x| x.loose_eq(item) == Some(true)))
        }

        _ => Value::Error,
    }
}

fn arity1(args: &[Value], f: impl FnOnce(&Value) -> Value) -> Value {
    match args {
        [v] => f(v),
        _ => Value::Error,
    }
}

fn num1(args: &[Value], f: impl FnOnce(f64) -> f64) -> Value {
    arity1(args, |v| match v {
        Value::Int(i) => Value::Int(*i),
        Value::Real(r) => Value::Int(f(*r) as i64),
        _ => Value::Error,
    })
}

fn str1(args: &[Value], f: impl FnOnce(&str) -> String) -> Value {
    arity1(args, |v| match v {
        Value::Str(s) => Value::Str(f(s)),
        _ => Value::Error,
    })
}

fn fold_numeric(args: &[Value], f: impl Fn(f64, f64) -> f64) -> Value {
    if args.is_empty() {
        return Value::Error;
    }
    let mut acc: Option<f64> = None;
    let mut all_int = true;
    for a in args {
        match a.as_number() {
            Some(n) => {
                if !matches!(a, Value::Int(_)) {
                    all_int = false;
                }
                acc = Some(match acc {
                    None => n,
                    Some(prev) => f(prev, n),
                });
            }
            None => return Value::Error,
        }
    }
    let v = acc.unwrap();
    if all_int {
        Value::Int(v as i64)
    } else {
        Value::Real(v)
    }
}

fn split_list(args: &[Value], idx: usize) -> Option<Vec<String>> {
    let list = match args.get(idx) {
        Some(Value::Str(s)) => s,
        _ => return None,
    };
    let delims = match args.get(idx + 1) {
        None => " ,".to_string(),
        Some(Value::Str(d)) => d.clone(),
        _ => return None,
    };
    Some(
        list.split(|c| delims.contains(c))
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &str) -> Value {
        Value::Str(v.into())
    }

    #[test]
    fn predicates() {
        assert_eq!(call("isUndefined", &[Value::Undefined]), Value::Bool(true));
        assert_eq!(call("isUndefined", &[Value::Int(0)]), Value::Bool(false));
        assert_eq!(call("isError", &[Value::Error]), Value::Bool(true));
        assert_eq!(call("isString", &[s("x")]), Value::Bool(true));
        // Wrong arity is an error even for predicates.
        assert_eq!(call("isUndefined", &[]), Value::Error);
    }

    #[test]
    fn conversions() {
        assert_eq!(call("int", &[Value::Real(3.9)]), Value::Int(3));
        assert_eq!(call("int", &[s(" 42 ")]), Value::Int(42));
        assert_eq!(call("int", &[s("nope")]), Value::Error);
        assert_eq!(call("real", &[Value::Int(2)]), Value::Real(2.0));
        assert_eq!(call("string", &[Value::Int(7)]), s("7"));
        assert_eq!(call("string", &[s("x")]), s("x"));
    }

    #[test]
    fn numerics() {
        assert_eq!(call("floor", &[Value::Real(2.7)]), Value::Int(2));
        assert_eq!(call("ceiling", &[Value::Real(2.1)]), Value::Int(3));
        assert_eq!(call("round", &[Value::Real(2.5)]), Value::Int(3));
        assert_eq!(call("abs", &[Value::Int(-4)]), Value::Int(4));
        assert_eq!(
            call("min", &[Value::Int(3), Value::Int(1), Value::Int(2)]),
            Value::Int(1)
        );
        assert_eq!(
            call("max", &[Value::Int(1), Value::Real(2.5)]),
            Value::Real(2.5)
        );
        assert_eq!(
            call("pow", &[Value::Int(2), Value::Int(10)]),
            Value::Real(1024.0)
        );
    }

    #[test]
    fn strings() {
        assert_eq!(call("strcat", &[s("a"), Value::Int(1), s("b")]), s("a1b"));
        assert_eq!(call("size", &[s("hello")]), Value::Int(5));
        assert_eq!(call("toUpper", &[s("pbs")]), s("PBS"));
        assert_eq!(call("toLower", &[s("LSF")]), s("lsf"));
        assert_eq!(
            call("substr", &[s("gatekeeper"), Value::Int(4)]),
            s("keeper")
        );
        assert_eq!(
            call("substr", &[s("gatekeeper"), Value::Int(0), Value::Int(4)]),
            s("gate")
        );
        assert_eq!(call("substr", &[s("abc"), Value::Int(-2)]), s("bc"));
        assert_eq!(call("substr", &[s("abc"), Value::Int(99)]), s(""));
    }

    #[test]
    fn string_lists() {
        assert_eq!(
            call("stringListMember", &[s("INTEL"), s("intel,sun4u")]),
            Value::Bool(true)
        );
        assert_eq!(
            call("stringListMember", &[s("ALPHA"), s("intel,sun4u")]),
            Value::Bool(false)
        );
        assert_eq!(call("stringListSize", &[s("a, b, c")]), Value::Int(3));
        assert_eq!(call("stringListSize", &[s("a|b"), s("|")]), Value::Int(2));
    }

    #[test]
    fn misc() {
        assert_eq!(
            call(
                "ifThenElse",
                &[Value::Bool(true), Value::Int(1), Value::Int(2)]
            ),
            Value::Int(1)
        );
        assert_eq!(
            call(
                "ifThenElse",
                &[Value::Undefined, Value::Int(1), Value::Int(2)]
            ),
            Value::Undefined
        );
        let list = Value::List(vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(
            call("member", &[Value::Int(2), list.clone()]),
            Value::Bool(true)
        );
        assert_eq!(call("member", &[Value::Int(5), list]), Value::Bool(false));
        assert_eq!(call("nosuchfunction", &[]), Value::Error);
    }
}
