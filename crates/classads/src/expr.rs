//! Expression AST and pretty-printing.

use crate::value::Value;
use std::fmt;

/// Attribute reference scope.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scope {
    /// Unqualified: resolved in the evaluating ad, then in the target ad.
    Unqualified,
    /// `MY.x` — only the evaluating ad.
    My,
    /// `TARGET.x` — only the candidate ad.
    Target,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    /// Logical negation `!`.
    Not,
    /// Arithmetic negation `-`.
    Neg,
    /// Unary plus (identity on numbers, error otherwise).
    Plus,
}

/// Binary operators, in ClassAd syntax order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==` (loose, case-insensitive on strings)
    Eq,
    /// `!=`
    Ne,
    /// `=?=` (identity; never UNDEFINED/ERROR)
    MetaEq,
    /// `=!=`
    MetaNe,
    /// `&&` (three-valued)
    And,
    /// `||` (three-valued)
    Or,
}

impl BinOp {
    /// Parser/printer precedence; higher binds tighter.
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::Ne | BinOp::MetaEq | BinOp::MetaNe => 3,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 4,
            BinOp::Add | BinOp::Sub => 5,
            BinOp::Mul | BinOp::Div | BinOp::Mod => 6,
        }
    }

    /// The surface syntax.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::MetaEq => "=?=",
            BinOp::MetaNe => "=!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// A ClassAd expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A literal value.
    Lit(Value),
    /// An attribute reference.
    Attr(Scope, String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Conditional `cond ? a : b`.
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Builtin function call.
    Call(String, Vec<Expr>),
    /// List constructor `{ a, b, c }`.
    List(Vec<Expr>),
}

impl Expr {
    /// Shorthand literal constructor.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// Shorthand unqualified attribute reference.
    pub fn attr(name: &str) -> Expr {
        Expr::Attr(Scope::Unqualified, name.to_string())
    }

    /// Shorthand `TARGET.name` reference.
    pub fn target(name: &str) -> Expr {
        Expr::Attr(Scope::Target, name.to_string())
    }

    /// Shorthand `MY.name` reference.
    pub fn my(name: &str) -> Expr {
        Expr::Attr(Scope::My, name.to_string())
    }

    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, parent: u8) -> fmt::Result {
        match self {
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Attr(Scope::Unqualified, name) => write!(f, "{name}"),
            Expr::Attr(Scope::My, name) => write!(f, "MY.{name}"),
            Expr::Attr(Scope::Target, name) => write!(f, "TARGET.{name}"),
            Expr::Unary(op, e) => {
                let sym = match op {
                    UnOp::Not => "!",
                    UnOp::Neg => "-",
                    UnOp::Plus => "+",
                };
                write!(f, "{sym}")?;
                e.fmt_prec(f, 7)
            }
            Expr::Binary(op, a, b) => {
                let prec = op.precedence();
                let need_parens = prec < parent;
                if need_parens {
                    write!(f, "(")?;
                }
                a.fmt_prec(f, prec)?;
                write!(f, " {} ", op.symbol())?;
                // Right operand printed at prec+1 so left-assoc chains
                // re-parse identically.
                b.fmt_prec(f, prec + 1)?;
                if need_parens {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Expr::Cond(c, a, b) => {
                if parent > 0 {
                    write!(f, "(")?;
                }
                c.fmt_prec(f, 1)?;
                write!(f, " ? ")?;
                a.fmt_prec(f, 0)?;
                write!(f, " : ")?;
                b.fmt_prec(f, 0)?;
                if parent > 0 {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Expr::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    a.fmt_prec(f, 0)?;
                }
                write!(f, ")")
            }
            Expr::List(items) => {
                write!(f, "{{")?;
                for (i, e) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    e.fmt_prec(f, 0)?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_respects_precedence() {
        // (1 + 2) * 3 must keep its parentheses.
        let e = Expr::Binary(
            BinOp::Mul,
            Box::new(Expr::Binary(
                BinOp::Add,
                Box::new(Expr::lit(1i64)),
                Box::new(Expr::lit(2i64)),
            )),
            Box::new(Expr::lit(3i64)),
        );
        assert_eq!(e.to_string(), "(1 + 2) * 3");
        // 1 + 2 * 3 must not gain parentheses.
        let e = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::lit(1i64)),
            Box::new(Expr::Binary(
                BinOp::Mul,
                Box::new(Expr::lit(2i64)),
                Box::new(Expr::lit(3i64)),
            )),
        );
        assert_eq!(e.to_string(), "1 + 2 * 3");
    }

    #[test]
    fn display_right_assoc_subtraction_parenthesized() {
        // 1 - (2 - 3): the right operand needs parens to re-parse.
        let e = Expr::Binary(
            BinOp::Sub,
            Box::new(Expr::lit(1i64)),
            Box::new(Expr::Binary(
                BinOp::Sub,
                Box::new(Expr::lit(2i64)),
                Box::new(Expr::lit(3i64)),
            )),
        );
        assert_eq!(e.to_string(), "1 - (2 - 3)");
    }

    #[test]
    fn display_scopes_and_calls() {
        let e = Expr::Binary(
            BinOp::And,
            Box::new(Expr::Binary(
                BinOp::Ge,
                Box::new(Expr::target("Memory")),
                Box::new(Expr::my("ImageSize")),
            )),
            Box::new(Expr::Call("isUndefined".into(), vec![Expr::attr("Rank")])),
        );
        assert_eq!(
            e.to_string(),
            "TARGET.Memory >= MY.ImageSize && isUndefined(Rank)"
        );
    }
}
