//! Property-based tests for the ClassAd language: arbitrary expressions
//! round-trip through the printer, and the evaluator obeys its algebraic
//! laws.

use classads::{parse_expr, rank, symmetric_match, BinOp, ClassAd, Expr, Value};
use proptest::prelude::*;

/// Strategy for arbitrary ClassAd values (no lists here — lists are covered
/// separately since `Display` for reals inside lists is exercised the same
/// way).
fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Undefined),
        Just(Value::Error),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite, display-stable reals.
        (-1.0e12..1.0e12_f64).prop_map(Value::Real),
        "[a-zA-Z0-9 _.,/:-]{0,16}".prop_map(Value::Str),
    ]
}

/// Strategy for arbitrary expressions of bounded depth.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_value().prop_map(Expr::Lit),
        "[a-zA-Z_][a-zA-Z0-9_]{0,8}"
            .prop_filter("not a keyword", |s| {
                !matches!(
                    s.to_ascii_lowercase().as_str(),
                    "true" | "false" | "undefined" | "error" | "my" | "target"
                )
            })
            .prop_map(|s| Expr::attr(&s)),
        "[a-zA-Z_][a-zA-Z0-9_]{0,8}".prop_map(|s| Expr::my(&s)),
        "[a-zA-Z_][a-zA-Z0-9_]{0,8}".prop_map(|s| Expr::target(&s)),
    ];
    leaf.prop_recursive(4, 48, 4, |inner| {
        prop_oneof![
            (arb_binop(), inner.clone(), inner.clone())
                .prop_map(|(op, a, b)| { Expr::Binary(op, Box::new(a), Box::new(b)) }),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, a, b)| { Expr::Cond(Box::new(c), Box::new(a), Box::new(b)) }),
            inner
                .clone()
                .prop_map(|e| Expr::Unary(classads::UnOp::Not, Box::new(e))),
            prop::collection::vec(inner.clone(), 0..3).prop_map(Expr::List),
            (
                prop::sample::select(vec!["strcat", "min", "isUndefined"]),
                prop::collection::vec(inner, 0..3)
            )
                .prop_map(|(name, args)| Expr::Call(name.to_string(), args)),
        ]
    })
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop::sample::select(vec![
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Mod,
        BinOp::Lt,
        BinOp::Le,
        BinOp::Gt,
        BinOp::Ge,
        BinOp::Eq,
        BinOp::Ne,
        BinOp::MetaEq,
        BinOp::MetaNe,
        BinOp::And,
        BinOp::Or,
    ])
}

proptest! {
    /// print ∘ parse ∘ print == print (the printer emits re-parseable syntax
    /// with identical structure).
    #[test]
    fn expr_print_parse_round_trip(e in arb_expr()) {
        let printed = e.to_string();
        let parsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("failed to reparse `{printed}`: {err}"));
        prop_assert_eq!(parsed, e);
    }

    /// Evaluation is deterministic and total: no panic, same value twice.
    #[test]
    fn eval_is_total_and_deterministic(e in arb_expr()) {
        let my = ClassAd::new().with("Memory", 64i64).with("Arch", "INTEL");
        let target = ClassAd::new().with("ImageSize", 32i64);
        let ctx = classads::EvalCtx::matching(&my, &target);
        let v1 = ctx.eval(&e);
        let v2 = ctx.eval(&e);
        prop_assert_eq!(v1, v2);
    }

    /// Meta-equality is reflexive on every evaluable expression (a value is
    /// always identical to itself), and `=?=`/`=!=` always produce booleans.
    #[test]
    fn meta_eq_reflexive(e in arb_expr()) {
        let ad = ClassAd::new();
        let ctx = classads::EvalCtx::solo(&ad);
        let meta = Expr::Binary(BinOp::MetaEq, Box::new(e.clone()), Box::new(e));
        // NaN never arises from our generator range, so reflexivity holds.
        prop_assert_eq!(ctx.eval(&meta), Value::Bool(true));
    }

    /// Ads print-parse round-trip.
    #[test]
    fn ad_round_trip(
        attrs in prop::collection::vec(("[a-zA-Z][a-zA-Z0-9_]{0,8}", arb_expr()), 0..6)
    ) {
        let mut ad = ClassAd::new();
        for (name, e) in &attrs {
            ad.set_expr(name, e.clone());
        }
        let printed = ad.to_string();
        let back: ClassAd = printed.parse()
            .unwrap_or_else(|err| panic!("failed to reparse ad `{printed}`: {err}"));
        prop_assert_eq!(back, ad);
    }

    /// symmetric_match is symmetric by construction.
    #[test]
    fn match_is_symmetric(mem in 0i64..256, img in 0i64..256) {
        let machine = ClassAd::new()
            .with("Memory", mem)
            .with_parsed("Requirements", "TARGET.ImageSize <= MY.Memory");
        let job = ClassAd::new()
            .with("ImageSize", img)
            .with_parsed("Requirements", "TARGET.Memory >= MY.ImageSize");
        prop_assert_eq!(
            symmetric_match(&machine, &job),
            symmetric_match(&job, &machine)
        );
        prop_assert_eq!(symmetric_match(&job, &machine), img <= mem);
    }

    /// Rank is always finite for finite attribute values.
    #[test]
    fn rank_is_finite(mips in 0i64..100_000) {
        let job = ClassAd::new().with_parsed("Rank", "TARGET.Mips * 2");
        let machine = ClassAd::new().with("Mips", mips);
        let r = rank(&job, &machine);
        prop_assert!(r.is_finite());
        prop_assert_eq!(r, (mips * 2) as f64);
    }
}
