//! Deterministic million-job campaign generator and streaming driver.
//!
//! The paper's production runs (§6) were campaigns: hundreds of sites,
//! many users, and job counts far beyond what any single snapshot of the
//! queue should ever hold in memory. This module synthesizes such
//! campaigns reproducibly:
//!
//! * [`CampaignSpec`] describes the campaign (seed, grid shape, job count,
//!   arrival process, workload mix).
//! * [`CampaignStream`] materializes the job stream *lazily* — each
//!   [`CampaignJob`] is a fixed-size record computed on demand from the
//!   seed, so a 10⁶-job campaign costs a few dozen bytes of generator
//!   state, not gigabytes of queued specs.
//! * [`CampaignDriver`] pumps the stream through the Condor-G user API
//!   with a bounded in-flight window and a bounded arrival buffer, so the
//!   submit side exerts backpressure instead of ballooning.
//!
//! Everything is seed-deterministic: the same `CampaignSpec` yields a
//! byte-identical job stream on every run, on every thread, which is what
//! makes the parallel sweep farm ([`crate::farm`]) mergeable and
//! verifiable against serial runs.

use condor_g::api::{GridJobSpec, JobStatus};
use condor_g::{UserCmd, UserEvent};
use gridsim::prelude::*;
use gridsim::AnyMsg;
use std::collections::{HashMap, VecDeque};

/// A campaign description. All fields feed the deterministic generator;
/// two equal specs produce byte-identical streams.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignSpec {
    /// Master seed.
    pub seed: u64,
    /// Number of sites in the synthesized grid.
    pub sites: u32,
    /// Number of distinct submitting users (labels the job mix).
    pub users: u32,
    /// Total jobs in the campaign.
    pub jobs: u64,
    /// Nominal arrival window (arrivals thin out after it, but exactly
    /// `jobs` jobs are always emitted).
    pub duration: Duration,
    /// Mean service time of a single task (seconds).
    pub mean_runtime_secs: f64,
    /// Fraction of arrivals that open a parameter-sweep burst instead of a
    /// singleton job (the DAG/sweep mix).
    pub sweep_fraction: f64,
    /// Largest sweep burst (members arrive back-to-back).
    pub max_sweep: u32,
    /// Diurnal swing of the arrival rate, 0.0 (flat) to 1.0 (arrivals all
    /// but stop at night).
    pub diurnal_amplitude: f64,
}

impl Default for CampaignSpec {
    fn default() -> CampaignSpec {
        CampaignSpec {
            seed: 42,
            sites: 16,
            users: 100,
            jobs: 10_000,
            duration: Duration::from_hours(24),
            mean_runtime_secs: 1_800.0,
            sweep_fraction: 0.25,
            max_sweep: 32,
            diurnal_amplitude: 0.6,
        }
    }
}

/// One synthesized site of the campaign grid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CampaignSite {
    /// Site name (`site000`, `site001`, ...).
    pub name: String,
    /// Processor count.
    pub cpus: u32,
}

/// What kind of arrival produced a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobKind {
    /// Independent singleton submission.
    Single,
    /// Member of a parameter-sweep burst.
    Sweep,
}

/// One job of the campaign: fixed-size, no heap. The driver expands it to
/// a [`GridJobSpec`] only at submission time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CampaignJob {
    /// Arrival offset from campaign start, in microseconds.
    pub at_micros: u64,
    /// Submitting user (0-based).
    pub user: u32,
    /// Service demand in seconds.
    pub runtime_secs: u32,
    /// stdout staged back on completion, in KiB.
    pub stdout_kb: u16,
    /// Sweep-burst id (0 for singletons).
    pub batch: u32,
    /// Arrival kind.
    pub kind: JobKind,
}

impl CampaignJob {
    /// Canonical byte encoding (little-endian, fixed 23 bytes). Two
    /// streams are identical iff their encodings are.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.at_micros.to_le_bytes());
        out.extend_from_slice(&self.user.to_le_bytes());
        out.extend_from_slice(&self.runtime_secs.to_le_bytes());
        out.extend_from_slice(&self.stdout_kb.to_le_bytes());
        out.extend_from_slice(&self.batch.to_le_bytes());
        out.push(match self.kind {
            JobKind::Single => 0,
            JobKind::Sweep => 1,
        });
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in [0, 1).
fn u01(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

impl CampaignSpec {
    /// The synthesized grid: site sizes follow a heavy-ish tail (a few
    /// large centers, many small departmental clusters), deterministic in
    /// the seed.
    pub fn grid(&self) -> Vec<CampaignSite> {
        let mut rng = self.seed ^ 0x0051_74e5;
        (0..self.sites)
            .map(|i| {
                // 16..=512 cpus, log-uniform.
                let cpus = (16.0 * 32f64.powf(u01(&mut rng))) as u32;
                CampaignSite {
                    name: format!("site{i:03}"),
                    cpus,
                }
            })
            .collect()
    }

    /// The lazy job stream.
    pub fn stream(&self) -> CampaignStream {
        CampaignStream {
            spec: self.clone(),
            rng: self.seed ^ 0x0b5,
            t_secs: 0.0,
            emitted: 0,
            burst_left: 0,
            burst_user: 0,
            burst_runtime: 0,
            next_batch: 0,
        }
    }
}

/// Lazy iterator over a campaign's jobs, in arrival order. State is a few
/// dozen bytes; jobs never exist before they are pulled.
pub struct CampaignStream {
    spec: CampaignSpec,
    rng: u64,
    t_secs: f64,
    emitted: u64,
    burst_left: u32,
    burst_user: u32,
    burst_runtime: u32,
    next_batch: u32,
}

impl CampaignStream {
    /// Arrival-rate multiplier at `t`: a diurnal ramp bottoming out at
    /// midnight and peaking mid-afternoon.
    fn diurnal(&self, t_secs: f64) -> f64 {
        if self.spec.diurnal_amplitude == 0.0 {
            return 1.0;
        }
        let day_frac = (t_secs / 86_400.0).fract();
        let swing = (std::f64::consts::TAU * day_frac - std::f64::consts::FRAC_PI_2).sin();
        (1.0 + self.spec.diurnal_amplitude * swing).max(0.05)
    }

    fn sample_runtime(&mut self) -> u32 {
        // Exponential service times, floored so no job is instantaneous.
        let u = u01(&mut self.rng).max(1e-12);
        (self.spec.mean_runtime_secs * -u.ln()).clamp(10.0, 172_800.0) as u32
    }
}

impl Iterator for CampaignStream {
    type Item = CampaignJob;

    fn next(&mut self) -> Option<CampaignJob> {
        if self.emitted >= self.spec.jobs {
            return None;
        }
        self.emitted += 1;
        if self.burst_left > 0 {
            // Sweep member: same user, back-to-back arrival, runtime near
            // the burst's base (parameter sweeps are homogeneous-ish).
            self.burst_left -= 1;
            self.t_secs += u01(&mut self.rng) * 2.0;
            let jitter = 0.8 + 0.4 * u01(&mut self.rng);
            return Some(CampaignJob {
                at_micros: (self.t_secs * 1e6) as u64,
                user: self.burst_user,
                runtime_secs: ((self.burst_runtime as f64 * jitter) as u32).max(10),
                stdout_kb: 4,
                batch: self.next_batch,
                kind: JobKind::Sweep,
            });
        }
        // Poisson gap, thinned by the diurnal ramp.
        let base_rate = self.spec.jobs as f64 / self.spec.duration.as_secs_f64().max(1.0);
        let rate = base_rate * self.diurnal(self.t_secs);
        let u = u01(&mut self.rng).max(1e-12);
        self.t_secs += -u.ln() / rate;
        let user = (splitmix64(&mut self.rng) % u64::from(self.spec.users.max(1))) as u32;
        let runtime = self.sample_runtime();
        if u01(&mut self.rng) < self.spec.sweep_fraction && self.spec.max_sweep > 1 {
            // Open a sweep burst: this job is its first member.
            self.next_batch += 1;
            let size = 2 + (splitmix64(&mut self.rng) % u64::from(self.spec.max_sweep - 1)) as u32;
            self.burst_left = size - 1;
            self.burst_user = user;
            self.burst_runtime = runtime;
            return Some(CampaignJob {
                at_micros: (self.t_secs * 1e6) as u64,
                user,
                runtime_secs: runtime,
                stdout_kb: 4,
                batch: self.next_batch,
                kind: JobKind::Sweep,
            });
        }
        Some(CampaignJob {
            at_micros: (self.t_secs * 1e6) as u64,
            user,
            runtime_secs: runtime,
            stdout_kb: 0,
            batch: 0,
            kind: JobKind::Single,
        })
    }
}

/// Driver tuning.
#[derive(Clone, Debug)]
pub struct DriverConfig {
    /// Hard bound on jobs submitted but not yet terminal.
    pub max_inflight: u32,
    /// Bound on arrivals buffered while the in-flight window is full; the
    /// stream is not pulled past this (backpressure).
    pub max_pending: u32,
}

impl Default for DriverConfig {
    fn default() -> DriverConfig {
        DriverConfig {
            max_inflight: 4_096,
            max_pending: 1_024,
        }
    }
}

const TAG_ARRIVAL: u64 = 1;

/// FNV-1a, the same digest the golden-trace oracle uses.
fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// Streams a campaign through the Condor-G scheduler. Memory is bounded
/// by `max_inflight + max_pending` jobs regardless of campaign size; the
/// generator state is the only representation of the jobs still to come.
pub struct CampaignDriver {
    scheduler: Addr,
    config: DriverConfig,
    stream: CampaignStream,
    /// The arrival pulled off the stream but not yet due or submittable.
    head: Option<CampaignJob>,
    /// Due arrivals waiting for in-flight headroom (bounded).
    pending: VecDeque<CampaignJob>,
    /// Submitted command id -> submit time (bounded by `max_inflight`).
    inflight: HashMap<u64, SimTime>,
    /// Lower bound on the oldest in-flight command id. Command ids are
    /// assigned monotonically, so the oldest in-flight submission is the
    /// smallest live id; this pointer only ever advances (amortized O(1)
    /// per command over the whole campaign), making "how long has the
    /// oldest job been in flight" cheap enough for every heartbeat.
    oldest_cmd: u64,
    /// Grid job id -> command id (bounded by `max_inflight`).
    jobs: HashMap<u64, u64>,
    dispatched: u64,
    done: u64,
    failed: u64,
    /// FNV-1a over (cmd id, outcome) in completion order — the per-cell
    /// determinism digest the sweep farm compares across serial/parallel.
    digest: u64,
    /// When the pending arrival timer fires (arm at most one at a time:
    /// arrivals are ordered, so the armed wakeup is never too late, and
    /// re-arming on every pump would flood the event queue).
    armed: Option<SimTime>,
}

impl CampaignDriver {
    /// A driver feeding `scheduler` from `spec`'s stream.
    pub fn new(scheduler: Addr, spec: &CampaignSpec, config: DriverConfig) -> CampaignDriver {
        CampaignDriver {
            scheduler,
            config,
            stream: spec.stream(),
            head: None,
            pending: VecDeque::new(),
            inflight: HashMap::new(),
            oldest_cmd: 1,
            jobs: HashMap::new(),
            dispatched: 0,
            done: 0,
            failed: 0,
            digest: 0xcbf2_9ce4_8422_2325,
            armed: None,
        }
    }

    /// Completed-job count recorded to stable storage.
    pub fn done(world: &gridsim::World, node: NodeId) -> u64 {
        world.store().get(node, "campaign/done").unwrap_or(0)
    }

    /// Failed-job count recorded to stable storage.
    pub fn failed(world: &gridsim::World, node: NodeId) -> u64 {
        world.store().get(node, "campaign/failed").unwrap_or(0)
    }

    /// Outcome digest recorded to stable storage.
    pub fn digest(world: &gridsim::World, node: NodeId) -> u64 {
        world.store().get(node, "campaign/digest").unwrap_or(0)
    }

    /// Jobs submitted so far, recorded to stable storage.
    pub fn dispatched(world: &gridsim::World, node: NodeId) -> u64 {
        world.store().get(node, "campaign/dispatched").unwrap_or(0)
    }

    /// Jobs submitted but not yet terminal, recorded to stable storage.
    pub fn inflight(world: &gridsim::World, node: NodeId) -> u64 {
        world.store().get(node, "campaign/inflight").unwrap_or(0)
    }

    /// Due arrivals buffered behind the in-flight window, recorded to
    /// stable storage.
    pub fn pending(world: &gridsim::World, node: NodeId) -> u64 {
        world.store().get(node, "campaign/pending").unwrap_or(0)
    }

    /// Submit time (microseconds) of the oldest job still in flight, or
    /// `None` when nothing is in flight. Telemetry heartbeats turn this
    /// into the stuck-job signal.
    pub fn oldest_inflight_at(world: &gridsim::World, node: NodeId) -> Option<SimTime> {
        if Self::inflight(world, node) == 0 {
            return None;
        }
        world
            .store()
            .get(node, "campaign/oldest_at_us")
            .map(SimTime)
    }

    fn spec_for(&self, job: &CampaignJob, id: u64) -> GridJobSpec {
        // One shared executable; the name stays short and the stdout small
        // so per-job strings do not dominate campaign memory.
        let runtime = Duration::from_secs(u64::from(job.runtime_secs));
        GridJobSpec::grid(&format!("c{id}"), "/home/jane/app.exe", runtime)
            .with_stdout(u64::from(job.stdout_kb) * 1024)
    }

    /// Submit every due arrival the in-flight window has room for, then
    /// arm the timer for the next future arrival.
    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        loop {
            if self.inflight.len() as u32 >= self.config.max_inflight {
                break;
            }
            // Prefer buffered arrivals (they are older than the stream head).
            let job = if let Some(j) = self.pending.pop_front() {
                j
            } else {
                if self.head.is_none() {
                    self.head = self.stream.next();
                }
                match self.head {
                    Some(j) if SimTime::ZERO + Duration::from_micros(j.at_micros) <= now => {
                        self.head = None;
                        j
                    }
                    _ => break,
                }
            };
            self.dispatched += 1;
            let id = self.dispatched;
            let spec = self.spec_for(&job, id);
            self.inflight.insert(id, now);
            ctx.send(self.scheduler, UserCmd::Submit { id, spec });
        }
        // While the window is full, buffer due arrivals — but never more
        // than `max_pending`: past that the stream simply is not pulled.
        while (self.pending.len() as u32) < self.config.max_pending {
            if self.head.is_none() {
                self.head = self.stream.next();
            }
            match self.head {
                Some(j) if SimTime::ZERO + Duration::from_micros(j.at_micros) <= now => {
                    self.head = None;
                    self.pending.push_back(j);
                }
                _ => break,
            }
        }
        // Wake at the next arrival still in the future — but only if no
        // earlier wakeup is already armed. Arrivals are ordered, so an
        // armed timer is always at or before the current head's arrival.
        if let Some(j) = self.head {
            let at = SimTime::ZERO + Duration::from_micros(j.at_micros);
            if at > now && self.armed.is_none_or(|t| t <= now) {
                self.armed = Some(at);
                ctx.set_timer(at - now, TAG_ARRIVAL);
            }
        }
        self.persist(ctx);
    }

    fn persist(&mut self, ctx: &mut Ctx<'_>) {
        // Advance the oldest-in-flight pointer past completed ids.
        while self.oldest_cmd <= self.dispatched && !self.inflight.contains_key(&self.oldest_cmd) {
            self.oldest_cmd += 1;
        }
        let oldest_at_us = self
            .inflight
            .get(&self.oldest_cmd)
            .map_or(0, |t| t.micros());
        let node = ctx.node();
        ctx.store().put(node, "campaign/done", &self.done);
        ctx.store().put(node, "campaign/failed", &self.failed);
        ctx.store()
            .put(node, "campaign/dispatched", &self.dispatched);
        ctx.store().put(node, "campaign/digest", &self.digest);
        ctx.store()
            .put(node, "campaign/inflight", &(self.inflight.len() as u64));
        ctx.store()
            .put(node, "campaign/pending", &(self.pending.len() as u64));
        ctx.store()
            .put(node, "campaign/oldest_at_us", &oldest_at_us);
    }
}

impl Component for CampaignDriver {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.pump(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, tag: u64) {
        if tag == TAG_ARRIVAL {
            self.armed = None;
            self.pump(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: Addr, msg: AnyMsg) {
        let Some(event) = msg.downcast_ref::<UserEvent>() else {
            return;
        };
        match event {
            UserEvent::Submitted { id, job } => {
                self.jobs.insert(job.0, *id);
            }
            UserEvent::Status { job, status, .. } => {
                if !status.is_terminal() {
                    return;
                }
                let Some(cmd) = self.jobs.remove(&job.0) else {
                    return;
                };
                if self.inflight.remove(&cmd).is_none() {
                    return;
                }
                let outcome: u8 = match status {
                    JobStatus::Done => 0,
                    JobStatus::Removed => 2,
                    _ => 1,
                };
                if outcome == 0 {
                    self.done += 1;
                    ctx.metrics().incr("campaign.jobs_done", 1);
                } else {
                    self.failed += 1;
                    ctx.metrics().incr("campaign.jobs_failed", 1);
                }
                fnv1a(&mut self.digest, &cmd.to_le_bytes());
                fnv1a(&mut self.digest, &[outcome]);
                self.pump(ctx);
            }
            UserEvent::Log { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_streams_are_byte_identical() {
        let spec = CampaignSpec {
            jobs: 5_000,
            ..CampaignSpec::default()
        };
        let mut a = Vec::new();
        let mut b = Vec::new();
        for j in spec.stream() {
            j.encode(&mut a);
        }
        for j in spec.stream() {
            j.encode(&mut b);
        }
        assert_eq!(a, b);
        let other = CampaignSpec { seed: 43, ..spec };
        let mut c = Vec::new();
        for j in other.stream() {
            j.encode(&mut c);
        }
        assert_ne!(a, c);
    }

    #[test]
    fn stream_is_lazy_ordered_and_exact() {
        let spec = CampaignSpec {
            jobs: 20_000,
            ..CampaignSpec::default()
        };
        let mut last = 0u64;
        let mut count = 0u64;
        let mut sweeps = 0u64;
        for j in spec.stream() {
            assert!(j.at_micros >= last, "arrivals out of order");
            last = j.at_micros;
            count += 1;
            if j.kind == JobKind::Sweep {
                sweeps += 1;
            }
            assert!(j.runtime_secs >= 10);
            assert!(j.user < spec.users);
        }
        assert_eq!(count, spec.jobs);
        assert!(sweeps > 0, "no sweep bursts in the mix");
        assert!(sweeps < count, "everything became a sweep");
    }

    #[test]
    fn grid_is_deterministic_and_sized() {
        let spec = CampaignSpec {
            sites: 200,
            ..CampaignSpec::default()
        };
        let g1 = spec.grid();
        let g2 = spec.grid();
        assert_eq!(g1, g2);
        assert_eq!(g1.len(), 200);
        assert!(g1.iter().all(|s| (16..=512).contains(&s.cpus)));
    }
}
