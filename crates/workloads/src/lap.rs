//! The Linear Assignment Problem.
//!
//! Given an `n × n` cost matrix, find the permutation `σ` minimizing
//! `Σ cost[i][σ(i)]`. This is the kernel the paper's QAP campaign solved
//! 540 billion times; here it is the Hungarian algorithm in its O(n³)
//! shortest-augmenting-path form with dual potentials.

/// A solved assignment: `assignment[row] = column`, plus the optimal cost.
#[derive(Clone, Debug, PartialEq)]
pub struct LapSolution {
    /// Column chosen for each row.
    pub assignment: Vec<usize>,
    /// Total cost of the assignment.
    pub cost: f64,
}

/// Solve an `n × n` LAP. Panics if the matrix is not square (programming
/// error: the branch-and-bound always builds square reduced matrices).
///
/// ```
/// let cost = vec![
///     vec![4.0, 1.0, 3.0],
///     vec![2.0, 0.0, 5.0],
///     vec![3.0, 2.0, 2.0],
/// ];
/// let s = workloads::solve_lap(&cost);
/// assert_eq!(s.cost, 5.0);
/// ```
pub fn solve_lap(cost: &[Vec<f64>]) -> LapSolution {
    let n = cost.len();
    assert!(
        cost.iter().all(|row| row.len() == n),
        "cost matrix must be square"
    );
    if n == 0 {
        return LapSolution {
            assignment: Vec::new(),
            cost: 0.0,
        };
    }
    // 1-indexed arrays per the classic formulation.
    let inf = f64::INFINITY;
    let mut u = vec![0.0f64; n + 1]; // row potentials
    let mut v = vec![0.0f64; n + 1]; // column potentials
    let mut p = vec![0usize; n + 1]; // p[col] = row matched to col (0 = none)
    let mut way = vec![0usize; n + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the alternating path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut assignment = vec![0usize; n];
    for j in 1..=n {
        if p[j] != 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    let total: f64 = assignment
        .iter()
        .enumerate()
        .map(|(i, &j)| cost[i][j])
        .sum();
    LapSolution {
        assignment,
        cost: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(cost: &[Vec<f64>]) -> f64 {
        fn go(cost: &[Vec<f64>], row: usize, used: &mut Vec<bool>, acc: f64, best: &mut f64) {
            let n = cost.len();
            if row == n {
                if acc < *best {
                    *best = acc;
                }
                return;
            }
            for j in 0..n {
                if !used[j] {
                    used[j] = true;
                    go(cost, row + 1, used, acc + cost[row][j], best);
                    used[j] = false;
                }
            }
        }
        let mut best = f64::INFINITY;
        go(cost, 0, &mut vec![false; cost.len()], 0.0, &mut best);
        best
    }

    #[test]
    fn trivial_cases() {
        assert_eq!(solve_lap(&[]).cost, 0.0);
        let one = solve_lap(&[vec![7.0]]);
        assert_eq!(one.assignment, vec![0]);
        assert_eq!(one.cost, 7.0);
    }

    #[test]
    fn known_instance() {
        // Classic 3x3: optimal is 5 (0->1, 1->0, 2->2).
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let s = solve_lap(&cost);
        assert_eq!(s.cost, 5.0);
        // Assignment is a permutation.
        let mut seen = [false; 3];
        for &j in &s.assignment {
            assert!(!seen[j]);
            seen[j] = true;
        }
    }

    #[test]
    fn identity_is_optimal_for_diagonal_dominance() {
        // Strongly diagonal-favoring matrix.
        let n = 6;
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| if i == j { 0.0 } else { 10.0 + (i + j) as f64 })
                    .collect()
            })
            .collect();
        let s = solve_lap(&cost);
        assert_eq!(s.cost, 0.0);
        assert_eq!(s.assignment, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for n in 2..=6 {
            for _ in 0..20 {
                let cost: Vec<Vec<f64>> = (0..n)
                    .map(|_| (0..n).map(|_| rng.gen_range(0..100) as f64).collect())
                    .collect();
                let fast = solve_lap(&cost).cost;
                let slow = brute_force(&cost);
                assert!(
                    (fast - slow).abs() < 1e-9,
                    "n={n}: hungarian {fast} != brute {slow} for {cost:?}"
                );
            }
        }
    }

    #[test]
    fn handles_negative_costs() {
        let cost = vec![vec![-5.0, 2.0], vec![3.0, -4.0]];
        let s = solve_lap(&cost);
        assert_eq!(s.cost, -9.0);
    }
}
