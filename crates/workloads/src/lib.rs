#![warn(missing_docs)]
//! `workloads` — the applications of the paper's §6 "Experiences", plus
//! the generators the experiment harness sweeps over.
//!
//! * [`lap`] — a real Hungarian-algorithm solver for Linear Assignment
//!   Problems: the actual kernel of the record-setting QAP computation
//!   ("540 billion Linear Assignment Problems controlled by a
//!   sophisticated branch and bound algorithm").
//! * [`qap`] — Quadratic Assignment instances, the Gilmore–Lawler lower
//!   bound (each evaluation solves a LAP), and a small exact
//!   branch-and-bound solver used by the quickstart example to do genuine
//!   computation.
//! * [`mw`] — the Master–Worker driver of Experience 1: a component that
//!   keeps a target number of worker jobs in flight through the Condor-G
//!   API until the task pool drains.
//! * [`cms`] — the CMS pipeline generator of Experience 2: an N-way
//!   simulation fan-in to transfer and reconstruction, as a `DagSpec`.
//! * [`sweep`] — Nimrod-style parameter sweeps expressed as ordinary
//!   Condor-G submissions (the §7 comparison: the agent adds failure,
//!   credential, and dependency handling that Nimrod-G lacks).
//! * [`stats`] — small summary-statistics helpers for the experiment
//!   reports.
//! * [`campaign`] — deterministic multi-institution campaign generator
//!   and the streaming driver that pumps million-job campaigns through
//!   the agent with bounded memory.
//! * [`farm`] — the parallel sweep farm: independent `(scenario, seed)`
//!   cells fanned across threads with order-preserving, mergeable
//!   results.

pub mod campaign;
pub mod cms;
pub mod farm;
pub mod lap;
pub mod mw;
pub mod qap;
pub mod stats;
pub mod sweep;

pub use campaign::{CampaignDriver, CampaignJob, CampaignSpec, CampaignStream, DriverConfig};
pub use cms::cms_pipeline;
pub use farm::{run_cells, Cell, CellResult, FarmStats};
pub use lap::solve_lap;
pub use mw::{MwConfig, MwMaster};
pub use qap::{gilmore_lawler_bound, QapInstance, QapSolution};
pub use sweep::{Axis, ParamSweep};
