//! Parallel sweep farm: fan independent simulation cells across threads.
//!
//! A parameter sweep is a grid of `(scenario, seed)` cells, each a fully
//! independent deterministic simulation. The farm runs the cells across a
//! worker pool (`std::thread::scope`, no dependencies), preserves cell
//! order in the results, and merges per-cell statistics. Because every
//! cell owns its own `World` and its own seed, a parallel run is
//! *byte-identical* to a serial one — [`run_cells`] with `threads = 1` is
//! the reference the tests compare against.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One cell of a sweep: an opaque label plus the seed that makes it
/// deterministic. The farm never interprets `label`; it only reports it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cell {
    /// Scenario label (e.g. `"jobs=100k"`), carried through to results.
    pub label: String,
    /// Seed for this cell's simulation.
    pub seed: u64,
}

/// Per-cell outcome, mergeable into [`FarmStats`].
#[derive(Clone, Debug, PartialEq)]
pub struct CellResult {
    /// The cell's label, as given.
    pub label: String,
    /// The cell's seed, as given.
    pub seed: u64,
    /// Jobs completed successfully in this cell.
    pub jobs_done: u64,
    /// Jobs that ended failed/removed in this cell.
    pub jobs_failed: u64,
    /// Simulated seconds the cell covered.
    pub sim_secs: f64,
    /// Wall-clock seconds this cell took to simulate.
    pub wall_secs: f64,
    /// Determinism digest (e.g. an FNV over the cell's outcome stream).
    /// Serial and parallel runs of the same cell must agree exactly.
    pub digest: u64,
}

/// Merged statistics over a sweep's cells.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FarmStats {
    /// Number of cells merged.
    pub cells: u64,
    /// Total jobs completed across cells.
    pub jobs_done: u64,
    /// Total jobs failed across cells.
    pub jobs_failed: u64,
    /// Total simulated seconds across cells.
    pub sim_secs: f64,
    /// Sum of per-cell wall-clock seconds (serial-equivalent cost).
    pub cell_wall_secs: f64,
    /// Order-independent combination of the per-cell digests.
    pub digest: u64,
}

impl FarmStats {
    /// Fold one cell into the totals. The digest combines per-cell
    /// digests with a commutative mix so merge order cannot matter.
    pub fn merge(&mut self, cell: &CellResult) {
        self.cells += 1;
        self.jobs_done += cell.jobs_done;
        self.jobs_failed += cell.jobs_failed;
        self.sim_secs += cell.sim_secs;
        self.cell_wall_secs += cell.wall_secs;
        self.digest = self
            .digest
            .wrapping_add(cell.digest.rotate_left(17) ^ cell.seed);
    }

    /// Merge a whole result set.
    pub fn of(results: &[CellResult]) -> FarmStats {
        let mut stats = FarmStats::default();
        for r in results {
            stats.merge(r);
        }
        stats
    }
}

/// Run every cell through `run`, fanning across `threads` workers, and
/// return the results **in cell order** regardless of completion order.
///
/// `threads = 1` degenerates to a serial loop on the caller's thread (no
/// spawning), which is the equivalence baseline: per-cell determinism
/// means `run_cells(cells, 1, f) == run_cells(cells, n, f)` for any `n`.
/// Panics in `run` propagate to the caller.
pub fn run_cells<T, F>(cells: &[Cell], threads: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(&Cell) -> T + Sync,
{
    if threads <= 1 || cells.len() <= 1 {
        return cells.iter().map(&run).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(cells.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = cells.get(i) else { break };
                let result = run(cell);
                *slots[i].lock().unwrap() = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("cell not run"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cells(n: u64) -> Vec<Cell> {
        (0..n)
            .map(|i| Cell {
                label: format!("cell{i}"),
                seed: 1000 + i,
            })
            .collect()
    }

    fn fake_run(cell: &Cell) -> CellResult {
        // Deterministic in the seed, like a real simulation cell.
        let mut h = cell.seed ^ 0x9E37_79B9;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
        CellResult {
            label: cell.label.clone(),
            seed: cell.seed,
            jobs_done: cell.seed % 97,
            jobs_failed: cell.seed % 5,
            sim_secs: 3600.0,
            wall_secs: 0.0,
            digest: h,
        }
    }

    #[test]
    fn parallel_matches_serial_in_order_and_content() {
        let cells = cells(17);
        let serial = run_cells(&cells, 1, fake_run);
        for threads in [2, 4, 8] {
            let parallel = run_cells(&cells, threads, fake_run);
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn merged_stats_are_order_independent() {
        let cells = cells(9);
        let results = run_cells(&cells, 4, fake_run);
        let forward = FarmStats::of(&results);
        let mut reversed: Vec<CellResult> = results.clone();
        reversed.reverse();
        let backward = FarmStats::of(&reversed);
        assert_eq!(forward, backward);
        assert_eq!(forward.cells, 9);
        assert_eq!(
            forward.jobs_done,
            results.iter().map(|r| r.jobs_done).sum::<u64>()
        );
    }

    #[test]
    fn more_threads_than_cells_is_fine() {
        let cells = cells(3);
        let results = run_cells(&cells, 16, fake_run);
        assert_eq!(results.len(), 3);
        assert_eq!(results, run_cells(&cells, 1, fake_run));
    }
}
