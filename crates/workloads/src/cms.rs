//! The CMS high-energy-physics pipeline (Experience 2, paper §6).
//!
//! "A two-node Directed Acyclic Graph of jobs submitted to a Condor-G
//! agent at Caltech triggers 100 simulation jobs on the Condor pool at the
//! University of Wisconsin. Each of these jobs generates 500 events...
//! all events produced are transferred via GridFTP to a data repository at
//! NCSA. Once all simulation jobs terminate and all data is shipped...
//! the agent submits a subsequent reconstruction job to the PBS system
//! that manages the reconstruction cluster at NCSA."

use condor_g::api::GridJobSpec;
use condor_g::dagman::DagSpec;
use gridsim::time::Duration;

/// Parameters of a CMS-style pipeline.
#[derive(Clone, Debug)]
pub struct CmsParams {
    /// Simulation jobs (paper: 100).
    pub sim_jobs: usize,
    /// Events per simulation job (paper: 500).
    pub events_per_job: u64,
    /// CPU time per simulation job.
    pub sim_runtime: Duration,
    /// Bytes per event (drives the GridFTP transfer volume).
    pub bytes_per_event: u64,
    /// CPU time of the reconstruction job.
    pub recon_runtime: Duration,
    /// Processors the reconstruction job requests.
    pub recon_cpus: u32,
    /// DAG throttle ("makes sure that local disk buffers do not overflow").
    pub max_active: usize,
}

impl Default for CmsParams {
    fn default() -> CmsParams {
        CmsParams {
            sim_jobs: 100,
            events_per_job: 500,
            // 1200 CPU-hours over ~100 sim jobs + reconstruction: ~11 h per
            // simulation job fits the paper's "less than a day and a half".
            sim_runtime: Duration::from_hours(11),
            bytes_per_event: 1_000_000, // ~1 MB/event, era-plausible
            // Reconstruction: 8-way parallel for 10 wall-hours = 80
            // CPU-hours, bringing the total to the paper's ~1200.
            recon_runtime: Duration::from_hours(10),
            recon_cpus: 8,
            max_active: 50,
        }
    }
}

impl CmsParams {
    /// Total events the pipeline produces.
    pub fn total_events(&self) -> u64 {
        self.sim_jobs as u64 * self.events_per_job
    }

    /// Total bytes shipped to the repository.
    pub fn total_bytes(&self) -> u64 {
        self.total_events() * self.bytes_per_event
    }

    /// Total CPU-hours if everything runs once.
    pub fn total_cpu_hours(&self) -> f64 {
        self.sim_runtime.as_hours_f64() * self.sim_jobs as f64
            + self.recon_runtime.as_hours_f64() * f64::from(self.recon_cpus)
    }
}

/// Build the pipeline DAG: `sim_jobs` simulation nodes, each feeding its
/// events through a per-job transfer node (stdout = the event data,
/// staged over the wire), all gating the final reconstruction node.
///
/// `sim_requirements` / `recon_requirements` steer the broker (the paper
/// runs simulation at Wisconsin and reconstruction at NCSA).
pub fn cms_pipeline(
    params: &CmsParams,
    sim_requirements: Option<&str>,
    recon_requirements: Option<&str>,
) -> DagSpec {
    let mut dag = DagSpec::new();
    dag.max_active = params.max_active;
    let per_job_bytes = params.events_per_job * params.bytes_per_event;
    let mut sims = Vec::with_capacity(params.sim_jobs);
    for i in 0..params.sim_jobs {
        let mut spec = GridJobSpec::grid(
            &format!("cmsim-{i}"),
            "/home/jane/app.exe",
            params.sim_runtime,
        )
        // The simulated events ARE the job's output: staging them back is
        // the GridFTP transfer to the repository.
        .with_stdout(per_job_bytes);
        if let Some(req) = sim_requirements {
            spec = spec.with_requirements(req);
        }
        let idx = dag.add(&format!("sim{i}"), spec);
        dag.nodes[idx].retries = 3;
        sims.push(idx);
    }
    let mut recon = GridJobSpec::grid("cms-recon", "/home/jane/app.exe", params.recon_runtime)
        .with_count(params.recon_cpus);
    if let Some(req) = recon_requirements {
        recon = recon.with_requirements(req);
    }
    let recon_idx = dag.add("recon", recon);
    dag.nodes[recon_idx].retries = 3;
    for s in sims {
        dag.edge(s, recon_idx);
    }
    dag
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_arithmetic() {
        let p = CmsParams::default();
        assert_eq!(p.total_events(), 50_000, "paper: 50,000 events");
        assert!(
            (1100.0..1300.0).contains(&p.total_cpu_hours()),
            "paper: ~1200 CPU-hours, got {}",
            p.total_cpu_hours()
        );
    }

    #[test]
    fn pipeline_shape() {
        let p = CmsParams {
            sim_jobs: 10,
            ..CmsParams::default()
        };
        let dag = cms_pipeline(&p, Some("TARGET.Site == \"wisc\""), None);
        assert_eq!(dag.nodes.len(), 11);
        assert_eq!(dag.edges.len(), 10);
        dag.validate().unwrap();
        // Reconstruction depends on every simulation.
        let recon = dag.index_of("recon").unwrap();
        assert!(dag.edges.iter().all(|&(_, c)| c == recon));
        assert_eq!(dag.nodes[recon].spec.count, 8);
        // Requirements propagated to simulations only.
        assert!(dag.nodes[0].spec.requirements.is_some());
        assert!(dag.nodes[recon].spec.requirements.is_none());
    }
}
