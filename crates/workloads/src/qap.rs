//! Quadratic Assignment Problems and the Gilmore–Lawler bound.
//!
//! The paper's Experience 1 (\[3\], Anstreicher et al.) solved large QAPs by
//! branch-and-bound where every node evaluates lower bounds built from
//! Linear Assignment Problems. This module carries a faithful miniature:
//! QAP instances, the Gilmore–Lawler LAP-based bound, and an exact
//! branch-and-bound solver that really does enumerate and prune — the
//! quickstart example uses it so the "grid" computes something true.

use crate::lap::solve_lap;

/// A QAP instance: minimize `Σᵢⱼ flow[i][j] · dist[σ(i)][σ(j)]`.
#[derive(Clone, Debug, PartialEq)]
pub struct QapInstance {
    /// Facility-to-facility flow matrix.
    pub flow: Vec<Vec<f64>>,
    /// Location-to-location distance matrix.
    pub dist: Vec<Vec<f64>>,
}

/// A solved QAP.
#[derive(Clone, Debug, PartialEq)]
pub struct QapSolution {
    /// `assignment[facility] = location`.
    pub assignment: Vec<usize>,
    /// Objective value.
    pub cost: f64,
    /// Branch-and-bound nodes explored.
    pub nodes_explored: u64,
    /// LAP bound evaluations performed (the unit the paper counted 540
    /// billion of).
    pub laps_solved: u64,
}

impl QapInstance {
    /// Problem size.
    pub fn n(&self) -> usize {
        self.flow.len()
    }

    /// A deterministic pseudo-random instance (for examples and tests).
    pub fn synthetic(n: usize, seed: u64) -> QapInstance {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 100) as f64
        };
        let mut flow = vec![vec![0.0; n]; n];
        let mut dist = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    let f = next();
                    flow[i][j] = f;
                    flow[j][i] = f;
                    let d = next();
                    dist[i][j] = d;
                    dist[j][i] = d;
                }
            }
        }
        QapInstance { flow, dist }
    }

    /// Objective value of a complete assignment.
    pub fn objective(&self, assignment: &[usize]) -> f64 {
        let n = self.n();
        let mut total = 0.0;
        for i in 0..n {
            for j in 0..n {
                total += self.flow[i][j] * self.dist[assignment[i]][assignment[j]];
            }
        }
        total
    }
}

/// The Gilmore–Lawler lower bound for a partial assignment.
///
/// `partial[facility] = Some(location)` for fixed pairs. Returns `(bound,
/// laps_solved)`. Each call solves one LAP over the free
/// facilities/locations — this is exactly the work the paper's workers
/// performed.
pub fn gilmore_lawler_bound(qap: &QapInstance, partial: &[Option<usize>]) -> (f64, u64) {
    let n = qap.n();
    let fixed_cost = {
        let mut c = 0.0;
        for i in 0..n {
            for j in 0..n {
                if let (Some(li), Some(lj)) = (partial[i], partial[j]) {
                    c += qap.flow[i][j] * qap.dist[li][lj];
                }
            }
        }
        c
    };
    let free_fac: Vec<usize> = (0..n).filter(|i| partial[*i].is_none()).collect();
    let mut used_loc = vec![false; n];
    for p in partial.iter().flatten() {
        used_loc[*p] = true;
    }
    let free_loc: Vec<usize> = (0..n).filter(|l| !used_loc[*l]).collect();
    if free_fac.is_empty() {
        return (fixed_cost, 0);
    }
    // Cost of tentatively putting facility i at location l:
    //  - interaction with already-fixed facilities (exact), plus
    //  - a lower bound on interaction with other free facilities:
    //    ascending flows paired with descending distances.
    let m = free_fac.len();
    let mut lap_cost = vec![vec![0.0; m]; m];
    for (a, &i) in free_fac.iter().enumerate() {
        // Flows from i to other free facilities, ascending.
        let mut flows: Vec<f64> = free_fac
            .iter()
            .filter(|&&k| k != i)
            .map(|&k| qap.flow[i][k])
            .collect();
        flows.sort_by(|x, y| x.partial_cmp(y).unwrap());
        for (b, &l) in free_loc.iter().enumerate() {
            let mut exact = 0.0;
            for (k, p) in partial.iter().enumerate() {
                if let Some(lk) = *p {
                    // Both directions (flow is symmetric in our instances,
                    // but stay general).
                    exact += qap.flow[i][k] * qap.dist[l][lk];
                    exact += qap.flow[k][i] * qap.dist[lk][l];
                }
            }
            // Distances from l to other free locations, descending.
            let mut dists: Vec<f64> = free_loc
                .iter()
                .filter(|&&x| x != l)
                .map(|&x| qap.dist[l][x])
                .collect();
            dists.sort_by(|x, y| y.partial_cmp(x).unwrap());
            let inner: f64 = flows.iter().zip(&dists).map(|(f, d)| f * d).sum();
            lap_cost[a][b] = exact + inner;
        }
    }
    let lap = solve_lap(&lap_cost);
    (fixed_cost + lap.cost, 1)
}

/// Exact branch-and-bound with the Gilmore–Lawler bound. Practical for
/// `n ≤ 10` or so — enough for real computation in examples.
pub fn solve_qap(qap: &QapInstance) -> QapSolution {
    let n = qap.n();
    let mut best = QapSolution {
        assignment: (0..n).collect(),
        cost: qap.objective(&(0..n).collect::<Vec<_>>()),
        nodes_explored: 0,
        laps_solved: 0,
    };
    let mut partial = vec![None; n];
    let mut used = vec![false; n];
    branch(qap, 0, &mut partial, &mut used, &mut best);
    best
}

fn branch(
    qap: &QapInstance,
    depth: usize,
    partial: &mut Vec<Option<usize>>,
    used: &mut Vec<bool>,
    best: &mut QapSolution,
) {
    let n = qap.n();
    best.nodes_explored += 1;
    if depth == n {
        let assignment: Vec<usize> = partial.iter().map(|p| p.unwrap()).collect();
        let cost = qap.objective(&assignment);
        if cost < best.cost {
            best.cost = cost;
            best.assignment = assignment;
        }
        return;
    }
    let (bound, laps) = gilmore_lawler_bound(qap, partial);
    best.laps_solved += laps;
    if bound >= best.cost {
        return; // prune
    }
    for loc in 0..n {
        if used[loc] {
            continue;
        }
        partial[depth] = Some(loc);
        used[loc] = true;
        branch(qap, depth + 1, partial, used, best);
        partial[depth] = None;
        used[loc] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(qap: &QapInstance) -> f64 {
        fn go(
            qap: &QapInstance,
            depth: usize,
            assignment: &mut Vec<usize>,
            used: &mut Vec<bool>,
            best: &mut f64,
        ) {
            let n = qap.n();
            if depth == n {
                let c = qap.objective(assignment);
                if c < *best {
                    *best = c;
                }
                return;
            }
            for l in 0..n {
                if !used[l] {
                    used[l] = true;
                    assignment.push(l);
                    go(qap, depth + 1, assignment, used, best);
                    assignment.pop();
                    used[l] = false;
                }
            }
        }
        let mut best = f64::INFINITY;
        go(
            qap,
            0,
            &mut Vec::new(),
            &mut vec![false; qap.n()],
            &mut best,
        );
        best
    }

    #[test]
    fn bnb_matches_brute_force() {
        for (n, seed) in [(4usize, 1u64), (5, 2), (6, 3), (6, 4)] {
            let qap = QapInstance::synthetic(n, seed);
            let exact = brute_force(&qap);
            let s = solve_qap(&qap);
            assert!(
                (s.cost - exact).abs() < 1e-6,
                "n={n} seed={seed}: bnb {} != brute {exact}",
                s.cost
            );
            assert!((qap.objective(&s.assignment) - s.cost).abs() < 1e-9);
        }
    }

    #[test]
    fn bound_is_a_true_lower_bound_and_prunes() {
        let qap = QapInstance::synthetic(7, 9);
        let (root_bound, _) = gilmore_lawler_bound(&qap, &[None; 7]);
        let s = solve_qap(&qap);
        assert!(
            root_bound <= s.cost + 1e-9,
            "bound {root_bound} > optimum {}",
            s.cost
        );
        // Pruning must beat full enumeration: 7! = 5040 leaf nodes alone;
        // count interior too and demand a real reduction.
        assert!(
            s.nodes_explored < 5040,
            "no pruning: {} nodes",
            s.nodes_explored
        );
        assert!(s.laps_solved > 0);
    }

    #[test]
    fn bound_exact_when_fully_assigned() {
        let qap = QapInstance::synthetic(5, 5);
        let assignment: Vec<Option<usize>> = vec![Some(2), Some(0), Some(3), Some(1), Some(4)];
        let (bound, laps) = gilmore_lawler_bound(&qap, &assignment);
        let full: Vec<usize> = assignment.iter().map(|a| a.unwrap()).collect();
        assert!((bound - qap.objective(&full)).abs() < 1e-9);
        assert_eq!(laps, 0);
    }

    #[test]
    fn synthetic_instances_are_symmetric_with_zero_diagonal() {
        let qap = QapInstance::synthetic(6, 11);
        for i in 0..6 {
            assert_eq!(qap.flow[i][i], 0.0);
            assert_eq!(qap.dist[i][i], 0.0);
            for j in 0..6 {
                assert_eq!(qap.flow[i][j], qap.flow[j][i]);
                assert_eq!(qap.dist[i][j], qap.dist[j][i]);
            }
        }
    }
}
