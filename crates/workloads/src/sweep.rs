//! Nimrod-style parameter sweeps (paper §7 related work).
//!
//! "Nimrod provides a user interface for describing parameter sweep
//! problems, with the resulting independent jobs being submitted to a
//! resource management system; Nimrod-G generalizes Nimrod to use Globus
//! mechanisms... Condor-G addresses issues of failure, credential expiry,
//! and interjob dependencies that are not addressed by Nimrod or
//! Nimrod-G." Running a sweep *through* Condor-G therefore gets all of
//! the agent's robustness for free — which this module demonstrates by
//! generating sweeps as ordinary Condor-G submissions.

use condor_g::api::{GridJobSpec, Universe};
use gridsim::time::Duration;

/// One axis of a sweep: a named parameter and its values.
#[derive(Clone, Debug, PartialEq)]
pub struct Axis {
    /// Parameter name (becomes `--name=value` on the command line).
    pub name: String,
    /// The values to sweep.
    pub values: Vec<String>,
}

impl Axis {
    /// An axis over explicit string values.
    pub fn of(name: &str, values: &[&str]) -> Axis {
        Axis {
            name: name.to_string(),
            values: values.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// An axis over an inclusive numeric range with a step.
    pub fn range(name: &str, start: f64, end: f64, step: f64) -> Axis {
        assert!(step > 0.0, "step must be positive");
        let mut values = Vec::new();
        let mut v = start;
        while v <= end + 1e-9 {
            values.push(format!("{v}"));
            v += step;
        }
        Axis {
            name: name.to_string(),
            values,
        }
    }
}

/// A full cartesian parameter sweep.
///
/// ```
/// use workloads::{Axis, ParamSweep};
/// use gridsim::time::Duration;
///
/// let sweep = ParamSweep::new("/home/jane/model.exe", Duration::from_mins(20))
///     .axis(Axis::of("model", &["ising", "potts"]))
///     .axis(Axis::range("temp", 1.0, 2.0, 0.5));
/// assert_eq!(sweep.len(), 2 * 3);
/// let p = sweep.point(0);
/// assert_eq!(p.arguments, vec!["--model=ising", "--temp=1"]);
/// ```
#[derive(Clone, Debug)]
pub struct ParamSweep {
    /// Executable every point runs.
    pub executable: String,
    /// Per-point runtime.
    pub runtime: Duration,
    /// Universe for the generated jobs.
    pub universe: Universe,
    /// The swept axes.
    pub axes: Vec<Axis>,
    /// stdout bytes per point.
    pub stdout_size: u64,
}

impl ParamSweep {
    /// A sweep of `executable` with fixed per-point runtime.
    pub fn new(executable: &str, runtime: Duration) -> ParamSweep {
        ParamSweep {
            executable: executable.to_string(),
            runtime,
            universe: Universe::Grid,
            axes: Vec::new(),
            stdout_size: 0,
        }
    }

    /// Add an axis.
    pub fn axis(mut self, axis: Axis) -> ParamSweep {
        self.axes.push(axis);
        self
    }

    /// Run points in the pool universe instead.
    pub fn in_pool(mut self) -> ParamSweep {
        self.universe = Universe::Pool;
        self
    }

    /// Per-point stdout volume.
    pub fn with_stdout(mut self, bytes: u64) -> ParamSweep {
        self.stdout_size = bytes;
        self
    }

    /// Number of points in the sweep.
    pub fn len(&self) -> usize {
        self.axes.iter().map(|a| a.values.len()).product()
    }

    /// True when no axis has values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Generate the job for point `index` (row-major over the axes).
    pub fn point(&self, index: usize) -> GridJobSpec {
        assert!(index < self.len(), "point {index} out of range");
        let mut rem = index;
        let mut args = Vec::new();
        let mut label = String::new();
        // Last axis varies fastest.
        let mut coords = vec![0usize; self.axes.len()];
        for (i, axis) in self.axes.iter().enumerate().rev() {
            coords[i] = rem % axis.values.len();
            rem /= axis.values.len();
        }
        for (axis, &c) in self.axes.iter().zip(&coords) {
            args.push(format!("--{}={}", axis.name, axis.values[c]));
            if !label.is_empty() {
                label.push(',');
            }
            label.push_str(&format!("{}={}", axis.name, axis.values[c]));
        }
        let mut spec = match self.universe {
            Universe::Grid => {
                GridJobSpec::grid(&format!("sweep[{label}]"), &self.executable, self.runtime)
            }
            Universe::Pool => {
                GridJobSpec::pool(&format!("sweep[{label}]"), &self.executable, self.runtime)
            }
        };
        spec.arguments = args;
        spec.stdout_size = self.stdout_size;
        spec
    }

    /// All points, in order.
    pub fn points(&self) -> Vec<GridJobSpec> {
        (0..self.len()).map(|i| self.point(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> ParamSweep {
        ParamSweep::new("/home/jane/model.exe", Duration::from_mins(20))
            .axis(Axis::of("temperature", &["300", "350", "400"]))
            .axis(Axis::range("pressure", 1.0, 2.0, 0.5))
    }

    #[test]
    fn cartesian_size() {
        let s = sweep();
        assert_eq!(s.len(), 3 * 3);
        assert_eq!(s.points().len(), 9);
    }

    #[test]
    fn points_enumerate_all_combinations() {
        let s = sweep();
        let mut seen = std::collections::HashSet::new();
        for p in s.points() {
            assert_eq!(p.arguments.len(), 2);
            assert!(p.arguments[0].starts_with("--temperature="));
            assert!(p.arguments[1].starts_with("--pressure="));
            assert!(seen.insert(p.arguments.join(" ")), "duplicate point");
        }
        assert_eq!(seen.len(), 9);
    }

    #[test]
    fn last_axis_varies_fastest() {
        let s = sweep();
        let p0 = s.point(0);
        let p1 = s.point(1);
        assert_eq!(
            p0.arguments[0], p1.arguments[0],
            "first axis changed too early"
        );
        assert_ne!(p0.arguments[1], p1.arguments[1]);
    }

    #[test]
    fn range_axis_inclusive() {
        let a = Axis::range("x", 0.0, 1.0, 0.25);
        assert_eq!(a.values, vec!["0", "0.25", "0.5", "0.75", "1"]);
    }

    #[test]
    fn pool_universe_and_names() {
        let s = sweep().in_pool().with_stdout(128);
        let p = s.point(4);
        assert_eq!(p.universe, Universe::Pool);
        assert_eq!(p.stdout_size, 128);
        assert!(p.name.starts_with("sweep[temperature="), "{}", p.name);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_point_panics() {
        let _ = sweep().point(9);
    }
}
