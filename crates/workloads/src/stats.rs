//! Summary statistics and table formatting for the experiment reports.

/// Summary of a sample set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Median (nearest rank).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

/// Summarize samples. Returns a zeroed summary for empty input.
pub fn summarize(samples: &[f64]) -> Summary {
    if samples.is_empty() {
        return Summary {
            count: 0,
            mean: 0.0,
            min: 0.0,
            p50: 0.0,
            p90: 0.0,
            p99: 0.0,
            max: 0.0,
        };
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q = |p: f64| {
        let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
        sorted[idx]
    };
    Summary {
        count: sorted.len(),
        mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
        min: sorted[0],
        p50: q(0.5),
        p90: q(0.9),
        p99: q(0.99),
        max: sorted[sorted.len() - 1],
    }
}

/// A plain-text table builder for experiment output (the harness prints
/// the same rows the paper reports).
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for i in 0..ncol {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncol - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = summarize(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(s.count, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn summary_empty() {
        assert_eq!(summarize(&[]).count, 0);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["site", "cpus", "busy"]);
        t.row(&["wisconsin".into(), "700".into(), "423.5".into()]);
        t.row(&["anl".into(), "96".into(), "88.0".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("site"));
        assert!(lines[2].starts_with("wisconsin"));
        // Columns align: "cpus" column starts at same offset in all rows.
        let col = lines[0].find("cpus").unwrap();
        assert_eq!(&lines[2][col..col + 3], "700");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
