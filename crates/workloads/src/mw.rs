//! The Master–Worker driver (Experience 1, paper §6).
//!
//! "Each worker in this Master-Worker application was implemented as an
//! independent Condor job that used Remote I/O services to communicate
//! with the Master." The master keeps a target number of worker jobs in
//! flight through the Condor-G user API; each worker consumes one task
//! whose service time comes from a configured distribution. The component
//! records throughput so the E1 experiment can reproduce the paper's
//! CPU-hour and concurrency numbers.

use condor_g::api::{GridJobSpec, JobStatus, Universe};
use condor_g::{UserCmd, UserEvent};
use gridsim::prelude::*;
use gridsim::rng::Dist;
use gridsim::AnyMsg;
use std::collections::BTreeMap;

/// Master–Worker configuration.
#[derive(Clone, Debug)]
pub struct MwConfig {
    /// Keep this many worker jobs in flight.
    pub target_outstanding: u32,
    /// Total tasks to process (`None` = unbounded; stop the sim by time).
    pub total_tasks: Option<u64>,
    /// Service-time distribution for one worker task (seconds).
    pub task_runtime: Dist,
    /// Universe for workers (the paper's campaign used the pool/standard
    /// universe with remote I/O; the direct-GRAM variant works too).
    pub universe: Universe,
    /// Remote-I/O chatter per worker (pool universe only).
    pub io_interval_secs: Option<f64>,
    /// Remote-I/O bytes per batch.
    pub io_bytes: u64,
    /// stdout bytes per worker (grid universe staging).
    pub stdout_size: u64,
}

impl Default for MwConfig {
    fn default() -> MwConfig {
        MwConfig {
            target_outstanding: 64,
            total_tasks: Some(1000),
            task_runtime: Dist::LogNormal {
                median: 600.0,
                sigma: 0.8,
            },
            universe: Universe::Pool,
            io_interval_secs: Some(300.0),
            io_bytes: 32 * 1024,
            stdout_size: 0,
        }
    }
}

const TAG_PUMP: u64 = 1;

/// The master component.
pub struct MwMaster {
    scheduler: Addr,
    config: MwConfig,
    dispatched: u64,
    completed: u64,
    failed_attempts: u64,
    outstanding: BTreeMap<u64, ()>, // command-id keyed
    jobs: BTreeMap<u64, u64>,       // grid job id -> command id
    rng_stream: Option<gridsim::rng::SimRng>,
}

impl MwMaster {
    /// A master driving the Condor-G scheduler at `scheduler`.
    pub fn new(scheduler: Addr, config: MwConfig) -> MwMaster {
        MwMaster {
            scheduler,
            config,
            dispatched: 0,
            completed: 0,
            failed_attempts: 0,
            outstanding: BTreeMap::new(),
            jobs: BTreeMap::new(),
            rng_stream: None,
        }
    }

    /// Tasks completed so far (also mirrored to stable storage as
    /// `mw/completed`).
    pub fn completed(world: &gridsim::World, node: NodeId) -> u64 {
        world.store().get(node, "mw/completed").unwrap_or(0)
    }

    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        loop {
            if self.outstanding.len() as u32 >= self.config.target_outstanding {
                break;
            }
            if let Some(total) = self.config.total_tasks {
                if self.dispatched >= total {
                    break;
                }
            }
            self.dispatched += 1;
            let id = self.dispatched;
            let runtime = {
                let rng = self.rng_stream.as_mut().expect("seeded on start");
                rng.duration(&self.config.task_runtime)
            };
            let mut spec = match self.config.universe {
                Universe::Pool => {
                    GridJobSpec::pool(&format!("worker-{id}"), "/home/jane/worker.exe", runtime)
                }
                Universe::Grid => {
                    GridJobSpec::grid(&format!("worker-{id}"), "/home/jane/worker.exe", runtime)
                        .with_stdout(self.config.stdout_size)
                }
            };
            if let Some(io) = self.config.io_interval_secs {
                spec = spec.with_remote_io(io, self.config.io_bytes);
            }
            self.outstanding.insert(id, ());
            ctx.send(self.scheduler, UserCmd::Submit { id, spec });
        }
        self.persist(ctx);
    }

    fn persist(&self, ctx: &mut Ctx<'_>) {
        let node = ctx.node();
        ctx.store().put(node, "mw/completed", &self.completed);
        ctx.store().put(node, "mw/dispatched", &self.dispatched);
        ctx.store()
            .put(node, "mw/failed_attempts", &self.failed_attempts);
    }
}

impl Component for MwMaster {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.rng_stream = Some(ctx.rng().fork());
        self.pump(ctx);
        ctx.set_timer(Duration::from_mins(1), TAG_PUMP);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, tag: u64) {
        if tag == TAG_PUMP {
            self.pump(ctx);
            ctx.set_timer(Duration::from_mins(1), TAG_PUMP);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: Addr, msg: AnyMsg) {
        let Some(event) = msg.downcast_ref::<UserEvent>() else {
            return;
        };
        match event {
            UserEvent::Submitted { id, job } => {
                self.jobs.insert(job.0, *id);
            }
            UserEvent::Status { job, status, .. } => {
                let Some(&cmd) = self.jobs.get(&job.0) else {
                    return;
                };
                match status {
                    JobStatus::Done
                        if self.outstanding.remove(&cmd).is_some() => {
                            self.completed += 1;
                            ctx.metrics().incr("mw.tasks_completed", 1);
                            self.pump(ctx);
                        }
                    JobStatus::Failed(_) | JobStatus::Removed
                        // The agent already retried below us; a terminal
                        // failure means the task must be re-dispatched as a
                        // fresh job.
                        if self.outstanding.remove(&cmd).is_some() => {
                            self.failed_attempts += 1;
                            ctx.metrics().incr("mw.task_failures", 1);
                            // Put the task back in the pool.
                            if self.config.total_tasks.is_some() {
                                self.dispatched -= 1;
                            }
                            self.pump(ctx);
                        }
                    _ => {}
                }
            }
            UserEvent::Log { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let c = MwConfig::default();
        assert!(c.target_outstanding > 0);
        assert_eq!(c.universe, Universe::Pool);
        assert!(c.task_runtime.mean() > 0.0);
    }
}
