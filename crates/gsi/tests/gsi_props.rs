//! Property-based tests for the GSI simulation: delegation chains of any
//! depth obey the min-expiry rule the §4.3 credential machinery relies on,
//! verification is exactly bounded by the chain's validity window, and the
//! toy signature scheme never verifies tampered data.

use gridsim::time::{Duration, SimTime};
use gsi::{CertificateAuthority, KeyPair, ProxyCredential};
use proptest::prelude::*;

/// Build a user identity and an initial proxy, then apply `steps` further
/// delegations at the given (time offset, requested lifetime) points.
fn chain(
    seed: u64,
    first_lifetime_hours: u64,
    steps: &[(u64, u64)],
) -> (CertificateAuthority, ProxyCredential) {
    let mut ca = CertificateAuthority::new("/CN=CA", seed);
    let id = ca.issue_identity("/CN=user", Duration::from_days(3650));
    let mut proxy = id.new_proxy(SimTime::ZERO, Duration::from_hours(first_lifetime_hours));
    for &(at_mins, hours) in steps {
        proxy = proxy.delegate(
            SimTime::ZERO + Duration::from_mins(at_mins),
            Duration::from_hours(hours),
        );
    }
    (ca, proxy)
}

proptest! {
    /// Effective expiry is exactly the minimum not-after along the chain —
    /// no delegation can extend a credential's life.
    #[test]
    fn delegation_never_extends_lifetime(
        seed in 1u64..1000,
        first in 1u64..48,
        steps in proptest::collection::vec((0u64..30, 1u64..48), 0..5),
    ) {
        let (_ca, proxy) = chain(seed, first, &steps);
        let parent_expiry = SimTime::ZERO + Duration::from_hours(first);
        prop_assert!(proxy.expires_at() <= parent_expiry);
        prop_assert_eq!(proxy.delegation_depth(), 1 + steps.len());
    }

    /// Verification succeeds strictly inside the window and fails strictly
    /// outside it (sampled at minute granularity around the boundary).
    #[test]
    fn verification_bounded_by_effective_expiry(
        seed in 1u64..1000,
        first in 2u64..48,
        steps in proptest::collection::vec((0u64..30, 1u64..48), 0..4),
        probe_mins in 31u64..5000,
    ) {
        let (ca, proxy) = chain(seed, first, &steps);
        let trust = ca.trust_root();
        let expiry = proxy.expires_at();
        // All delegations happen by t=30min, so any probe after that point
        // is inside every cert's not-before.
        let probe = SimTime::ZERO + Duration::from_mins(probe_mins);
        let verdict = proxy.verify(probe, &trust);
        if probe < expiry {
            prop_assert!(verdict.is_ok(), "{verdict:?} at {probe:?}, expiry {expiry:?}");
            prop_assert_eq!(verdict.unwrap(), "/CN=user");
        } else {
            prop_assert!(verdict.is_err(), "verified past expiry {expiry:?} at {probe:?}");
        }
    }

    /// Deeper delegations still authenticate as the original user: the
    /// subject a gatekeeper maps through its gridmap never changes.
    #[test]
    fn delegation_preserves_subject(
        seed in 1u64..1000,
        steps in proptest::collection::vec((0u64..30, 1u64..48), 1..5),
    ) {
        let (ca, proxy) = chain(seed, 72, &steps);
        let dn = proxy.verify(SimTime::ZERO + Duration::from_hours(1), &ca.trust_root());
        prop_assert_eq!(dn.unwrap(), "/CN=user");
        prop_assert_eq!(proxy.subject(), "/CN=user");
    }

    /// Signatures verify for the signed bytes and for nothing else.
    #[test]
    fn signatures_bind_to_the_exact_message(
        seed in any::<u64>(),
        msg in proptest::collection::vec(any::<u8>(), 0..64),
        tamper in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let kp = KeyPair::from_seed(seed);
        let sig = kp.sign(&msg);
        prop_assert!(kp.public().verify(&msg, &sig));
        if tamper != msg {
            prop_assert!(!kp.public().verify(&tamper, &sig));
        }
    }

    /// A signature from one key never verifies under another key.
    #[test]
    fn signatures_bind_to_the_key(
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        msg in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        prop_assume!(seed_a != seed_b);
        let a = KeyPair::from_seed(seed_a);
        let b = KeyPair::from_seed(seed_b);
        let sig = a.sign(&msg);
        prop_assert!(!b.public().verify(&msg, &sig));
    }

    /// Credentials from a foreign CA are always rejected, at every depth.
    #[test]
    fn foreign_ca_rejected_at_any_depth(
        seed in 1u64..1000,
        steps in proptest::collection::vec((0u64..30, 1u64..48), 0..4),
    ) {
        let (_ca, proxy) = chain(seed, 72, &steps);
        let other = CertificateAuthority::new("/CN=Imposter", seed ^ 0xBEEF);
        prop_assert!(proxy
            .verify(SimTime::ZERO + Duration::from_hours(1), &other.trust_root())
            .is_err());
    }
}
