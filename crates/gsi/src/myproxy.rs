//! MyProxy — an online credential repository (paper §4.3, citing \[23\]).
//!
//! "MyProxy lets a user store a long-lived proxy credential (e.g. a week)
//! on a secure server. Remote services acting on behalf of the user can
//! then obtain short-lived proxies (e.g. 12 hours) from the server."
//!
//! The server is a gridsim [`Component`]: the Condor-G credential monitor
//! sends it [`MyProxyRequest::Retrieve`] messages over the simulated
//! network and receives fresh short-lived delegations back.

use crate::proxy::ProxyCredential;
use gridsim::prelude::*;
use gridsim::AnyMsg;
use std::collections::HashMap;

/// Requests understood by the MyProxy server.
#[derive(Debug)]
pub enum MyProxyRequest {
    /// Store a long-lived credential under `(user, passphrase)`.
    Store {
        /// Account name on the MyProxy server.
        user: String,
        /// Shared secret for retrieval.
        passphrase: u64,
        /// The long-lived proxy to deposit.
        credential: ProxyCredential,
    },
    /// Retrieve a fresh short-lived proxy.
    Retrieve {
        /// Account name.
        user: String,
        /// Shared secret.
        passphrase: u64,
        /// Requested lifetime of the derived proxy.
        lifetime: Duration,
        /// Correlation id echoed in the reply.
        request_id: u64,
    },
}

/// Replies from the MyProxy server.
#[derive(Debug)]
pub enum MyProxyReply {
    /// Store succeeded.
    Stored {
        /// The account stored under.
        user: String,
    },
    /// A fresh short-lived proxy.
    Proxy {
        /// Correlation id from the request.
        request_id: u64,
        /// The derived credential.
        credential: ProxyCredential,
    },
    /// Retrieval failed.
    Denied {
        /// Correlation id from the request.
        request_id: u64,
        /// Why (bad passphrase, unknown user, stored credential expired).
        reason: String,
    },
}

/// The MyProxy server component.
#[derive(Default)]
pub struct MyProxyServer {
    vault: HashMap<String, (u64, ProxyCredential)>,
}

impl MyProxyServer {
    /// An empty vault.
    pub fn new() -> MyProxyServer {
        MyProxyServer::default()
    }
}

impl Component for MyProxyServer {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Addr, msg: AnyMsg) {
        let Ok(req) = msg.downcast::<MyProxyRequest>() else {
            return;
        };
        match *req {
            MyProxyRequest::Store {
                user,
                passphrase,
                credential,
            } => {
                ctx.trace("myproxy.store", format!("user={user}"));
                ctx.metrics().incr("myproxy.stored", 1);
                self.vault.insert(user.clone(), (passphrase, credential));
                ctx.send(from, MyProxyReply::Stored { user });
            }
            MyProxyRequest::Retrieve {
                user,
                passphrase,
                lifetime,
                request_id,
            } => {
                let now = ctx.now();
                let reply = match self.vault.get(&user) {
                    None => MyProxyReply::Denied {
                        request_id,
                        reason: format!("no credential stored for {user}"),
                    },
                    Some((stored_pass, _)) if *stored_pass != passphrase => MyProxyReply::Denied {
                        request_id,
                        reason: "bad passphrase".into(),
                    },
                    Some((_, cred)) if cred.is_expired(now) => MyProxyReply::Denied {
                        request_id,
                        reason: "stored credential has expired".into(),
                    },
                    Some((_, cred)) => {
                        ctx.metrics().incr("myproxy.retrievals", 1);
                        MyProxyReply::Proxy {
                            request_id,
                            credential: cred.delegate(now, lifetime),
                        }
                    }
                };
                if matches!(reply, MyProxyReply::Denied { .. }) {
                    ctx.metrics().incr("myproxy.denied", 1);
                }
                ctx.trace("myproxy.retrieve", format!("user={user}"));
                ctx.send(from, reply);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::CertificateAuthority;
    use gridsim::{Config, World};

    /// A test client that stores then retrieves.
    struct Client {
        server: Addr,
        long_proxy: Option<ProxyCredential>,
        lifetime: Duration,
        retrieve_at: Duration,
    }

    impl Component for Client {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.send(
                self.server,
                MyProxyRequest::Store {
                    user: "jane".into(),
                    passphrase: 7777,
                    credential: self.long_proxy.take().unwrap(),
                },
            );
            ctx.set_timer(self.retrieve_at, 1);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, _tag: u64) {
            ctx.send(
                self.server,
                MyProxyRequest::Retrieve {
                    user: "jane".into(),
                    passphrase: 7777,
                    lifetime: self.lifetime,
                    request_id: 1,
                },
            );
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: Addr, msg: AnyMsg) {
            if let Some(MyProxyReply::Proxy { credential, .. }) = msg.downcast_ref::<MyProxyReply>()
            {
                let node = ctx.node();
                let expiry = credential.expires_at().micros();
                ctx.store().put(node, "got_proxy_expiry", &expiry);
            } else if let Some(MyProxyReply::Denied { reason, .. }) =
                msg.downcast_ref::<MyProxyReply>()
            {
                let node = ctx.node();
                ctx.store().put(node, "denied", &reason.clone());
            }
        }
    }

    fn long_proxy() -> (CertificateAuthority, ProxyCredential) {
        let mut ca = CertificateAuthority::new("/CN=CA", 3);
        let id = ca.issue_identity("/CN=jane", Duration::from_days(365));
        let p = id.new_proxy(SimTime::ZERO, Duration::from_days(7));
        (ca, p)
    }

    #[test]
    fn store_then_retrieve_short_proxy() {
        let (ca, long) = long_proxy();
        let mut w = World::new(Config::default().seed(5));
        let ns = w.add_node("myproxy.ncsa.edu");
        let nc = w.add_node("submit.wisc.edu");
        let server = w.add_component(ns, "myproxy", MyProxyServer::new());
        w.add_component(
            nc,
            "client",
            Client {
                server,
                long_proxy: Some(long),
                lifetime: Duration::from_hours(12),
                retrieve_at: Duration::from_hours(1),
            },
        );
        w.run_until_quiescent();
        let expiry = w
            .store()
            .get::<u64>(nc, "got_proxy_expiry")
            .expect("retrieved");
        // Short proxy expires ~12h after the retrieve, far before the 7-day parent.
        let got = SimTime(expiry);
        assert!(got > SimTime::ZERO + Duration::from_hours(12));
        assert!(got <= SimTime::ZERO + Duration::from_hours(14));
        // And the derived proxy authenticates as jane.
        let _ = ca;
        assert_eq!(w.metrics().counter("myproxy.retrievals"), 1);
    }

    #[test]
    fn bad_passphrase_denied() {
        let (_ca, long) = long_proxy();
        let mut w = World::new(Config::default().seed(5));
        let ns = w.add_node("s");
        let nc = w.add_node("c");
        let server = w.add_component(ns, "myproxy", MyProxyServer::new());
        struct BadClient {
            server: Addr,
            long_proxy: Option<ProxyCredential>,
        }
        impl Component for BadClient {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.send(
                    self.server,
                    MyProxyRequest::Store {
                        user: "jane".into(),
                        passphrase: 1,
                        credential: self.long_proxy.take().unwrap(),
                    },
                );
                ctx.set_timer(Duration::from_secs(1), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, _tag: u64) {
                ctx.send(
                    self.server,
                    MyProxyRequest::Retrieve {
                        user: "jane".into(),
                        passphrase: 2,
                        lifetime: Duration::from_hours(12),
                        request_id: 9,
                    },
                );
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: Addr, msg: AnyMsg) {
                if let Some(MyProxyReply::Denied { .. }) = msg.downcast_ref::<MyProxyReply>() {
                    let node = ctx.node();
                    ctx.store().put(node, "denied", &true);
                }
            }
        }
        w.add_component(
            nc,
            "client",
            BadClient {
                server,
                long_proxy: Some(long),
            },
        );
        w.run_until_quiescent();
        assert_eq!(w.store().get::<bool>(nc, "denied"), Some(true));
        assert_eq!(w.metrics().counter("myproxy.denied"), 1);
    }
}
