//! Simulated public-key primitives.
//!
//! See the crate docs: this is a behavioural stand-in, not cryptography.
//! The capability boundary is Rust ownership — only code holding a
//! [`KeyPair`] (which contains the secret) can produce signatures that
//! verify against its [`PublicKey`].

use serde::{Deserialize, Serialize};

/// A public key (derived deterministically from the secret).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PublicKey(pub u64);

/// A signature over a byte string.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Signature(pub u64);

/// A key pair. The secret never leaves this struct.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct KeyPair {
    secret: u64,
    public: PublicKey,
}

/// 64-bit mix (splitmix64 finalizer) — good avalanche, fully deterministic.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hash a byte string to 64 bits (FNV-1a then mixed).
pub fn digest(data: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    mix(h)
}

impl KeyPair {
    /// Derive a key pair from seed material (deterministic).
    pub fn from_seed(seed: u64) -> KeyPair {
        let secret = mix(seed ^ 0xA5A5_A5A5_5A5A_5A5A);
        KeyPair {
            secret,
            public: PublicKey(mix(secret)),
        }
    }

    /// The public half.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// Sign a byte string. Only a holder of the pair can do this.
    pub fn sign(&self, data: &[u8]) -> Signature {
        // The "signature" binds the secret-derived public key and the data.
        Signature(mix(self.secret ^ digest(data)))
    }
}

impl PublicKey {
    /// Verify `sig` over `data`.
    ///
    /// Simulated check: recompute what the owner of this public key would
    /// have produced. (The secret is recoverable here only because `mix` is
    /// invertible *in principle*; within the simulation no component
    /// attempts that, and the type system keeps secrets in `KeyPair`.)
    pub fn verify(&self, data: &[u8], sig: &Signature) -> bool {
        // We cannot recompute from the public key without the secret in a
        // real scheme; the simulation instead checks a congruence that only
        // the matching secret satisfies: sig == mix(secret ^ digest(data))
        // and public == mix(secret). We verify by searching nothing —
        // instead we exploit that mix is a bijection: secret = unmix(public)
        // is well-defined, so verification is exact.
        let secret = unmix(self.0);
        sig.0 == mix(secret ^ digest(data))
    }
}

/// Inverse of the splitmix64 finalizer (it is a bijection on u64).
fn unmix(mut x: u64) -> u64 {
    // Invert x ^= x >> 31 (applied as last step of mix).
    x ^= x >> 31; // bits 33..64 correct; one more round fixes the rest
    x ^= x >> 62;
    x = x.wrapping_mul(0x3196_42B2_D24D_8EC3); // inverse of 0x94D0_49BB_1331_11EB
    x ^= (x >> 27) ^ (x >> 54);
    x = x.wrapping_mul(0x96DE_1B17_3F11_9089); // inverse of 0xBF58_476D_1CE4_E5B9
    x ^= (x >> 30) ^ (x >> 60);
    x.wrapping_sub(0x9E37_79B9_7F4A_7C15)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmix_inverts_mix() {
        for seed in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF] {
            let m = mix(seed);
            assert_eq!(unmix(m), seed, "seed {seed:#x}");
        }
        // And across a spread of values.
        let mut x = 7u64;
        for _ in 0..1000 {
            x = mix(x);
            assert_eq!(mix(unmix(x)), x);
        }
    }

    #[test]
    fn sign_verify_round_trip() {
        let kp = KeyPair::from_seed(7);
        let sig = kp.sign(b"run program P");
        assert!(kp.public().verify(b"run program P", &sig));
    }

    #[test]
    fn tampered_data_fails() {
        let kp = KeyPair::from_seed(7);
        let sig = kp.sign(b"run program P");
        assert!(!kp.public().verify(b"run program Q", &sig));
    }

    #[test]
    fn wrong_key_fails() {
        let kp1 = KeyPair::from_seed(7);
        let kp2 = KeyPair::from_seed(8);
        let sig = kp1.sign(b"data");
        assert!(!kp2.public().verify(b"data", &sig));
    }

    #[test]
    fn distinct_seeds_distinct_keys() {
        let a = KeyPair::from_seed(1);
        let b = KeyPair::from_seed(2);
        assert_ne!(a.public(), b.public());
    }

    #[test]
    fn digest_is_stable_and_spread() {
        assert_eq!(digest(b"abc"), digest(b"abc"));
        assert_ne!(digest(b"abc"), digest(b"abd"));
        assert_ne!(digest(b""), digest(b"\0"));
    }
}
