//! Certificates, the certificate authority, and identity credentials.

use crate::keys::{digest, KeyPair, PublicKey, Signature};
use crate::proxy::ProxyCredential;
use gridsim::time::{Duration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why verification failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AuthError {
    /// A certificate in the chain has a bad signature.
    BadSignature {
        /// Whose certificate.
        subject: String,
    },
    /// A certificate is not yet valid or has expired.
    Expired {
        /// Whose certificate.
        subject: String,
        /// When it stopped being valid.
        not_after: SimTime,
    },
    /// The chain does not terminate at a trusted root.
    UntrustedIssuer {
        /// The untrusted issuer's DN.
        issuer: String,
    },
    /// A proxy certificate's issuer is not the preceding chain element.
    BrokenChain {
        /// Where the chain broke.
        subject: String,
    },
    /// The chain is empty.
    EmptyChain,
}

impl fmt::Display for AuthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthError::BadSignature { subject } => {
                write!(f, "bad signature on certificate for {subject}")
            }
            AuthError::Expired { subject, not_after } => {
                write!(f, "certificate for {subject} expired at {not_after}")
            }
            AuthError::UntrustedIssuer { issuer } => write!(f, "untrusted issuer {issuer}"),
            AuthError::BrokenChain { subject } => {
                write!(f, "broken delegation chain at {subject}")
            }
            AuthError::EmptyChain => write!(f, "empty credential chain"),
        }
    }
}

impl std::error::Error for AuthError {}

/// A (simulated) X.509-style certificate binding a subject DN to a key.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Certificate {
    /// Distinguished name of the holder.
    pub subject: String,
    /// Distinguished name of the signer.
    pub issuer: String,
    /// The holder's public key.
    pub public_key: PublicKey,
    /// Start of validity.
    pub not_before: SimTime,
    /// End of validity.
    pub not_after: SimTime,
    /// Issuer's signature over the other fields.
    pub signature: Signature,
}

impl Certificate {
    /// The byte string the issuer signs.
    fn to_be_signed(
        subject: &str,
        issuer: &str,
        public_key: PublicKey,
        not_before: SimTime,
        not_after: SimTime,
    ) -> Vec<u8> {
        let mut data = Vec::with_capacity(subject.len() + issuer.len() + 32);
        data.extend_from_slice(subject.as_bytes());
        data.push(0);
        data.extend_from_slice(issuer.as_bytes());
        data.push(0);
        data.extend_from_slice(&public_key.0.to_le_bytes());
        data.extend_from_slice(&not_before.micros().to_le_bytes());
        data.extend_from_slice(&not_after.micros().to_le_bytes());
        data
    }

    /// Create and sign a certificate with the issuer's key.
    pub fn issue(
        issuer_key: &KeyPair,
        issuer_dn: &str,
        subject: &str,
        subject_key: PublicKey,
        not_before: SimTime,
        not_after: SimTime,
    ) -> Certificate {
        let tbs = Certificate::to_be_signed(subject, issuer_dn, subject_key, not_before, not_after);
        Certificate {
            subject: subject.to_string(),
            issuer: issuer_dn.to_string(),
            public_key: subject_key,
            not_before,
            not_after,
            signature: issuer_key.sign(&tbs),
        }
    }

    /// Check this certificate's signature against the claimed issuer key.
    pub fn signature_valid(&self, issuer_key: PublicKey) -> bool {
        let tbs = Certificate::to_be_signed(
            &self.subject,
            &self.issuer,
            self.public_key,
            self.not_before,
            self.not_after,
        );
        issuer_key.verify(&tbs, &self.signature)
    }

    /// Check temporal validity at `now`.
    pub fn valid_at(&self, now: SimTime) -> bool {
        self.not_before <= now && now < self.not_after
    }
}

/// The set of CA certificates a verifier trusts.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TrustRoot {
    roots: Vec<(String, PublicKey)>,
}

impl TrustRoot {
    /// Empty trust store.
    pub fn new() -> TrustRoot {
        TrustRoot::default()
    }

    /// Trust a CA by DN and public key.
    pub fn add(&mut self, dn: &str, key: PublicKey) {
        self.roots.push((dn.to_string(), key));
    }

    /// Look up a trusted CA key by DN.
    pub fn key_for(&self, dn: &str) -> Option<PublicKey> {
        self.roots.iter().find(|(d, _)| d == dn).map(|&(_, k)| k)
    }
}

/// A certificate authority: issues user identity certificates.
pub struct CertificateAuthority {
    dn: String,
    key: KeyPair,
    issued: u64,
}

impl CertificateAuthority {
    /// Create a CA with the given distinguished name and key seed.
    pub fn new(dn: &str, seed: u64) -> CertificateAuthority {
        CertificateAuthority {
            dn: dn.to_string(),
            key: KeyPair::from_seed(seed),
            issued: 0,
        }
    }

    /// The CA's distinguished name.
    pub fn dn(&self) -> &str {
        &self.dn
    }

    /// A one-entry trust store containing this CA.
    pub fn trust_root(&self) -> TrustRoot {
        let mut t = TrustRoot::new();
        t.add(&self.dn, self.key.public());
        t
    }

    /// Issue a long-lived identity credential (user certificate + key).
    pub fn issue_identity(&mut self, subject: &str, lifetime: Duration) -> Identity {
        self.issued += 1;
        let user_key = KeyPair::from_seed(digest(subject.as_bytes()) ^ self.issued);
        let cert = Certificate::issue(
            &self.key,
            &self.dn,
            subject,
            user_key.public(),
            SimTime::ZERO,
            SimTime::ZERO + lifetime,
        );
        Identity {
            cert,
            key: user_key,
        }
    }
}

/// A user's long-lived identity: certificate plus private key. In real GSI
/// this is the passphrase-protected key the user never hands to agents.
#[derive(Clone, Debug)]
pub struct Identity {
    /// The CA-signed user certificate.
    pub cert: Certificate,
    key: KeyPair,
}

impl Identity {
    /// The subject distinguished name.
    pub fn subject(&self) -> &str {
        &self.cert.subject
    }

    /// Create a proxy credential valid for `lifetime` from `now` (§3.1:
    /// "GSI employs the user's private key to create a proxy credential").
    /// The proxy's lifetime is clamped to the identity certificate's own.
    pub fn new_proxy(&self, now: SimTime, lifetime: Duration) -> ProxyCredential {
        let proxy_key = KeyPair::from_seed(
            digest(self.cert.subject.as_bytes()) ^ now.micros() ^ 0x50_52_4F_58_59, // "PROXY"
        );
        let not_after = (now + lifetime).min(self.cert.not_after);
        let proxy_subject = format!("{}/CN=proxy", self.cert.subject);
        let proxy_cert = Certificate::issue(
            &self.key,
            &self.cert.subject,
            &proxy_subject,
            proxy_key.public(),
            now,
            not_after,
        );
        ProxyCredential::new(vec![self.cert.clone(), proxy_cert], proxy_key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hour() -> Duration {
        Duration::from_hours(1)
    }

    #[test]
    fn ca_issues_verifiable_certs() {
        let mut ca = CertificateAuthority::new("/CN=CA", 1);
        let id = ca.issue_identity("/CN=alice", Duration::from_days(365));
        let root = ca.trust_root();
        let ca_key = root.key_for("/CN=CA").unwrap();
        assert!(id.cert.signature_valid(ca_key));
        assert!(id.cert.valid_at(SimTime::ZERO + hour()));
        assert!(!id.cert.valid_at(SimTime::ZERO + Duration::from_days(366)));
    }

    #[test]
    fn forged_cert_fails() {
        let ca = CertificateAuthority::new("/CN=CA", 1);
        let mut ca2 = CertificateAuthority::new("/CN=CA", 2); // same DN, other key
        let id = ca2.issue_identity("/CN=mallory", Duration::from_days(1));
        let ca_key = ca.trust_root().key_for("/CN=CA").unwrap();
        assert!(!id.cert.signature_valid(ca_key));
    }

    #[test]
    fn tampered_validity_fails() {
        let mut ca = CertificateAuthority::new("/CN=CA", 1);
        let id = ca.issue_identity("/CN=alice", Duration::from_days(1));
        let ca_key = ca.trust_root().key_for("/CN=CA").unwrap();
        let mut extended = id.cert.clone();
        extended.not_after = SimTime::ZERO + Duration::from_days(1000);
        assert!(
            !extended.signature_valid(ca_key),
            "extending lifetime breaks the signature"
        );
    }

    #[test]
    fn identities_have_distinct_keys() {
        let mut ca = CertificateAuthority::new("/CN=CA", 1);
        let a = ca.issue_identity("/CN=alice", hour());
        let b = ca.issue_identity("/CN=bob", hour());
        assert_ne!(a.cert.public_key, b.cert.public_key);
    }
}
