#![warn(missing_docs)]
//! `gsi` — the Grid Security Infrastructure (paper §3.1), simulated.
//!
//! GSI gives Condor-G single sign-on: the user's long-lived identity
//! certificate signs a short-lived *proxy credential*, and every protocol
//! request (GRAM submissions, GASS transfers, MDS queries) authenticates
//! with the proxy rather than the private key. Sites map the authenticated
//! *distinguished name* to a local account through a gridmap file. The
//! paper's §4.3 builds its whole credential-management story — expiry
//! detection, hold-and-email, re-forwarding refreshed proxies, the MyProxy
//! enhancement — on these pieces.
//!
//! # What is simulated
//!
//! Real GSI uses X.509/RSA. Nothing in the paper's observable behaviour
//! depends on the arithmetic of RSA — only on *who can produce a valid
//! signature* and *when credentials expire*. This crate therefore uses a
//! hash-based stand-in: a signature is a digest keyed by the signer's
//! secret, and verification recomputes the digest from the public key.
//! Within the simulation, only holders of a [`keys::KeyPair`] can call
//! [`keys::KeyPair::sign`], which is exactly the capability boundary GSI
//! enforces. This is NOT cryptography and must never be used as such; it is
//! a behavioural model (see DESIGN.md, substitution table).
//!
//! # Example
//!
//! ```
//! use gsi::{CertificateAuthority, GridMap};
//! use gridsim::SimTime;
//! use gridsim::time::Duration;
//!
//! let mut ca = CertificateAuthority::new("/C=US/O=Globus/CN=CA", 42);
//! let user = ca.issue_identity("/C=US/O=UW/CN=Jane Scientist", Duration::from_days(365));
//!
//! // Create a 12-hour proxy at t=0, as condor_submit would.
//! let proxy = user.new_proxy(SimTime::ZERO, Duration::from_hours(12));
//! assert!(proxy.verify(SimTime::ZERO, &ca.trust_root()).is_ok());
//!
//! // A gridmap file maps the Grid identity to a site-local account.
//! let mut map = GridMap::new();
//! map.add("/C=US/O=UW/CN=Jane Scientist", "jane");
//! assert_eq!(map.authorize(proxy.subject()), Some("jane"));
//! ```

pub mod capability;
pub mod cert;
pub mod gridmap;
pub mod keys;
pub mod myproxy;
pub mod proxy;

pub use capability::{Capability, CapabilityIssuer};
pub use cert::{AuthError, Certificate, CertificateAuthority, Identity, TrustRoot};
pub use gridmap::GridMap;
pub use keys::{KeyPair, PublicKey, Signature};
pub use myproxy::{MyProxyReply, MyProxyRequest, MyProxyServer};
pub use proxy::ProxyCredential;
