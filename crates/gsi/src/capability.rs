//! Capability-based authorization — the paper's §3.2 work-in-progress:
//! "Work in progress will also allow authorization decisions to be made on
//! the basis of capabilities supplied with the request."
//!
//! A capability is a site-signed statement: *the holder of DN `subject`
//! may run jobs here as local user `local_user` until `not_after`* — so a
//! site can grant access to a collaborator without editing its gridmap.
//! The gatekeeper still authenticates the requester with GSI; the
//! capability only replaces the gridmap lookup.

use crate::keys::{KeyPair, PublicKey, Signature};
use gridsim::time::SimTime;
use serde::{Deserialize, Serialize};

/// A signed access grant for one user at one site.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Capability {
    /// The Grid identity being granted access.
    pub subject: String,
    /// The site this capability is valid at.
    pub site: String,
    /// The local account jobs run under.
    pub local_user: String,
    /// Expiry.
    pub not_after: SimTime,
    /// The site authority's signature over the fields above.
    pub signature: Signature,
}

impl Capability {
    fn to_be_signed(subject: &str, site: &str, local_user: &str, not_after: SimTime) -> Vec<u8> {
        let mut data = Vec::with_capacity(subject.len() + site.len() + local_user.len() + 16);
        data.extend_from_slice(subject.as_bytes());
        data.push(0);
        data.extend_from_slice(site.as_bytes());
        data.push(0);
        data.extend_from_slice(local_user.as_bytes());
        data.push(0);
        data.extend_from_slice(&not_after.micros().to_le_bytes());
        data
    }

    /// Verify this capability against the site authority's key, for
    /// `authenticated_dn` at `site`, at time `now`.
    pub fn verify(
        &self,
        authority: PublicKey,
        authenticated_dn: &str,
        site: &str,
        now: SimTime,
    ) -> bool {
        self.subject == authenticated_dn
            && self.site == site
            && now < self.not_after
            && authority.verify(
                &Capability::to_be_signed(
                    &self.subject,
                    &self.site,
                    &self.local_user,
                    self.not_after,
                ),
                &self.signature,
            )
    }
}

/// A site's capability-issuing authority.
pub struct CapabilityIssuer {
    site: String,
    key: KeyPair,
}

impl CapabilityIssuer {
    /// An authority for `site`, keyed by `seed`.
    pub fn new(site: &str, seed: u64) -> CapabilityIssuer {
        CapabilityIssuer {
            site: site.to_string(),
            key: KeyPair::from_seed(seed ^ 0xCAFE),
        }
    }

    /// The verification key gatekeepers should be configured with.
    pub fn public(&self) -> PublicKey {
        self.key.public()
    }

    /// Grant `subject` access as `local_user` until `not_after`.
    pub fn grant(&self, subject: &str, local_user: &str, not_after: SimTime) -> Capability {
        let signature = self.key.sign(&Capability::to_be_signed(
            subject, &self.site, local_user, not_after,
        ));
        Capability {
            subject: subject.to_string(),
            site: self.site.clone(),
            local_user: local_user.to_string(),
            not_after,
            signature,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsim::time::Duration;

    fn t(h: u64) -> SimTime {
        SimTime::ZERO + Duration::from_hours(h)
    }

    #[test]
    fn grant_verifies_for_the_right_holder_site_and_time() {
        let issuer = CapabilityIssuer::new("anl", 7);
        let cap = issuer.grant("/CN=visitor", "guest03", t(48));
        assert!(cap.verify(issuer.public(), "/CN=visitor", "anl", t(1)));
        // Wrong holder.
        assert!(!cap.verify(issuer.public(), "/CN=someone-else", "anl", t(1)));
        // Wrong site.
        assert!(!cap.verify(issuer.public(), "/CN=visitor", "ncsa", t(1)));
        // Expired.
        assert!(!cap.verify(issuer.public(), "/CN=visitor", "anl", t(49)));
    }

    #[test]
    fn forged_or_tampered_capabilities_fail() {
        let issuer = CapabilityIssuer::new("anl", 7);
        let rogue = CapabilityIssuer::new("anl", 8);
        let cap = rogue.grant("/CN=visitor", "root", t(48));
        assert!(!cap.verify(issuer.public(), "/CN=visitor", "anl", t(1)));
        // Privilege-escalation tamper: change the local user.
        let mut cap = issuer.grant("/CN=visitor", "guest03", t(48));
        cap.local_user = "root".into();
        assert!(!cap.verify(issuer.public(), "/CN=visitor", "anl", t(1)));
        // Lifetime-extension tamper.
        let mut cap = issuer.grant("/CN=visitor", "guest03", t(48));
        cap.not_after = t(4800);
        assert!(!cap.verify(issuer.public(), "/CN=visitor", "anl", t(100)));
    }
}
