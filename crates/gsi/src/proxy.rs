//! Proxy credentials and delegation chains (paper §3.1, §4.3).
//!
//! A proxy credential is a chain: `[user cert (CA-signed), proxy cert
//! (user-signed), delegated proxy (proxy-signed), ...]` plus the private
//! key of the *last* element. Verification walks the chain from the trust
//! root, checking signatures and validity windows. Effective expiry is the
//! *minimum* `not_after` along the chain — which is why refreshing only the
//! local proxy isn't enough and Condor-G must re-forward refreshed proxies
//! to remote GRAM servers (§4.3).

use crate::cert::{AuthError, Certificate, TrustRoot};
use crate::keys::{digest, KeyPair};
use gridsim::time::{Duration, SimTime};
use serde::{Deserialize, Serialize};

/// A proxy credential: certificate chain + the leaf private key.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ProxyCredential {
    chain: Vec<Certificate>,
    leaf_key: KeyPair,
}

impl ProxyCredential {
    /// Assemble a credential from a chain and the leaf key. The chain must
    /// start with the CA-signed identity certificate.
    pub fn new(chain: Vec<Certificate>, leaf_key: KeyPair) -> ProxyCredential {
        ProxyCredential { chain, leaf_key }
    }

    /// The user's identity DN (the chain's first subject).
    pub fn subject(&self) -> &str {
        self.chain.first().map(|c| c.subject.as_str()).unwrap_or("")
    }

    /// The leaf certificate (the credential actually presented).
    pub fn leaf(&self) -> &Certificate {
        self.chain.last().expect("non-empty chain")
    }

    /// Number of delegation steps (1 = plain user proxy).
    pub fn delegation_depth(&self) -> usize {
        self.chain.len().saturating_sub(1)
    }

    /// Effective expiry: the earliest `not_after` in the chain.
    pub fn expires_at(&self) -> SimTime {
        self.chain
            .iter()
            .map(|c| c.not_after)
            .min()
            .unwrap_or(SimTime::ZERO)
    }

    /// Time remaining before effective expiry (zero if already expired).
    pub fn time_remaining(&self, now: SimTime) -> Duration {
        self.expires_at().since(now)
    }

    /// True if the credential is unusable at `now`.
    pub fn is_expired(&self, now: SimTime) -> bool {
        self.time_remaining(now).is_zero()
    }

    /// Full verification at `now` against `trust`: returns the
    /// authenticated subject DN on success.
    ///
    /// Walks: the root CA signs `chain[0]`; each `chain[i]` signs
    /// `chain[i+1]` and must name it as issuer; every element must be
    /// within its validity window.
    pub fn verify(&self, now: SimTime, trust: &TrustRoot) -> Result<String, AuthError> {
        let first = self.chain.first().ok_or(AuthError::EmptyChain)?;
        let ca_key = trust
            .key_for(&first.issuer)
            .ok_or_else(|| AuthError::UntrustedIssuer {
                issuer: first.issuer.clone(),
            })?;
        if !first.signature_valid(ca_key) {
            return Err(AuthError::BadSignature {
                subject: first.subject.clone(),
            });
        }
        if !first.valid_at(now) {
            return Err(AuthError::Expired {
                subject: first.subject.clone(),
                not_after: first.not_after,
            });
        }
        for window in self.chain.windows(2) {
            let (parent, child) = (&window[0], &window[1]);
            if child.issuer != parent.subject {
                return Err(AuthError::BrokenChain {
                    subject: child.subject.clone(),
                });
            }
            if !child.signature_valid(parent.public_key) {
                return Err(AuthError::BadSignature {
                    subject: child.subject.clone(),
                });
            }
            if !child.valid_at(now) {
                return Err(AuthError::Expired {
                    subject: child.subject.clone(),
                    not_after: child.not_after,
                });
            }
        }
        Ok(first.subject.clone())
    }

    /// Delegate: create a further restricted proxy for a remote service
    /// (what happens when the GridManager forwards the user's proxy to a
    /// GRAM server). Lifetime is clamped to the parent's remaining life.
    pub fn delegate(&self, now: SimTime, lifetime: Duration) -> ProxyCredential {
        let leaf = self.leaf();
        let sub_key = KeyPair::from_seed(
            digest(leaf.subject.as_bytes()) ^ now.micros().wrapping_mul(0x9E3779B97F4A7C15),
        );
        let not_after = (now + lifetime).min(self.expires_at());
        let sub_subject = format!("{}/CN=proxy", leaf.subject);
        let cert = Certificate::issue(
            &self.leaf_key,
            &leaf.subject,
            &sub_subject,
            sub_key.public(),
            now,
            not_after,
        );
        let mut chain = self.chain.clone();
        chain.push(cert);
        ProxyCredential {
            chain,
            leaf_key: sub_key,
        }
    }

    /// Sign request data with the leaf key (used by GRAM/GASS requests).
    pub fn sign(&self, data: &[u8]) -> crate::keys::Signature {
        self.leaf_key.sign(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::CertificateAuthority;

    fn setup() -> (CertificateAuthority, crate::cert::Identity) {
        let mut ca = CertificateAuthority::new("/CN=CA", 9);
        let id = ca.issue_identity("/CN=alice", Duration::from_days(365));
        (ca, id)
    }

    #[test]
    fn proxy_verifies_and_names_the_user() {
        let (ca, id) = setup();
        let proxy = id.new_proxy(SimTime::ZERO, Duration::from_hours(12));
        let dn = proxy.verify(SimTime::ZERO + Duration::from_hours(1), &ca.trust_root());
        assert_eq!(dn.unwrap(), "/CN=alice");
        assert_eq!(proxy.delegation_depth(), 1);
    }

    #[test]
    fn proxy_expires() {
        let (ca, id) = setup();
        let proxy = id.new_proxy(SimTime::ZERO, Duration::from_hours(12));
        let late = SimTime::ZERO + Duration::from_hours(13);
        assert!(proxy.is_expired(late));
        assert!(matches!(
            proxy.verify(late, &ca.trust_root()),
            Err(AuthError::Expired { .. })
        ));
    }

    #[test]
    fn delegation_chains_verify_and_clamp_lifetime() {
        let (ca, id) = setup();
        let proxy = id.new_proxy(SimTime::ZERO, Duration::from_hours(12));
        // Remote delegation asks for 24h but can't outlive the parent.
        let remote = proxy.delegate(
            SimTime::ZERO + Duration::from_hours(1),
            Duration::from_hours(24),
        );
        assert_eq!(remote.delegation_depth(), 2);
        assert_eq!(
            remote.expires_at(),
            SimTime::ZERO + Duration::from_hours(12)
        );
        assert!(remote
            .verify(SimTime::ZERO + Duration::from_hours(2), &ca.trust_root())
            .is_ok());
    }

    #[test]
    fn chain_expiry_is_the_minimum() {
        let (_ca, id) = setup();
        let proxy = id.new_proxy(SimTime::ZERO, Duration::from_hours(12));
        let sub = proxy.delegate(SimTime::ZERO, Duration::from_hours(2));
        assert_eq!(sub.expires_at(), SimTime::ZERO + Duration::from_hours(2));
        // Refreshing only the *local* proxy wouldn't help `sub`: this is the
        // §4.3 re-forwarding requirement in miniature.
        assert!(sub.is_expired(SimTime::ZERO + Duration::from_hours(3)));
        assert!(!proxy.is_expired(SimTime::ZERO + Duration::from_hours(3)));
    }

    #[test]
    fn untrusted_ca_rejected() {
        let (_ca, id) = setup();
        let other_ca = CertificateAuthority::new("/CN=OtherCA", 10);
        let proxy = id.new_proxy(SimTime::ZERO, Duration::from_hours(12));
        assert!(matches!(
            proxy.verify(SimTime::ZERO, &other_ca.trust_root()),
            Err(AuthError::UntrustedIssuer { .. })
        ));
    }

    #[test]
    fn broken_chain_rejected() {
        let (ca, id) = setup();
        let mut ca2 = CertificateAuthority::new("/CN=CA2", 11);
        let mallory = ca2.issue_identity("/CN=mallory", Duration::from_days(1));
        let proxy = id.new_proxy(SimTime::ZERO, Duration::from_hours(12));
        // Graft mallory's cert onto alice's chain.
        let mut chain: Vec<Certificate> = vec![proxy.leaf().clone(), mallory.cert.clone()];
        chain[0] = id.cert.clone();
        let forged = ProxyCredential::new(chain, KeyPair::from_seed(0));
        assert!(matches!(
            forged.verify(SimTime::ZERO, &ca.trust_root()),
            Err(AuthError::BrokenChain { .. }) | Err(AuthError::BadSignature { .. })
        ));
    }

    #[test]
    fn request_signing_with_leaf_key() {
        let (_ca, id) = setup();
        let proxy = id.new_proxy(SimTime::ZERO, Duration::from_hours(12));
        let sig = proxy.sign(b"gram submit job 1");
        assert!(proxy.leaf().public_key.verify(b"gram submit job 1", &sig));
        assert!(!proxy.leaf().public_key.verify(b"gram submit job 2", &sig));
    }
}
