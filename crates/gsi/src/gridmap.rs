//! The gridmap file: site-local authorization (paper §3.2 — "authorization
//! implements local policy and may involve mapping the user's Grid id into
//! a local subject name; however, this mapping is transparent to the user").

use std::collections::HashMap;

/// Maps authenticated Grid DNs to local account names.
#[derive(Clone, Debug, Default)]
pub struct GridMap {
    entries: HashMap<String, String>,
}

impl GridMap {
    /// An empty map (authorizes nobody).
    pub fn new() -> GridMap {
        GridMap::default()
    }

    /// Grant `dn` access as local user `local`.
    pub fn add(&mut self, dn: &str, local: &str) {
        self.entries.insert(dn.to_string(), local.to_string());
    }

    /// Revoke a DN; returns whether it was present.
    pub fn remove(&mut self, dn: &str) -> bool {
        self.entries.remove(dn).is_some()
    }

    /// Authorize a DN, returning the local account name.
    pub fn authorize(&self, dn: &str) -> Option<&str> {
        self.entries.get(dn).map(String::as_str)
    }

    /// Parse the classic textual format: one `"DN" localuser` per line;
    /// `#` starts a comment.
    pub fn parse(text: &str) -> GridMap {
        let mut map = GridMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            // `"/C=US/O=UW/CN=Jane" jane`
            if let Some(rest) = line.strip_prefix('"') {
                if let Some(end) = rest.find('"') {
                    let dn = &rest[..end];
                    let local = rest[end + 1..].trim();
                    if !local.is_empty() {
                        map.add(dn, local);
                    }
                }
            }
        }
        map
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is authorized.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_authorize_remove() {
        let mut m = GridMap::new();
        m.add("/CN=alice", "alice");
        assert_eq!(m.authorize("/CN=alice"), Some("alice"));
        assert_eq!(m.authorize("/CN=bob"), None);
        assert!(m.remove("/CN=alice"));
        assert_eq!(m.authorize("/CN=alice"), None);
    }

    #[test]
    fn parse_textual_format() {
        let text = r#"
            # site gridmap
            "/C=US/O=UW/CN=Jane Scientist" jane
            "/C=US/O=ANL/CN=Ian Foster"    foster

            # revoked: "/CN=old" old
        "#;
        let m = GridMap::parse(text);
        assert_eq!(m.len(), 2);
        assert_eq!(m.authorize("/C=US/O=UW/CN=Jane Scientist"), Some("jane"));
        assert_eq!(m.authorize("/C=US/O=ANL/CN=Ian Foster"), Some("foster"));
        assert_eq!(m.authorize("/CN=old"), None);
    }

    #[test]
    fn malformed_lines_ignored() {
        let m = GridMap::parse("\"/CN=x\"\nnot-a-quote line\n\"/CN=y\" yuser");
        assert_eq!(m.len(), 1);
        assert_eq!(m.authorize("/CN=y"), Some("yuser"));
    }
}
