//! GRAM protocol messages.

use gass::GassUrl;
use gridsim::time::SimTime;
use gridsim::Addr;
use gsi::ProxyCredential;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A job contact: the id by which a submitted job is known at one
/// gatekeeper (the analogue of GRAM's `https://host:port/pid/ts` string).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobContact(pub u64);

impl fmt::Display for JobContact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "jc{}", self.0)
    }
}

/// GRAM-level job states, as reported by callbacks (the paper-era GRAM
/// state machine plus the revised protocol's commit phase).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum GramJobState {
    /// Accepted, waiting for the client's commit (two-phase).
    PendingCommit,
    /// Pulling executable/stdin from the client's GASS server.
    StageIn,
    /// Queued in the site scheduler.
    Pending,
    /// Holding processors.
    Active,
    /// Pushing stdout back to the client's GASS server.
    StageOut,
    /// Finished; `exit_ok` in the callback says how.
    Done,
    /// Failed (stage-in error, wall-time kill, vacated without requeue...).
    Failed,
    /// Cancelled by the client.
    Removed,
}

impl GramJobState {
    /// True for states a job never leaves.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            GramJobState::Done | GramJobState::Failed | GramJobState::Removed
        )
    }
}

/// Failure detail carried by replies/callbacks.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum GramError {
    /// Credential rejected.
    AuthenticationFailed(String),
    /// Authenticated, but no gridmap entry.
    AuthorizationFailed(String),
    /// Malformed RSL.
    BadRsl(String),
    /// Stage-in/out failure.
    StagingFailed(String),
    /// The job id is unknown at this gatekeeper (e.g. log lost).
    UnknownJob,
}

impl fmt::Display for GramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GramError::AuthenticationFailed(e) => write!(f, "authentication failed: {e}"),
            GramError::AuthorizationFailed(dn) => write!(f, "no gridmap entry for {dn}"),
            GramError::BadRsl(e) => write!(f, "bad RSL: {e}"),
            GramError::StagingFailed(e) => write!(f, "staging failed: {e}"),
            GramError::UnknownJob => write!(f, "unknown job"),
        }
    }
}

/// Client → Gatekeeper requests.
#[derive(Debug)]
pub enum GramRequest {
    /// Submit a job (phase one of two-phase commit). `seq` is the client's
    /// sequence number: the gatekeeper deduplicates on `(DN, seq)`, so
    /// retransmissions are safe.
    Submit {
        /// Client sequence number.
        seq: u64,
        /// Requester credential (forwarded proxy).
        credential: ProxyCredential,
        /// The job, as an RSL string.
        rsl: String,
        /// Where status callbacks go (the GridManager).
        callback: Addr,
        /// The client's GASS server (executable/stdin source, stdout sink).
        gass: GassUrl,
        /// Optional capability replacing the gridmap lookup (§3.2's
        /// work-in-progress authorization mode).
        capability: Option<gsi::Capability>,
    },
    /// Liveness probe ("the GridManager then probes the GateKeeper").
    Ping {
        /// Echoed in the reply.
        nonce: u64,
    },
    /// Ask the gatekeeper to start a fresh JobManager for a job whose
    /// JobManager died (recovery path, §4.2).
    RestartJobManager {
        /// The job to reattach to.
        contact: JobContact,
        /// Requester credential.
        credential: ProxyCredential,
        /// New callback address (the GridManager may have moved).
        callback: Addr,
        /// New GASS server URL (may have changed across a client restart).
        gass: GassUrl,
        /// Bytes of stdout the client already holds (resume point).
        stdout_have: u64,
        /// Optional capability (as on `Submit`).
        capability: Option<gsi::Capability>,
    },
}

/// Gatekeeper → client replies.
#[derive(Debug)]
pub enum GramReply {
    /// Phase-one answer: the job was created (or found, on a duplicate
    /// request) and is waiting for commit.
    Submitted {
        /// Echo of the client's sequence number.
        seq: u64,
        /// The job's contact id.
        contact: JobContact,
        /// Address of the JobManager daemon handling it.
        jobmanager: Addr,
    },
    /// Phase-one refusal.
    SubmitFailed {
        /// Echo of the client's sequence number.
        seq: u64,
        /// Why.
        error: GramError,
    },
    /// Ping answer.
    Pong {
        /// Echo of the nonce.
        nonce: u64,
    },
    /// RestartJobManager answer: new JobManager address.
    Restarted {
        /// The job.
        contact: JobContact,
        /// The fresh JobManager.
        jobmanager: Addr,
    },
    /// RestartJobManager refusal.
    RestartFailed {
        /// The job.
        contact: JobContact,
        /// Why.
        error: GramError,
    },
}

/// Client ↔ JobManager messages.
#[derive(Debug)]
pub enum JmMsg {
    /// Phase two of two-phase commit: begin execution.
    Commit,
    /// JobManager's acknowledgement of `Commit` (idempotent; clients
    /// retransmit `Commit` until they see it — a lost commit would
    /// otherwise leave the job parked in `PendingCommit` forever).
    CommitAck {
        /// The job.
        contact: JobContact,
    },
    /// Liveness probe ("periodically probing the JobManagers of all the
    /// jobs it manages").
    Probe {
        /// Echoed in `ProbeReply`.
        nonce: u64,
    },
    /// Probe answer, with current state (a probe doubles as a status poll).
    ProbeReply {
        /// Echo of the nonce.
        nonce: u64,
        /// The job.
        contact: JobContact,
        /// Current state.
        state: GramJobState,
    },
    /// Cancel the job.
    Cancel,
    /// Status callback (JobManager → client).
    Callback {
        /// The job.
        contact: JobContact,
        /// State entered.
        state: GramJobState,
        /// For `Done`: whether the job exited cleanly.
        exit_ok: bool,
        /// When the transition happened.
        at: SimTime,
    },
    /// Client → JobManager after a client-side restart: here is my new
    /// GASS URL and how much stdout I already have ("the GridManager
    /// requests the JobManager to update the file with the new address").
    UpdateGass {
        /// New GASS server URL.
        gass: GassUrl,
        /// Bytes of stdout already received by the client.
        stdout_have: u64,
    },
    /// Client acknowledges the final callback; the JobManager may exit.
    DoneAck,
    /// JobManager → its gatekeeper, sent just before exiting in lean
    /// (campaign) mode: the job reached a terminal state and the client has
    /// acknowledged it, so every per-job record at this site (dedup entry,
    /// JobManager registration, persisted log) may be reclaimed.
    Exited {
        /// The finished job.
        contact: JobContact,
    },
    /// Re-forward a refreshed proxy (§4.3: "it also needs to re-forward
    /// the refreshed proxy to the remote GRAM server").
    RefreshCredential {
        /// The refreshed delegation.
        credential: ProxyCredential,
    },
}
