//! Client-side GRAM protocol helpers.
//!
//! [`SubmitSession`] encapsulates the two-phase submit state machine for
//! one job: build the request, retransmit it verbatim on timeout (same
//! sequence number — that's what makes retries safe), and turn the reply
//! into a commit. The Condor-G GridManager embeds one session per job;
//! the protocol experiments drive sessions directly.

use crate::proto::{GramError, GramReply, GramRequest, JmMsg, JobContact};
use gass::GassUrl;
use gridsim::Addr;
use gsi::ProxyCredential;

/// Where a submit session stands.
#[derive(Clone, Debug, PartialEq)]
pub enum SessionState {
    /// Request built but no reply seen yet.
    AwaitingReply,
    /// Server acknowledged; commit sent; job is live.
    Committed {
        /// The job's contact id.
        contact: JobContact,
        /// Its JobManager.
        jobmanager: Addr,
        /// The JobManager confirmed the commit (stop retransmitting it).
        acked: bool,
    },
    /// Server refused.
    Failed(GramError),
}

/// What the caller should do after feeding a reply in.
#[derive(Debug, PartialEq)]
pub enum SubmitAction {
    /// Send [`JmMsg::Commit`] to the JobManager (already reflected in
    /// state; provided for the caller to perform the send).
    SendCommit {
        /// Target JobManager.
        jobmanager: Addr,
        /// The job.
        contact: JobContact,
    },
    /// The submission failed for good.
    GiveUp(GramError),
    /// Reply was stale/duplicate; nothing to do.
    Ignore,
}

/// One job's two-phase submit protocol state.
#[derive(Clone, Debug)]
pub struct SubmitSession {
    /// The client sequence number (dedup key at the server).
    pub seq: u64,
    rsl: String,
    credential: ProxyCredential,
    callback: Addr,
    gass: GassUrl,
    capability: Option<gsi::Capability>,
    /// Current protocol state.
    pub state: SessionState,
    /// Times the request has been (re)sent.
    pub attempts: u32,
}

impl SubmitSession {
    /// Start a session. The caller sends [`SubmitSession::request`] and
    /// arms a retransmit timer.
    pub fn new(
        seq: u64,
        rsl: String,
        credential: ProxyCredential,
        callback: Addr,
        gass: GassUrl,
    ) -> SubmitSession {
        SubmitSession {
            seq,
            rsl,
            credential,
            callback,
            gass,
            capability: None,
            state: SessionState::AwaitingReply,
            attempts: 0,
        }
    }

    /// Attach a capability (capability-based authorization, §3.2).
    pub fn with_capability(mut self, capability: gsi::Capability) -> SubmitSession {
        self.capability = Some(capability);
        self
    }

    /// A session already past both phases (used when reconstructing state
    /// for a job known to be committed). Nothing retransmits from it.
    pub fn acknowledged(
        seq: u64,
        contact: JobContact,
        credential: ProxyCredential,
        callback: Addr,
        gass: GassUrl,
    ) -> SubmitSession {
        let mut s = SubmitSession::new(seq, String::new(), credential, callback, gass);
        s.state = SessionState::Committed {
            contact,
            // The JobManager address is not needed once acked.
            jobmanager: callback,
            acked: true,
        };
        s
    }

    /// Build the (re)transmittable request. Increments the attempt counter;
    /// the sequence number never changes — exactly-once depends on that.
    pub fn request(&mut self) -> GramRequest {
        self.attempts += 1;
        GramRequest::Submit {
            seq: self.seq,
            credential: self.credential.clone(),
            rsl: self.rsl.clone(),
            callback: self.callback,
            gass: self.gass.clone(),
            capability: self.capability.clone(),
        }
    }

    /// True if a retransmit is still useful.
    pub fn awaiting_reply(&self) -> bool {
        self.state == SessionState::AwaitingReply
    }

    /// Feed a gatekeeper reply; returns what to do next.
    pub fn on_reply(&mut self, reply: &GramReply) -> SubmitAction {
        match reply {
            GramReply::Submitted {
                seq,
                contact,
                jobmanager,
            } if *seq == self.seq => {
                if let SessionState::Committed { .. } = self.state {
                    // Duplicate reply to a retransmission: already handled.
                    return SubmitAction::Ignore;
                }
                self.state = SessionState::Committed {
                    contact: *contact,
                    jobmanager: *jobmanager,
                    acked: false,
                };
                SubmitAction::SendCommit {
                    jobmanager: *jobmanager,
                    contact: *contact,
                }
            }
            GramReply::SubmitFailed { seq, error } if *seq == self.seq => {
                if matches!(self.state, SessionState::Committed { .. }) {
                    return SubmitAction::Ignore;
                }
                self.state = SessionState::Failed(error.clone());
                SubmitAction::GiveUp(error.clone())
            }
            _ => SubmitAction::Ignore,
        }
    }

    /// The commit message for the acknowledged job.
    pub fn commit_msg(&self) -> Option<(Addr, JmMsg)> {
        match &self.state {
            SessionState::Committed { jobmanager, .. } => Some((*jobmanager, JmMsg::Commit)),
            _ => None,
        }
    }

    /// Record the JobManager's [`JmMsg::CommitAck`].
    pub fn on_commit_ack(&mut self) {
        if let SessionState::Committed { acked, .. } = &mut self.state {
            *acked = true;
        }
    }

    /// If the commit has not been confirmed yet, the `(target, message)`
    /// to retransmit.
    pub fn commit_retry(&self) -> Option<(Addr, JmMsg)> {
        match &self.state {
            SessionState::Committed {
                jobmanager,
                acked: false,
                ..
            } => Some((*jobmanager, JmMsg::Commit)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod session_tests {
    use super::*;
    use gass::Scheme;
    use gridsim::time::{Duration, SimTime};
    use gridsim::{CompId, NodeId};
    use gsi::CertificateAuthority;

    fn addr(n: u32, c: u32) -> Addr {
        Addr {
            node: NodeId(n),
            comp: CompId(c),
        }
    }

    fn session() -> SubmitSession {
        let mut ca = CertificateAuthority::new("/CN=CA", 1);
        let id = ca.issue_identity("/CN=u", Duration::from_days(1));
        let cred = id.new_proxy(SimTime::ZERO, Duration::from_hours(12));
        SubmitSession::new(
            7,
            "&(executable=/x)".into(),
            cred,
            addr(0, 0),
            GassUrl {
                scheme: Scheme::Gass,
                server: addr(0, 1),
                path: "/".into(),
            },
        )
    }

    #[test]
    fn retransmits_keep_the_sequence_number() {
        let mut s = session();
        for _ in 0..3 {
            match s.request() {
                GramRequest::Submit { seq, .. } => assert_eq!(seq, 7),
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(s.attempts, 3);
    }

    #[test]
    fn reply_drives_commit_exactly_once() {
        let mut s = session();
        let _ = s.request();
        let reply = GramReply::Submitted {
            seq: 7,
            contact: JobContact(3),
            jobmanager: addr(1, 9),
        };
        assert_eq!(
            s.on_reply(&reply),
            SubmitAction::SendCommit {
                jobmanager: addr(1, 9),
                contact: JobContact(3)
            }
        );
        // A duplicate reply (retransmission raced the first answer) is inert.
        assert_eq!(s.on_reply(&reply), SubmitAction::Ignore);
        assert!(!s.awaiting_reply());
        assert!(s.commit_msg().is_some());
        // Until the ack arrives, the commit stays retransmittable.
        assert!(s.commit_retry().is_some());
        s.on_commit_ack();
        assert!(s.commit_retry().is_none());
    }

    #[test]
    fn wrong_seq_ignored() {
        let mut s = session();
        let _ = s.request();
        let reply = GramReply::Submitted {
            seq: 99,
            contact: JobContact(3),
            jobmanager: addr(1, 9),
        };
        assert_eq!(s.on_reply(&reply), SubmitAction::Ignore);
        assert!(s.awaiting_reply());
    }

    #[test]
    fn failure_reported_once() {
        let mut s = session();
        let _ = s.request();
        let reply = GramReply::SubmitFailed {
            seq: 7,
            error: GramError::UnknownJob,
        };
        assert_eq!(
            s.on_reply(&reply),
            SubmitAction::GiveUp(GramError::UnknownJob)
        );
        assert_eq!(s.state, SessionState::Failed(GramError::UnknownJob));
    }
}
