//! The Globus JobManager (Figure 1).
//!
//! One JobManager daemon per job: it connects back to the client's GASS
//! server to stage the executable and standard input, submits the job to
//! the site scheduler, relays status updates as callbacks, stages standard
//! output back when the job finishes, and logs everything to stable
//! storage so a crash of the interface machine never loses a job (§3.2,
//! §4.2).

use crate::proto::{GramJobState, JmMsg, JobContact};
use crate::rsl::RslSpec;
use gass::{FileData, GassReply, GassRequest, GassUrl};
use gridsim::prelude::*;
use gridsim::AnyMsg;
use gsi::ProxyCredential;
use serde::{Deserialize, Serialize};
use site::{JobSpec, LrmEvent, LrmJobState, LrmReply, LrmRequest};

/// What the JobManager persists (and what a restarted JobManager resumes
/// from).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JmLog {
    /// The job.
    pub contact: JobContact,
    /// RSL, re-parsed on recovery.
    pub rsl: String,
    /// Site-local account.
    pub local_user: String,
    /// Site scheduler id, once submitted.
    pub local_id: Option<u64>,
    /// Last externally visible state.
    pub state: GramJobState,
    /// Bytes of stdout already pushed to the client.
    pub stdout_sent: u64,
    /// Exit status once Done.
    pub exit_ok: bool,
}

impl JmLog {
    /// Stable-storage key for a job's log.
    pub fn key(contact: JobContact) -> String {
        format!("gram/jm/{contact}")
    }
}

/// Stage-in progress.
#[derive(Debug, PartialEq, Eq)]
enum Staging {
    NotStarted,
    Fetching { outstanding: u32 },
    Done,
}

/// The JobManager component.
pub struct JobManager {
    contact: JobContact,
    rsl: RslSpec,
    credential: ProxyCredential,
    client: Addr,
    gass: GassUrl,
    lrm: Addr,
    local_user: String,
    state: GramJobState,
    local_id: Option<u64>,
    stdout_sent: u64,
    exit_ok: bool,
    auto_commit: bool,
    /// Recovery mode: query the scheduler instead of submitting anew.
    recovering: bool,
    staging: Staging,
    next_req: u64,
    /// Outstanding stdout write request id.
    stdout_req: Option<u64>,
    /// LRM events that raced ahead of the Submitted reply.
    pending_events: Vec<LrmEvent>,
    /// Set once execution has commenced; duplicate Commits are then inert.
    committed: bool,
    /// Site-scoped grid-weather counters, precomputed from the fronting
    /// gatekeeper's site name.
    metric_commits: String,
    metric_commit_timeouts: String,
    /// Lean (campaign) mode: tell this gatekeeper we are exiting after the
    /// client's done-ack so it can reclaim the job's records.
    notify_exit: Option<Addr>,
    /// Consecutive staging retries in the current phase; each one doubles
    /// the retry timeout (capped), so a congested shared link sees
    /// progressively gentler retransmission instead of a retry storm.
    /// Reset when a staging phase starts or completes.
    stage_backoff: u32,
}

/// Retry timer tags.
const TAG_STAGE_IN: u64 = 1;
const TAG_STAGE_OUT: u64 = 2;
/// Conservative floor bandwidth (bytes/s) for sizing staging-retry
/// timeouts: a transfer slower than this is presumed lost.
const RETRY_FLOOR_BW: u64 = 125_000;
/// Periodic scheduler-status poll: pushed LRM events can be lost to the
/// network or to a JobManager restart, so the JobManager also polls.
const TAG_STATUS_POLL: u64 = 3;
const STATUS_POLL: Duration = Duration::from_mins(5);
/// How long to wait for a staging reply before retransmitting.
const STAGE_RETRY: Duration = Duration::from_secs(60);

impl JobManager {
    /// A fresh JobManager for a newly submitted job.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        contact: JobContact,
        rsl: RslSpec,
        credential: ProxyCredential,
        client: Addr,
        gass: GassUrl,
        lrm: Addr,
        local_user: &str,
        auto_commit: bool,
        site: &str,
    ) -> JobManager {
        JobManager {
            contact,
            rsl,
            credential,
            client,
            gass,
            lrm,
            local_user: local_user.to_string(),
            state: GramJobState::PendingCommit,
            local_id: None,
            stdout_sent: 0,
            exit_ok: false,
            auto_commit,
            recovering: false,
            staging: Staging::NotStarted,
            next_req: 0,
            stdout_req: None,
            pending_events: Vec::new(),
            committed: false,
            metric_commits: format!("site.{site}.commits"),
            metric_commit_timeouts: format!("site.{site}.commit_timeouts"),
            notify_exit: None,
            stage_backoff: 0,
        }
    }

    /// Builder: lean mode — notify `gatekeeper` on exit so it reclaims the
    /// job's per-site records.
    pub fn with_exit_notify(mut self, gatekeeper: Addr) -> JobManager {
        self.notify_exit = Some(gatekeeper);
        self
    }

    /// A JobManager reattaching to an existing job from its log.
    pub fn recover(
        log: JmLog,
        lrm: Addr,
        client: Addr,
        gass: GassUrl,
        credential: ProxyCredential,
        stdout_have: u64,
        site: &str,
    ) -> JobManager {
        let rsl = crate::rsl::parse(&log.rsl).expect("logged RSL re-parses");
        JobManager {
            contact: log.contact,
            rsl,
            credential,
            client,
            gass,
            lrm,
            local_user: log.local_user,
            state: log.state,
            local_id: log.local_id,
            stdout_sent: stdout_have.min(log.stdout_sent),
            exit_ok: log.exit_ok,
            auto_commit: false,
            recovering: true,
            staging: Staging::Done,
            next_req: 0,
            stdout_req: None,
            pending_events: Vec::new(),
            committed: true,
            metric_commits: format!("site.{site}.commits"),
            metric_commit_timeouts: format!("site.{site}.commit_timeouts"),
            notify_exit: None,
            stage_backoff: 0,
        }
    }

    fn persist(&self, ctx: &mut Ctx<'_>) {
        let node = ctx.node();
        let log = JmLog {
            contact: self.contact,
            rsl: self.rsl.to_string(),
            local_user: self.local_user.clone(),
            local_id: self.local_id,
            state: self.state,
            stdout_sent: self.stdout_sent,
            exit_ok: self.exit_ok,
        };
        ctx.store().put(node, &JmLog::key(self.contact), &log);
    }

    fn callback(&mut self, ctx: &mut Ctx<'_>, state: GramJobState) {
        self.state = state;
        self.persist(ctx);
        ctx.trace_with("jm.state", || format!("{} -> {state:?}", self.contact));
        ctx.send(
            self.client,
            JmMsg::Callback {
                contact: self.contact,
                state,
                exit_ok: self.exit_ok,
                at: ctx.now(),
            },
        );
    }

    /// Issue (or re-issue) the stage-in GETs; arms the retry timer.
    fn send_stage_requests(&mut self, ctx: &mut Ctx<'_>) -> u32 {
        let mut outstanding = 0;
        // Executable and stdin, when they're GASS URLs, come from the
        // client's server.
        for source in [Some(self.rsl.executable.clone()), self.rsl.stdin.clone()]
            .into_iter()
            .flatten()
        {
            if let Ok(url) = source.parse::<GassUrl>() {
                self.next_req += 1;
                outstanding += 1;
                ctx.send(
                    url.server,
                    GassRequest::Get {
                        request_id: self.next_req,
                        credential: self.credential.clone(),
                        path: url.path,
                        offset: 0,
                        limit: u64::MAX,
                    },
                );
            }
        }
        if outstanding > 0 {
            self.staging = Staging::Fetching { outstanding };
            // Allow generous time for the payload itself before retrying,
            // doubling per consecutive retry (shared links under a
            // stage-in storm legitimately run far below the floor
            // bandwidth — hammering them makes it worse).
            let payload = self.rsl.image_size.max(1_000_000);
            let timeout = (STAGE_RETRY + Duration::from_secs(payload / RETRY_FLOOR_BW))
                * (1u64 << self.stage_backoff);
            ctx.set_timer(timeout, TAG_STAGE_IN);
        }
        outstanding
    }

    /// Bump the staging-retry backoff (doubles the timeout, capped at 16x).
    fn bump_backoff(&mut self) {
        self.stage_backoff = (self.stage_backoff + 1).min(4);
    }

    fn begin_stage_in(&mut self, ctx: &mut Ctx<'_>) {
        self.committed = true;
        self.stage_backoff = 0;
        ctx.trace_with("span", || {
            format!("contact={} phase=commit", self.contact.0)
        });
        if self.send_stage_requests(ctx) == 0 {
            // Everything is site-local: no staging needed.
            self.staging = Staging::Done;
            self.submit_to_lrm(ctx);
        } else {
            self.callback(ctx, GramJobState::StageIn);
        }
    }

    fn submit_to_lrm(&mut self, ctx: &mut Ctx<'_>) {
        let estimate = self.rsl.max_wall_time.unwrap_or(self.rsl.sim_runtime);
        let required_arch = self.rsl.extra.get("arch").and_then(|v| v.first()).cloned();
        let spec = JobSpec {
            cpus: self.rsl.count,
            runtime: self.rsl.sim_runtime,
            estimate,
            owner: self.local_user.clone(),
            required_arch,
        };
        self.stage_backoff = 0;
        ctx.trace_with("span", || {
            format!("contact={} phase=stage_in_done", self.contact.0)
        });
        ctx.send(
            self.lrm,
            LrmRequest::Submit {
                client_job: self.contact.0,
                spec,
            },
        );
    }

    fn begin_stage_out(&mut self, ctx: &mut Ctx<'_>) {
        self.stage_backoff = 0;
        let Some(stdout_url) = self.rsl.stdout.clone() else {
            // No output to stage: straight to Done.
            self.exit_ok = true;
            self.callback(ctx, GramJobState::Done);
            return;
        };
        let remaining = self.rsl.stdout_size.saturating_sub(self.stdout_sent);
        if remaining == 0 {
            self.exit_ok = true;
            self.callback(ctx, GramJobState::Done);
            return;
        }
        ctx.trace_with("span", || {
            format!("contact={} phase=stage_out", self.contact.0)
        });
        self.callback(ctx, GramJobState::StageOut);
        match stdout_url.parse::<GassUrl>() {
            Ok(_) => self.send_stdout_chunk(ctx),
            Err(_) => {
                // Site-local stdout: nothing to ship.
                self.stdout_sent = self.rsl.stdout_size;
                self.exit_ok = true;
                self.callback(ctx, GramJobState::Done);
            }
        }
    }

    /// Send (or re-send) the remaining stdout bytes as an idempotent
    /// positioned write; arms the retry timer.
    fn send_stdout_chunk(&mut self, ctx: &mut Ctx<'_>) {
        let Some(stdout_url) = self.rsl.stdout.clone() else {
            return;
        };
        let Ok(url) = stdout_url.parse::<GassUrl>() else {
            return;
        };
        let remaining = self.rsl.stdout_size.saturating_sub(self.stdout_sent);
        if remaining == 0 {
            return;
        }
        self.next_req += 1;
        self.stdout_req = Some(self.next_req);
        let chunk = FileData::bulk(remaining, self.contact.0 ^ self.stdout_sent);
        ctx.send_bulk(
            url.server,
            remaining,
            GassRequest::WriteAt {
                request_id: self.next_req,
                credential: self.credential.clone(),
                path: url.path,
                offset: self.stdout_sent,
                data: chunk,
            },
        );
        // The retry timeout must cover the transfer itself, or large
        // outputs would be retransmitted while still in flight; consecutive
        // retries back off exponentially (see `stage_backoff`).
        let timeout = (STAGE_RETRY + Duration::from_secs(remaining / RETRY_FLOOR_BW))
            * (1u64 << self.stage_backoff);
        ctx.set_timer(timeout, TAG_STAGE_OUT);
    }

    fn on_lrm_event(&mut self, ctx: &mut Ctx<'_>, ev: &LrmEvent) {
        if Some(ev.local_id) != self.local_id {
            return;
        }
        match ev.state {
            LrmJobState::Running => {
                ctx.metrics().incr("gram.jobs_started", 1);
                ctx.trace_with("span", || {
                    format!("contact={} phase=active", self.contact.0)
                });
                self.callback(ctx, GramJobState::Active);
            }
            LrmJobState::Queued => {
                // Vacated-and-requeued by the site: back to Pending.
                self.callback(ctx, GramJobState::Pending);
            }
            LrmJobState::Completed => {
                ctx.metrics().incr("gram.jobs_completed", 1);
                self.begin_stage_out(ctx);
            }
            LrmJobState::WallTimeExceeded | LrmJobState::Vacated => {
                ctx.metrics().incr("gram.jobs_failed", 1);
                self.exit_ok = false;
                self.callback(ctx, GramJobState::Failed);
            }
            LrmJobState::Removed => {
                self.callback(ctx, GramJobState::Removed);
            }
        }
    }
}

impl Component for JobManager {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.persist(ctx);
        ctx.set_timer(STATUS_POLL, TAG_STATUS_POLL);
        if self.recovering {
            match (self.state, self.local_id) {
                // Terminal already: re-announce it so the client learns.
                (s, _) if s.is_terminal() => {
                    let state = self.state;
                    self.callback(ctx, state);
                }
                // Mid-stage-out: resume shipping stdout.
                (GramJobState::StageOut, _) => self.begin_stage_out(ctx),
                // Submitted: ask the scheduler where things stand.
                (_, Some(local_id)) => {
                    ctx.send(self.lrm, LrmRequest::Status { local_id });
                }
                // Never reached the scheduler: restart the submission.
                (_, None) => self.submit_to_lrm(ctx),
            }
            return;
        }
        if self.auto_commit {
            self.begin_stage_in(ctx);
        }
        // Otherwise wait for the client's Commit (two-phase).
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, tag: u64) {
        match tag {
            TAG_STAGE_IN => {
                if matches!(self.staging, Staging::Fetching { .. }) {
                    ctx.metrics().incr("gram.stage_retries", 1);
                    self.bump_backoff();
                    self.send_stage_requests(ctx);
                }
            }
            TAG_STAGE_OUT if self.stdout_req.is_some() => {
                ctx.metrics().incr("gram.stage_retries", 1);
                self.bump_backoff();
                self.send_stdout_chunk(ctx);
            }
            TAG_STATUS_POLL if !self.state.is_terminal() => {
                if let Some(local_id) = self.local_id {
                    ctx.send(self.lrm, LrmRequest::Status { local_id });
                }
                ctx.set_timer(STATUS_POLL, TAG_STATUS_POLL);
            }
            _ => {}
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Addr, msg: AnyMsg) {
        // Client-side protocol.
        if let Some(jm) = msg.downcast_ref::<JmMsg>() {
            match jm {
                JmMsg::Commit => {
                    ctx.send(
                        from,
                        JmMsg::CommitAck {
                            contact: self.contact,
                        },
                    );
                    if self.state == GramJobState::PendingCommit && !self.committed {
                        ctx.metrics().incr("gram.commits", 1);
                        ctx.metrics().incr(&self.metric_commits, 1);
                        self.begin_stage_in(ctx);
                    } else {
                        // A duplicate Commit means the client's commit timer
                        // expired before our ack arrived and it retransmitted
                        // — the per-site commit-timeout signal in the
                        // grid-weather report.
                        ctx.metrics().incr(&self.metric_commit_timeouts, 1);
                    }
                }
                JmMsg::Probe { nonce } => {
                    ctx.send(
                        from,
                        JmMsg::ProbeReply {
                            nonce: *nonce,
                            contact: self.contact,
                            state: self.state,
                        },
                    );
                }
                JmMsg::Cancel => {
                    if let Some(local_id) = self.local_id {
                        if !self.state.is_terminal() {
                            ctx.send(self.lrm, LrmRequest::Cancel { local_id });
                        }
                    } else {
                        self.callback(ctx, GramJobState::Removed);
                    }
                }
                JmMsg::UpdateGass { gass, stdout_have } => {
                    self.gass = gass.clone();
                    self.stdout_sent = *stdout_have;
                    self.client = from;
                    self.persist(ctx);
                    if self.state == GramJobState::StageOut {
                        self.begin_stage_out(ctx);
                    }
                }
                JmMsg::RefreshCredential { credential } => {
                    ctx.metrics().incr("gram.credential_refreshes", 1);
                    self.credential = credential.clone();
                }
                JmMsg::DoneAck => {
                    // Lean mode: the gatekeeper reclaims this job's records
                    // (same-node message, so it never traverses the WAN
                    // model). Safe because the client persisted the
                    // terminal outcome before acking.
                    if let Some(gk) = self.notify_exit {
                        ctx.send_local(
                            gk,
                            JmMsg::Exited {
                                contact: self.contact,
                            },
                        );
                    }
                    // A finished JobManager never respawns under this name,
                    // so die without retiring the address.
                    ctx.kill_transient(ctx.self_addr());
                }
                JmMsg::Exited { .. }
                | JmMsg::Callback { .. }
                | JmMsg::ProbeReply { .. }
                | JmMsg::CommitAck { .. } => {}
            }
            return;
        }
        // Scheduler replies and events.
        if let Some(reply) = msg.downcast_ref::<LrmReply>() {
            match reply {
                LrmReply::Submitted { local_id, .. } => {
                    self.local_id = Some(*local_id);
                    self.callback(ctx, GramJobState::Pending);
                    // Replay any events that raced ahead of this reply.
                    for ev in std::mem::take(&mut self.pending_events) {
                        self.on_lrm_event(ctx, &ev);
                    }
                }
                LrmReply::StatusIs { state, .. } => {
                    // Recovery and periodic-poll path: translate the
                    // scheduler's view, announcing only actual changes.
                    if self.state.is_terminal() {
                        return;
                    }
                    match state {
                        Some(LrmJobState::Running) => {
                            if self.state != GramJobState::Active {
                                self.callback(ctx, GramJobState::Active);
                            }
                        }
                        Some(LrmJobState::Queued) => {
                            if self.state != GramJobState::Pending {
                                self.callback(ctx, GramJobState::Pending);
                            }
                        }
                        Some(LrmJobState::Completed) => {
                            if self.state != GramJobState::StageOut || self.stdout_req.is_none() {
                                self.begin_stage_out(ctx);
                            }
                        }
                        Some(LrmJobState::WallTimeExceeded) | Some(LrmJobState::Vacated) => {
                            self.exit_ok = false;
                            self.callback(ctx, GramJobState::Failed);
                        }
                        Some(LrmJobState::Removed) => self.callback(ctx, GramJobState::Removed),
                        None => {
                            // The scheduler does not know the job (its
                            // machine lost state): report failure so the
                            // client can resubmit.
                            self.exit_ok = false;
                            self.callback(ctx, GramJobState::Failed);
                        }
                    }
                }
                LrmReply::Info(_) => {}
            }
            return;
        }
        if let Some(ev) = msg.downcast_ref::<LrmEvent>() {
            if self.local_id.is_none() {
                // The LRM's first event can overtake its Submitted reply
                // (independent network latencies); hold it until then.
                self.pending_events.push(ev.clone());
            } else {
                self.on_lrm_event(ctx, ev);
            }
            return;
        }
        // Flow mode: our own bulk send (the stdout WriteAt) was cut in
        // flight. Resend immediately — the positioned write is idempotent
        // — with the armed retry timer as the backstop if the route is
        // still dead (the immediate resend is then dropped at flow start).
        if let Some(aborted) = msg.downcast_ref::<BulkAborted>() {
            if self.stdout_req.is_some() {
                ctx.metrics().incr("gram.stage_retries", 1);
                let bytes = aborted.bytes;
                ctx.trace_with("jm.stage_out_aborted", || format!("bytes={bytes}"));
                self.bump_backoff();
                self.send_stdout_chunk(ctx);
            }
            return;
        }
        // GASS staging replies.
        if let Ok(reply) = msg.downcast::<GassReply>() {
            match *reply {
                GassReply::Data { .. } => {
                    if let Staging::Fetching { outstanding } = &mut self.staging {
                        *outstanding -= 1;
                        if *outstanding == 0 {
                            self.staging = Staging::Done;
                            ctx.metrics().incr("gram.staged_in", 1);
                            self.submit_to_lrm(ctx);
                        }
                    }
                }
                GassReply::Ok { new_size, .. } => {
                    // Positioned writes are idempotent, so an Ok from *any*
                    // (possibly retransmitted) stdout write that shows the
                    // full output present confirms stage-out — matching
                    // only the newest request id would livelock when the
                    // transfer time exceeds the retry period.
                    if self.stdout_req.is_some() && new_size >= self.rsl.stdout_size {
                        self.stdout_req = None;
                        self.stdout_sent = self.rsl.stdout_size;
                        self.exit_ok = true;
                        ctx.metrics().incr("gram.staged_out", 1);
                        self.callback(ctx, GramJobState::Done);
                    }
                }
                GassReply::Failed { ref error, .. } if error.is_retryable() => {
                    // An in-flight transfer was cut (partition, link
                    // failure): the job is fine, the route died. Re-drive
                    // whichever staging phase is active instead of failing
                    // the job — if the network is still down the resent
                    // requests are lost and the (backed-off) retry timer
                    // takes over.
                    ctx.metrics().incr("gram.staging_aborts", 1);
                    ctx.trace_with("jm.staging_aborted", || error.to_string());
                    if matches!(self.staging, Staging::Fetching { .. }) {
                        ctx.metrics().incr("gram.stage_retries", 1);
                        self.bump_backoff();
                        self.send_stage_requests(ctx);
                    } else if self.stdout_req.is_some() {
                        ctx.metrics().incr("gram.stage_retries", 1);
                        self.bump_backoff();
                        self.send_stdout_chunk(ctx);
                    }
                }
                GassReply::Failed { ref error, .. } => {
                    ctx.metrics().incr("gram.staging_failures", 1);
                    ctx.trace_with("jm.staging_failed", || error.to_string());
                    self.exit_ok = false;
                    self.callback(ctx, GramJobState::Failed);
                }
                GassReply::Size { .. } => {}
            }
        }
    }
}
