#![warn(missing_docs)]
//! `gram` — the Grid Resource Allocation and Management protocol (paper
//! §3.2) and its server-side implementation (Figure 1's GateKeeper and
//! JobManager).
//!
//! GRAM is the narrow waist of Condor-G: "remote resource access issues are
//! addressed by requiring that remote resources speak standard protocols".
//! This crate implements the *revised* GRAM the paper describes — the one
//! the UW team co-designed — with its three distinguishing features:
//!
//! 1. **GSI security on every operation** — the gatekeeper verifies the
//!    supplied proxy credential and maps the Grid DN to a local account
//!    through the site gridmap before anything else happens.
//! 2. **Two-phase commit** for exactly-once submission: every request
//!    carries a client sequence number; the server deduplicates repeats, so
//!    a client that re-sends after a lost reply gets the original answer
//!    instead of a second job; execution only commences after an explicit
//!    commit message.
//! 3. **Fault tolerance**: JobManagers log job state to stable storage so
//!    that, after an interface-machine crash, a restarted JobManager can
//!    reattach to the still-queued-or-running job in the site scheduler and
//!    resume output staging from the byte offset the client already holds.
//!
//! Job descriptions travel as RSL strings ([`rsl`]), the era's job language
//! (`&(executable=...)(count=1)...`).

pub mod client;
pub mod gatekeeper;
pub mod jobmanager;
pub mod proto;
pub mod rsl;

pub use client::SubmitSession;
pub use gatekeeper::Gatekeeper;
pub use jobmanager::JobManager;
pub use proto::{GramError, GramJobState, GramReply, GramRequest, JmMsg, JobContact};
pub use rsl::RslSpec;
