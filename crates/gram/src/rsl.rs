//! The Resource Specification Language.
//!
//! Globus RSL of the paper's era looks like:
//!
//! ```text
//! &(executable=gass://n0.c2/home/jane/sim.exe)
//!  (arguments="--events" "500")
//!  (count=1)
//!  (maxWallTime=120)          // minutes, per GRAM convention
//!  (stdin=gass://n0.c2/home/jane/in.dat)
//!  (stdout=gass://n0.c2/home/jane/out.dat)
//!  (environment=(CMS_EVENTS 500)(STAGE DIR))
//! ```
//!
//! Because the simulation does not execute real binaries, two extension
//! attributes carry the *simulated* behaviour of the job (documented in
//! DESIGN.md): `simruntime` (true service demand, seconds) and
//! `stdoutsize` (bytes of standard output the job produces).

use gridsim::time::Duration;
use std::collections::BTreeMap;
use std::fmt;

/// A parsed RSL job description.
#[derive(Clone, Debug, PartialEq)]
pub struct RslSpec {
    /// `executable` — usually a GASS URL to stage in.
    pub executable: String,
    /// `arguments` — positional strings.
    pub arguments: Vec<String>,
    /// `count` — processors requested (default 1).
    pub count: u32,
    /// `maxwalltime` — minutes, if the user declared one.
    pub max_wall_time: Option<Duration>,
    /// `stdin` — GASS URL to stage in, if any.
    pub stdin: Option<String>,
    /// `stdout` — GASS URL to stream/stage output to, if any.
    pub stdout: Option<String>,
    /// `environment` — name/value pairs.
    pub environment: BTreeMap<String, String>,
    /// Simulation extension: true runtime in seconds.
    pub sim_runtime: Duration,
    /// Simulation extension: bytes of stdout the job produces.
    pub stdout_size: u64,
    /// Simulation extension: bytes of the executable image (stage-in cost);
    /// 0 means "use the size served by the GASS server".
    pub image_size: u64,
    /// Unrecognized attributes, preserved verbatim.
    pub extra: BTreeMap<String, Vec<String>>,
}

impl Default for RslSpec {
    fn default() -> RslSpec {
        RslSpec {
            executable: String::new(),
            arguments: Vec::new(),
            count: 1,
            max_wall_time: None,
            stdin: None,
            stdout: None,
            environment: BTreeMap::new(),
            sim_runtime: Duration::from_secs(1),
            stdout_size: 0,
            image_size: 0,
            extra: BTreeMap::new(),
        }
    }
}

impl RslSpec {
    /// Builder: a job running `executable` for `runtime`.
    pub fn job(executable: &str, runtime: Duration) -> RslSpec {
        RslSpec {
            executable: executable.to_string(),
            sim_runtime: runtime,
            ..RslSpec::default()
        }
    }

    /// Builder: set processor count.
    pub fn with_count(mut self, count: u32) -> RslSpec {
        self.count = count;
        self
    }

    /// Builder: set stdout destination and size.
    pub fn with_stdout(mut self, url: &str, size: u64) -> RslSpec {
        self.stdout = Some(url.to_string());
        self.stdout_size = size;
        self
    }

    /// Builder: set stdin source.
    pub fn with_stdin(mut self, url: &str) -> RslSpec {
        self.stdin = Some(url.to_string());
        self
    }

    /// Builder: declare a wall-time request (minutes, GRAM convention).
    pub fn with_max_wall_minutes(mut self, minutes: u64) -> RslSpec {
        self.max_wall_time = Some(Duration::from_mins(minutes));
        self
    }

    /// Builder: add an environment variable.
    pub fn with_env(mut self, key: &str, value: &str) -> RslSpec {
        self.environment.insert(key.to_string(), value.to_string());
        self
    }
}

/// RSL parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RslError(pub String);

impl fmt::Display for RslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RSL error: {}", self.0)
    }
}

impl std::error::Error for RslError {}

/// Parse an RSL string.
pub fn parse(src: &str) -> Result<RslSpec, RslError> {
    let mut spec = RslSpec::default();
    let rest = src.trim();
    let rest = rest
        .strip_prefix('&')
        .ok_or_else(|| RslError("RSL must start with '&'".into()))?;
    let mut chars = rest.char_indices().peekable();
    let bytes = rest;
    let mut relations: Vec<(String, Vec<String>)> = Vec::new();
    while let Some(&(i, c)) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
            continue;
        }
        if c != '(' {
            return Err(RslError(format!("expected '(' at {i}, found {c:?}")));
        }
        // Find the matching close paren, respecting quotes and nesting.
        let (inner, consumed) = take_group(&bytes[i..])?;
        for _ in 0..consumed {
            chars.next();
        }
        let (name, values) = parse_relation(inner)?;
        relations.push((name, values));
    }
    for (name, values) in relations {
        apply(&mut spec, &name, values)?;
    }
    if spec.executable.is_empty() {
        return Err(RslError("missing executable".into()));
    }
    Ok(spec)
}

/// Return the contents of the leading `( ... )` group and the number of
/// chars consumed including both parens.
fn take_group(s: &str) -> Result<(&str, usize), RslError> {
    debug_assert!(s.starts_with('('));
    let mut depth = 0usize;
    let mut in_quote = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_quote = !in_quote,
            '(' if !in_quote => depth += 1,
            ')' if !in_quote => {
                depth -= 1;
                if depth == 0 {
                    return Ok((&s[1..i], i + 1));
                }
            }
            _ => {}
        }
    }
    Err(RslError("unbalanced parentheses".into()))
}

/// Parse `name=value value ...` or `name=(k v)(k v)` inside a relation.
fn parse_relation(inner: &str) -> Result<(String, Vec<String>), RslError> {
    let eq = inner
        .find('=')
        .ok_or_else(|| RslError(format!("missing '=' in ({inner})")))?;
    let name = inner[..eq].trim().to_ascii_lowercase();
    let value_src = inner[eq + 1..].trim();
    let values = tokenize_values(value_src)?;
    Ok((name, values))
}

/// Split a value list: bare words, quoted strings, and parenthesized pairs
/// (flattened as alternating tokens).
fn tokenize_values(src: &str) -> Result<Vec<String>, RslError> {
    let mut out = Vec::new();
    let mut rest = src.trim_start();
    while !rest.is_empty() {
        if rest.starts_with('"') {
            let end = rest[1..]
                .find('"')
                .ok_or_else(|| RslError("unterminated quote".into()))?;
            out.push(rest[1..=end].to_string());
            rest = rest[end + 2..].trim_start();
        } else if rest.starts_with('(') {
            let (inner, used) = take_group(rest)?;
            out.extend(tokenize_values(inner)?);
            rest = rest[used..].trim_start();
        } else {
            let end = rest
                .find(|c: char| c.is_whitespace() || c == '(' || c == '"')
                .unwrap_or(rest.len());
            out.push(rest[..end].to_string());
            rest = rest[end..].trim_start();
        }
    }
    Ok(out)
}

fn apply(spec: &mut RslSpec, name: &str, values: Vec<String>) -> Result<(), RslError> {
    let one = |values: &[String]| -> Result<String, RslError> {
        match values {
            [v] => Ok(v.clone()),
            _ => Err(RslError(format!(
                "{name} expects one value, got {}",
                values.len()
            ))),
        }
    };
    match name {
        "executable" => spec.executable = one(&values)?,
        "arguments" => spec.arguments = values,
        "count" => {
            spec.count = one(&values)?
                .parse()
                .map_err(|_| RslError("bad count".into()))?
        }
        "maxwalltime" => {
            let mins: u64 = one(&values)?
                .parse()
                .map_err(|_| RslError("bad maxWallTime".into()))?;
            spec.max_wall_time = Some(Duration::from_mins(mins));
        }
        "stdin" => spec.stdin = Some(one(&values)?),
        "stdout" => spec.stdout = Some(one(&values)?),
        "environment" => {
            if !values.len().is_multiple_of(2) {
                return Err(RslError("environment expects (name value) pairs".into()));
            }
            for pair in values.chunks(2) {
                spec.environment.insert(pair[0].clone(), pair[1].clone());
            }
        }
        "simruntime" => {
            let secs: f64 = one(&values)?
                .parse()
                .map_err(|_| RslError("bad simruntime".into()))?;
            spec.sim_runtime = Duration::from_secs_f64(secs);
        }
        "stdoutsize" => {
            spec.stdout_size = one(&values)?
                .parse()
                .map_err(|_| RslError("bad stdoutsize".into()))?;
        }
        "imagesize" => {
            spec.image_size = one(&values)?
                .parse()
                .map_err(|_| RslError("bad imagesize".into()))?;
        }
        _ => {
            spec.extra.insert(name.to_string(), values);
        }
    }
    Ok(())
}

impl fmt::Display for RslSpec {
    /// Render as a parseable RSL string (this is what actually travels in
    /// [`crate::proto::GramRequest::Submit`]).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "&(executable={})", self.executable)?;
        if !self.arguments.is_empty() {
            write!(f, "(arguments=")?;
            for (i, a) in self.arguments.iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                write!(f, "\"{a}\"")?;
            }
            write!(f, ")")?;
        }
        if self.count != 1 {
            write!(f, "(count={})", self.count)?;
        }
        if let Some(w) = self.max_wall_time {
            write!(f, "(maxWallTime={})", w.micros() / 60_000_000)?;
        }
        if let Some(s) = &self.stdin {
            write!(f, "(stdin={s})")?;
        }
        if let Some(s) = &self.stdout {
            write!(f, "(stdout={s})")?;
        }
        if !self.environment.is_empty() {
            write!(f, "(environment=")?;
            for (k, v) in &self.environment {
                write!(f, "({k} {v})")?;
            }
            write!(f, ")")?;
        }
        write!(f, "(simruntime={})", self.sim_runtime.as_secs_f64())?;
        if self.stdout_size != 0 {
            write!(f, "(stdoutsize={})", self.stdout_size)?;
        }
        if self.image_size != 0 {
            write!(f, "(imagesize={})", self.image_size)?;
        }
        for (k, vs) in &self.extra {
            write!(f, "({k}=")?;
            for (i, v) in vs.iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                write!(f, "\"{v}\"")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal() {
        let s = parse("&(executable=/bin/hostname)").unwrap();
        assert_eq!(s.executable, "/bin/hostname");
        assert_eq!(s.count, 1);
        assert!(s.arguments.is_empty());
    }

    #[test]
    fn full_relation_set() {
        let s = parse(
            r#"&(executable=gass://n0.c2/sim.exe)
               (arguments="--events" "500" bare)
               (count=4)
               (maxWallTime=120)
               (stdin=gass://n0.c2/in.dat)
               (stdout=gass://n0.c2/out.dat)
               (environment=(CMS_EVENTS 500)(MODE fast))
               (simruntime=3600)
               (stdoutsize=1048576)
               (queue=batch)"#,
        )
        .unwrap();
        assert_eq!(s.executable, "gass://n0.c2/sim.exe");
        assert_eq!(s.arguments, vec!["--events", "500", "bare"]);
        assert_eq!(s.count, 4);
        assert_eq!(s.max_wall_time, Some(Duration::from_mins(120)));
        assert_eq!(s.stdin.as_deref(), Some("gass://n0.c2/in.dat"));
        assert_eq!(s.stdout.as_deref(), Some("gass://n0.c2/out.dat"));
        assert_eq!(s.environment["CMS_EVENTS"], "500");
        assert_eq!(s.environment["MODE"], "fast");
        assert_eq!(s.sim_runtime, Duration::from_hours(1));
        assert_eq!(s.stdout_size, 1_048_576);
        assert_eq!(s.extra["queue"], vec!["batch"]);
    }

    #[test]
    fn attribute_names_case_insensitive() {
        let s = parse("&(EXECUTABLE=/x)(Count=2)(MaxWallTime=5)").unwrap();
        assert_eq!(s.executable, "/x");
        assert_eq!(s.count, 2);
        assert_eq!(s.max_wall_time, Some(Duration::from_mins(5)));
    }

    #[test]
    fn quoted_values_keep_spaces() {
        let s = parse(r#"&(executable=/x)(arguments="hello world" "a(b)c")"#).unwrap();
        assert_eq!(s.arguments, vec!["hello world", "a(b)c"]);
    }

    #[test]
    fn errors() {
        assert!(parse("(executable=/x)").is_err(), "missing &");
        assert!(parse("&(executable=/x").is_err(), "unbalanced");
        assert!(parse("&(noequals)").is_err());
        assert!(parse("&(count=1)").is_err(), "missing executable");
        assert!(parse("&(executable=/x)(count=notanumber)").is_err());
        assert!(parse("&(executable=/x)(environment=(ODD))").is_err());
    }

    #[test]
    fn display_parse_round_trip() {
        let s = RslSpec::job("gass://n1.c2/exe", Duration::from_mins(30))
            .with_count(3)
            .with_stdout("gass://n1.c2/out", 4096)
            .with_stdin("gass://n1.c2/in")
            .with_max_wall_minutes(45)
            .with_env("CMS_EVENTS", "500");
        let printed = s.to_string();
        let back = parse(&printed).unwrap_or_else(|e| panic!("reparse `{printed}`: {e}"));
        assert_eq!(back, s);
    }

    #[test]
    fn display_round_trips_extra_attributes() {
        let mut s = RslSpec::job("/x", Duration::from_secs(10));
        s.extra
            .insert("queue".into(), vec!["batch".into(), "low pri".into()]);
        let back = parse(&s.to_string()).unwrap();
        assert_eq!(back.extra["queue"], vec!["batch", "low pri"]);
    }

    #[test]
    fn builder_round_trip_fields() {
        let s = RslSpec::job("gass://n1.c2/exe", Duration::from_mins(30))
            .with_count(2)
            .with_stdout("gass://n1.c2/out", 4096)
            .with_stdin("gass://n1.c2/in")
            .with_max_wall_minutes(45)
            .with_env("X", "1");
        assert_eq!(s.count, 2);
        assert_eq!(s.stdout_size, 4096);
        assert_eq!(s.max_wall_time, Some(Duration::from_mins(45)));
        assert_eq!(s.environment["X"], "1");
    }
}
