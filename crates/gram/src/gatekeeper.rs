//! The Globus GateKeeper (Figure 1).
//!
//! One gatekeeper fronts each site. It authenticates every request with
//! GSI, authorizes through the site gridmap, deduplicates submissions by
//! `(DN, sequence number)` for exactly-once semantics, and spawns one
//! JobManager daemon per job. It also answers liveness pings — the probe
//! the GridManager uses to distinguish "JobManager crashed" from "whole
//! machine or network down" (§4.2).

use crate::jobmanager::{JmLog, JobManager};
use crate::proto::{GramError, GramReply, GramRequest, JmMsg, JobContact};
use gridsim::prelude::*;
use gridsim::AnyMsg;
use gsi::{Capability, GridMap, PublicKey, TrustRoot};
use std::collections::HashMap;

/// One dedup record persisted to stable storage so exactly-once survives
/// gatekeeper machine restarts. Each record lives under its own key
/// (suffixed by the job contact, which is unique per accepted submit), so
/// persisting a submit is O(1) instead of rewriting the whole table.
type DedupRecord = (String, u64, u64); // (DN, seq, contact)

/// The gatekeeper component.
pub struct Gatekeeper {
    site: String,
    trust: TrustRoot,
    gridmap: GridMap,
    lrm: Addr,
    /// Exactly-once machinery on (paper behaviour) or off (the naive
    /// one-phase baseline for the X1 ablation).
    two_phase: bool,
    /// Verification key for capability-based authorization (§3.2's
    /// work-in-progress mode); `None` = gridmap only.
    capability_key: Option<PublicKey>,
    dedup: HashMap<(String, u64), JobContact>,
    jobmanagers: HashMap<JobContact, Addr>,
    next_contact: u64,
    /// Site-scoped grid-weather counters, precomputed once.
    metric_submits: String,
    metric_rejected: String,
    /// Lean (campaign) mode: JobManagers notify us on exit and we reclaim
    /// every per-job record, keeping gatekeeper memory bounded by the
    /// *in-flight* job count rather than the lifetime total.
    lean: bool,
    /// Reverse dedup index, maintained only in lean mode so `Exited` can
    /// drop the `(DN, seq)` entry in O(1).
    dedup_rev: HashMap<JobContact, (String, u64)>,
}

impl Gatekeeper {
    /// A gatekeeper for `site`, fronting the scheduler at `lrm`.
    pub fn new(site: &str, trust: TrustRoot, gridmap: GridMap, lrm: Addr) -> Gatekeeper {
        Gatekeeper {
            site: site.to_string(),
            trust,
            gridmap,
            lrm,
            two_phase: true,
            capability_key: None,
            dedup: HashMap::new(),
            jobmanagers: HashMap::new(),
            // Real job contacts are URLs naming the gatekeeper host; ours
            // embed a site fingerprint so contacts are globally unique.
            next_contact: (gsi::keys::digest(site.as_bytes()) & 0xFFFF_FFFF) << 32,
            metric_submits: format!("site.{site}.submits"),
            metric_rejected: format!("site.{site}.rejected"),
            lean: false,
            dedup_rev: HashMap::new(),
        }
    }

    /// Disable two-phase commit and dedup (the pre-revision GRAM baseline).
    pub fn one_phase(mut self) -> Gatekeeper {
        self.two_phase = false;
        self
    }

    /// Lean (campaign) mode: reclaim all per-job state — dedup entry,
    /// JobManager registration, persisted JobManager log and dedup record —
    /// once the client acknowledges a job's terminal callback. Exactly-once
    /// still holds for every live job; a done-acked job can only be
    /// "resubmitted" by a client that lost its own stable store, which the
    /// Condor-G scheduler never does (it persists the terminal state
    /// *before* acking). Off by default: audit-trail runs keep every record.
    pub fn lean(mut self) -> Gatekeeper {
        self.lean = true;
        self
    }

    /// Accept capabilities signed by this site authority as an alternative
    /// to the gridmap.
    pub fn with_capability_key(mut self, key: PublicKey) -> Gatekeeper {
        self.capability_key = Some(key);
        self
    }

    fn dedup_prefix(&self) -> String {
        format!("gram/gk/{}/dedup/", self.site)
    }

    fn contact_key(&self) -> String {
        format!("gram/gk/{}/next_contact", self.site)
    }

    /// Persist one accepted submit: its dedup record plus the contact
    /// counter. Constant work per job — the table is never rewritten.
    fn persist_entry(&self, ctx: &mut Ctx<'_>, dn: &str, seq: u64, contact: JobContact) {
        let node = ctx.node();
        let key = format!("{}{:016x}", self.dedup_prefix(), contact.0);
        let record: DedupRecord = (dn.to_string(), seq, contact.0);
        let ck = self.contact_key();
        let next = self.next_contact;
        ctx.store().put(node, &key, &record);
        ctx.store().put(node, &ck, &next);
    }

    /// Recover dedup state after a machine restart (used from boot hooks).
    pub fn recover(mut self, store: &gridsim::store::StableStore, node: NodeId) -> Gatekeeper {
        for key in store.keys_with_prefix(node, &self.dedup_prefix()) {
            let (dn, seq, contact): DedupRecord =
                store.get(node, &key).expect("listed key present");
            if self.lean {
                self.dedup_rev
                    .insert(JobContact(contact), (dn.clone(), seq));
            }
            self.dedup.insert((dn, seq), JobContact(contact));
        }
        if let Some(next) = store.get::<u64>(node, &self.contact_key()) {
            self.next_contact = next;
        }
        self
    }

    fn authenticate(
        &self,
        ctx: &mut Ctx<'_>,
        credential: &gsi::ProxyCredential,
        capability: Option<&Capability>,
    ) -> Result<(String, String), GramError> {
        let dn = credential
            .verify(ctx.now(), &self.trust)
            .map_err(|e| GramError::AuthenticationFailed(e.to_string()))?;
        // Local policy first (the gridmap), then capabilities.
        if let Some(local) = self.gridmap.authorize(&dn) {
            return Ok((dn, local.to_string()));
        }
        if let (Some(key), Some(cap)) = (self.capability_key, capability) {
            if cap.verify(key, &dn, &self.site, ctx.now()) {
                ctx.metrics().incr("gram.capability_grants", 1);
                return Ok((dn, cap.local_user.clone()));
            }
        }
        Err(GramError::AuthorizationFailed(dn))
    }

    fn spawn_jobmanager(&mut self, ctx: &mut Ctx<'_>, contact: JobContact, jm: JobManager) -> Addr {
        let jm = if self.lean {
            jm.with_exit_notify(ctx.self_addr())
        } else {
            jm
        };
        let addr = ctx.spawn(ctx.node(), &format!("jm-{contact}"), jm);
        self.jobmanagers.insert(contact, addr);
        addr
    }

    /// Lean-mode reclamation on a JobManager's exit notice: every per-job
    /// record this site holds goes away.
    fn reclaim(&mut self, ctx: &mut Ctx<'_>, contact: JobContact) {
        self.jobmanagers.remove(&contact);
        let node = ctx.node();
        ctx.store().remove(node, &JmLog::key(contact));
        if let Some(key) = self.dedup_rev.remove(&contact) {
            self.dedup.remove(&key);
        }
        let dedup_key = format!("{}{:016x}", self.dedup_prefix(), contact.0);
        ctx.store().remove(node, &dedup_key);
    }
}

impl Component for Gatekeeper {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: Addr, msg: AnyMsg) {
        if let Some(JmMsg::Exited { contact }) = msg.downcast_ref::<JmMsg>() {
            if self.lean {
                self.reclaim(ctx, *contact);
            }
            return;
        }
        let Ok(req) = msg.downcast::<GramRequest>() else {
            return;
        };
        match *req {
            GramRequest::Ping { nonce } => {
                ctx.send(from, GramReply::Pong { nonce });
            }
            GramRequest::Submit {
                seq,
                credential,
                rsl,
                callback,
                gass,
                capability,
            } => {
                let (dn, local_user) =
                    match self.authenticate(ctx, &credential, capability.as_ref()) {
                        Ok(v) => v,
                        Err(error) => {
                            ctx.metrics().incr("gram.rejected", 1);
                            ctx.metrics().incr(&self.metric_rejected, 1);
                            ctx.send(from, GramReply::SubmitFailed { seq, error });
                            return;
                        }
                    };
                // Exactly-once: a duplicate (DN, seq) gets the original
                // answer, never a second job.
                if self.two_phase {
                    if let Some(&contact) = self.dedup.get(&(dn.clone(), seq)) {
                        ctx.metrics().incr("gram.duplicate_submits", 1);
                        ctx.trace_with("gram.dedup", || format!("dn={dn} seq={seq} -> {contact}"));
                        if let Some(&jm) = self.jobmanagers.get(&contact) {
                            ctx.send(
                                from,
                                GramReply::Submitted {
                                    seq,
                                    contact,
                                    jobmanager: jm,
                                },
                            );
                        } else {
                            // JobManager gone (e.g. machine restarted):
                            // restart it from its log.
                            let node = ctx.node();
                            match ctx.store().get::<JmLog>(node, &JmLog::key(contact)) {
                                Some(log) => {
                                    let jm = self.spawn_jobmanager(
                                        ctx,
                                        contact,
                                        JobManager::recover(
                                            log,
                                            self.lrm,
                                            callback,
                                            gass,
                                            credential.clone(),
                                            0,
                                            &self.site,
                                        ),
                                    );
                                    ctx.send(
                                        from,
                                        GramReply::Submitted {
                                            seq,
                                            contact,
                                            jobmanager: jm,
                                        },
                                    );
                                }
                                None => {
                                    ctx.send(
                                        from,
                                        GramReply::SubmitFailed {
                                            seq,
                                            error: GramError::UnknownJob,
                                        },
                                    );
                                }
                            }
                        }
                        return;
                    }
                }
                let spec = match crate::rsl::parse(&rsl) {
                    Ok(s) => s,
                    Err(e) => {
                        ctx.send(
                            from,
                            GramReply::SubmitFailed {
                                seq,
                                error: GramError::BadRsl(e.to_string()),
                            },
                        );
                        return;
                    }
                };
                let contact = JobContact(self.next_contact);
                self.next_contact += 1;
                ctx.metrics().incr("gram.submits", 1);
                ctx.metrics().incr(&self.metric_submits, 1);
                ctx.trace_with("gram.submit", || {
                    format!("{} dn={dn} seq={seq} -> {contact}", self.site)
                });
                ctx.trace_with("span", || {
                    format!("seq={seq} contact={} phase=auth", contact.0)
                });
                let jm = JobManager::new(
                    contact,
                    spec,
                    credential,
                    callback,
                    gass,
                    self.lrm,
                    &local_user,
                    // One-phase servers start executing immediately.
                    !self.two_phase,
                    &self.site,
                );
                let jm_addr = self.spawn_jobmanager(ctx, contact, jm);
                if self.two_phase {
                    self.persist_entry(ctx, &dn, seq, contact);
                    if self.lean {
                        self.dedup_rev.insert(contact, (dn.clone(), seq));
                    }
                    self.dedup.insert((dn, seq), contact);
                }
                ctx.send(
                    from,
                    GramReply::Submitted {
                        seq,
                        contact,
                        jobmanager: jm_addr,
                    },
                );
            }
            GramRequest::RestartJobManager {
                contact,
                credential,
                callback,
                gass,
                stdout_have,
                capability,
            } => {
                if let Err(error) = self.authenticate(ctx, &credential, capability.as_ref()) {
                    ctx.send(from, GramReply::RestartFailed { contact, error });
                    return;
                }
                // Tear down any existing JobManager for this contact (it
                // may be a zombie the client can no longer reach) and start
                // a fresh one from the stable log — like forking a new
                // jobmanager process.
                if let Some(jm) = self.jobmanagers.remove(&contact) {
                    ctx.kill(jm);
                }
                let node = ctx.node();
                match ctx.store().get::<JmLog>(node, &JmLog::key(contact)) {
                    Some(log) => {
                        ctx.metrics().incr("gram.jm_restarts", 1);
                        ctx.trace_with("gram.jm_restart", || format!("{contact}"));
                        let jm = self.spawn_jobmanager(
                            ctx,
                            contact,
                            JobManager::recover(
                                log,
                                self.lrm,
                                callback,
                                gass,
                                credential,
                                stdout_have,
                                &self.site,
                            ),
                        );
                        ctx.send(
                            from,
                            GramReply::Restarted {
                                contact,
                                jobmanager: jm,
                            },
                        );
                    }
                    None => {
                        ctx.send(
                            from,
                            GramReply::RestartFailed {
                                contact,
                                error: GramError::UnknownJob,
                            },
                        );
                    }
                }
            }
        }
    }
}
