//! Property-based tests for the RSL parser: every [`RslSpec`] the library
//! can build renders to a string that parses back to the same spec (the
//! wire format really is the `Display` output — it is what travels in
//! `GramRequest::Submit`), and the parser never panics on junk.

use gram::rsl::{parse, RslSpec};
use gridsim::time::Duration;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A bare RSL word: survives unquoted rendering (no whitespace, parens,
/// quotes, or a leading '&').
fn bare_word() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9/._:-]{1,24}"
}

/// A quoted RSL value: anything except the quote character itself.
fn quoted_value() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9 /._=:-]{0,24}"
}

/// Attribute names the parser gives dedicated fields; `extra` keys must
/// avoid them (and must be lowercase, because parsing lowercases names).
const RESERVED: &[&str] = &[
    "executable",
    "arguments",
    "count",
    "maxwalltime",
    "stdin",
    "stdout",
    "environment",
    "simruntime",
    "stdoutsize",
    "imagesize",
];

fn extra_map() -> impl Strategy<Value = BTreeMap<String, Vec<String>>> {
    proptest::collection::btree_map(
        "[a-z][a-z0-9]{0,10}"
            .prop_filter("reserved attribute", |k| !RESERVED.contains(&k.as_str())),
        proptest::collection::vec(quoted_value(), 0..3),
        0..4,
    )
}

fn arb_spec() -> impl Strategy<Value = RslSpec> {
    (
        (
            bare_word(),
            proptest::collection::vec(quoted_value(), 0..4),
            1u32..=64,
            proptest::option::of(1u64..=100_000),
            proptest::option::of(bare_word()),
            proptest::option::of(bare_word()),
        ),
        (
            proptest::collection::btree_map("[A-Z][A-Z0-9_]{0,10}", bare_word(), 0..4),
            1u64..=1_000_000_000_000, // runtime in micros
            0u64..=1_000_000_000_000,
            0u64..=1_000_000_000_000,
            extra_map(),
        ),
    )
        .prop_map(
            |(
                (executable, arguments, count, wall_mins, stdin, stdout),
                (environment, runtime_micros, stdout_size, image_size, extra),
            )| {
                RslSpec {
                    executable,
                    arguments,
                    count,
                    max_wall_time: wall_mins.map(Duration::from_mins),
                    stdin,
                    stdout,
                    environment,
                    sim_runtime: Duration::from_micros(runtime_micros),
                    stdout_size,
                    image_size,
                    extra,
                }
            },
        )
}

proptest! {
    /// The round-trip at the heart of the GRAM protocol: what the client
    /// renders, the gatekeeper parses — and they must agree exactly.
    #[test]
    fn display_parse_round_trip(spec in arb_spec()) {
        let wire = spec.to_string();
        let parsed = parse(&wire).unwrap_or_else(|e| panic!("{e} in {wire}"));
        prop_assert_eq!(parsed, spec);
    }

    /// Attribute names are case-insensitive on the wire.
    #[test]
    fn uppercased_attribute_names_parse_identically(spec in arb_spec()) {
        // Uppercase only the attribute names, not the values: rebuild the
        // string group by group (names run from '(' to the first '=').
        let wire = spec.to_string();
        let mut shouted = String::new();
        let mut in_name = false;
        let mut depth = 0u32;
        for c in wire.chars() {
            match c {
                '(' => {
                    depth += 1;
                    in_name = depth == 1;
                    shouted.push(c);
                }
                ')' => {
                    depth -= 1;
                    shouted.push(c);
                }
                '=' if in_name => {
                    in_name = false;
                    shouted.push(c);
                }
                c if in_name => shouted.extend(c.to_uppercase()),
                c => shouted.push(c),
            }
        }
        let a = parse(&wire).unwrap();
        let b = parse(&shouted).unwrap_or_else(|e| panic!("{e} in {shouted}"));
        prop_assert_eq!(a, b);
    }

    /// The parser rejects or accepts junk without panicking.
    #[test]
    fn parser_never_panics(src in "\\PC{0,100}") {
        let _ = parse(&src);
    }

    /// Same, biased towards almost-valid inputs (parens, quotes, '&', '=').
    #[test]
    fn parser_never_panics_on_near_rsl(src in r#"[&()="a-z0-9 ]{0,80}"#) {
        let _ = parse(&src);
    }

    /// Quoted arguments preserve embedded whitespace and '=' exactly.
    #[test]
    fn arguments_survive_verbatim(args in proptest::collection::vec(quoted_value(), 1..5)) {
        let spec = RslSpec { arguments: args.clone(), ..RslSpec::job("/bin/x", Duration::from_secs(1)) };
        let parsed = parse(&spec.to_string()).unwrap();
        prop_assert_eq!(parsed.arguments, args);
    }
}
